//! Database snapshots: saving and loading the full database to/from disk.
//!
//! The engine is in-process; snapshots give it durability across runs
//! (used by the `edna` CLI). The format is a self-contained binary
//! encoding: magic + version, then per table the schema, AUTO_INCREMENT
//! counter, explicitly created indexes, and all live rows. Implicit
//! PK/UNIQUE indexes are rebuilt on load.
//!
//! Format v3 additionally records each row's slot id and the table's slot
//! count, so row ids survive a save/load cycle — the write-ahead log
//! ([`crate::wal`]) addresses rows by id, and replaying its tail over a
//! reloaded snapshot only works if ids mean the same thing afterwards. The
//! header also carries the WAL watermark: the LSN of the last frame whose
//! effects the snapshot contains (the checkpoint position). v2 snapshots
//! (no ids, no watermark) still load, with ids assigned sequentially.

use std::io::Write;
use std::path::Path;

use edna_util::sha256::{sha256, DIGEST_LEN};

use crate::database::Database;
use crate::error::{Error, Result};
use crate::schema::{ColumnDef, ForeignKey, ReferentialAction, TableSchema};
use crate::storage::{RowId, Table};
use crate::value::{DataType, Row, Value};

const MAGIC: &[u8; 8] = b"EDNADB\x03\x00";
const MAGIC_PREFIX: &[u8; 6] = b"EDNADB";

// ---- little byte helpers (self-contained; no external serializer) ---------

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    pub(crate) fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::Float(x) => {
                self.u8(2);
                self.f64(*x);
            }
            Value::Text(s) => {
                self.u8(3);
                self.string(s);
            }
            Value::Bool(false) => self.u8(4),
            Value::Bool(true) => self.u8(5),
            Value::Bytes(b) => {
                self.u8(6);
                self.bytes(b);
            }
        }
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn err(&self, what: &str) -> Error {
        Error::Eval(format!("corrupt snapshot at byte {}: {what}", self.pos))
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(self.err("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    pub(crate) fn string(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?).map_err(|_| self.err("invalid UTF-8"))
    }

    pub(crate) fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(self.f64()?),
            3 => Value::Text(self.string()?),
            4 => Value::Bool(false),
            5 => Value::Bool(true),
            6 => Value::Bytes(self.bytes()?),
            t => return Err(self.err(&format!("unknown value tag {t}"))),
        })
    }
}

// ---- snapshot format --------------------------------------------------------

/// The serializable image of one table.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    /// Table schema.
    pub schema: TableSchema,
    /// Next AUTO_INCREMENT value.
    pub next_auto: i64,
    /// Explicitly created indexes: `(name, column name, unique)`.
    pub indexes: Vec<(String, String, bool)>,
    /// All live rows with their slot ids, in slot order.
    pub rows: Vec<(RowId, Row)>,
    /// Total slot count (live + free); free slots stay free after reload
    /// so future inserts never collide with ids the WAL may reference.
    pub slots: usize,
}

impl TableSnapshot {
    /// The image of a live [`Table`], explicit indexes only (implicit
    /// PK/UNIQUE indexes are rebuilt from the schema).
    pub(crate) fn of(t: &Table) -> TableSnapshot {
        TableSnapshot {
            schema: t.schema.clone(),
            next_auto: t.next_auto,
            indexes: t
                .indexes
                .iter()
                .filter(|ix| !ix.name.starts_with("_auto_"))
                .map(|ix| {
                    (
                        ix.name.clone(),
                        t.schema.columns[ix.column].name.clone(),
                        ix.unique,
                    )
                })
                .collect(),
            rows: t.iter().map(|(id, r)| (id, r.clone())).collect(),
            slots: t.slot_count(),
        }
    }

    /// Materializes the image back into a [`Table`], preserving row ids.
    pub(crate) fn into_table(self) -> Result<Table> {
        let mut table = Table::new(self.schema);
        for (name, column, unique) in self.indexes {
            let pos = table.schema.require_column(&column)?;
            table.add_index(name, pos, unique)?;
        }
        for (id, row) in self.rows {
            if row.len() != table.schema.arity() {
                return Err(Error::Eval(format!(
                    "snapshot row arity mismatch in {}",
                    table.schema.name
                )));
            }
            table.restore_at(id, row);
        }
        table.reserve_slots(self.slots);
        table.next_auto = self.next_auto;
        Ok(table)
    }
}

/// Writes one table image (v3 layout). Shared by the snapshot body and the
/// WAL's DDL redo records, so both stay decodable by one reader.
pub(crate) fn encode_table(w: &mut Writer, t: &TableSnapshot) {
    w.string(&t.schema.name);
    // Columns.
    w.u32(t.schema.columns.len() as u32);
    for c in &t.schema.columns {
        w.string(&c.name);
        w.string(c.ty.sql_name());
        w.u8(u8::from(c.not_null));
        w.u8(u8::from(c.unique));
        w.u8(u8::from(c.auto_increment));
        w.u8(u8::from(c.pii));
        match &c.default {
            Some(v) => {
                w.u8(1);
                w.value(v);
            }
            None => w.u8(0),
        }
    }
    w.u32(t.schema.primary_key.map(|i| i as u32).unwrap_or(u32::MAX));
    // Foreign keys.
    w.u32(t.schema.foreign_keys.len() as u32);
    for fk in &t.schema.foreign_keys {
        w.string(&fk.column);
        w.string(&fk.parent_table);
        w.string(&fk.parent_column);
        w.u8(match fk.on_delete {
            ReferentialAction::Restrict => 0,
            ReferentialAction::Cascade => 1,
            ReferentialAction::SetNull => 2,
        });
    }
    w.i64(t.next_auto);
    // Explicit indexes.
    w.u32(t.indexes.len() as u32);
    for (name, column, unique) in &t.indexes {
        w.string(name);
        w.string(column);
        w.u8(u8::from(*unique));
    }
    // Rows, addressed by slot id.
    w.u64(t.slots as u64);
    w.u32(t.rows.len() as u32);
    for (id, row) in &t.rows {
        w.u64(*id as u64);
        for v in row {
            w.value(v);
        }
    }
}

/// Reads one table image. `version` selects the row layout: v2 rows carry
/// no slot ids (they are assigned sequentially), v3 rows do.
pub(crate) fn decode_table(r: &mut Reader<'_>, version: u8) -> Result<TableSnapshot> {
    let name = r.string()?;
    let mut schema = TableSchema::new(name);
    let n_cols = r.u32()? as usize;
    for _ in 0..n_cols {
        let col_name = r.string()?;
        let ty_name = r.string()?;
        let ty = DataType::from_sql_name(&ty_name)
            .ok_or_else(|| r.err(&format!("unknown type {ty_name}")))?;
        let mut col = ColumnDef::new(col_name, ty);
        col.not_null = r.u8()? != 0;
        col.unique = r.u8()? != 0;
        col.auto_increment = r.u8()? != 0;
        col.pii = r.u8()? != 0;
        if r.u8()? != 0 {
            col.default = Some(r.value()?);
        }
        schema.columns.push(col);
    }
    let pk = r.u32()?;
    schema.primary_key = if pk == u32::MAX {
        None
    } else {
        Some(pk as usize)
    };
    let n_fks = r.u32()? as usize;
    for _ in 0..n_fks {
        let column = r.string()?;
        let parent_table = r.string()?;
        let parent_column = r.string()?;
        let on_delete = match r.u8()? {
            0 => ReferentialAction::Restrict,
            1 => ReferentialAction::Cascade,
            2 => ReferentialAction::SetNull,
            t => return Err(r.err(&format!("unknown referential action {t}"))),
        };
        schema.foreign_keys.push(ForeignKey {
            column,
            parent_table,
            parent_column,
            on_delete,
        });
    }
    let next_auto = r.i64()?;
    let n_indexes = r.u32()? as usize;
    let mut indexes = Vec::with_capacity(n_indexes);
    for _ in 0..n_indexes {
        let idx_name = r.string()?;
        let column = r.string()?;
        let unique = r.u8()? != 0;
        indexes.push((idx_name, column, unique));
    }
    let slots = if version >= 3 { r.u64()? as usize } else { 0 };
    let n_rows = r.u32()? as usize;
    let arity = schema.arity();
    let mut rows = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let id = if version >= 3 {
            r.u64()? as usize
        } else {
            i as RowId
        };
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(r.value()?);
        }
        rows.push((id, row));
    }
    Ok(TableSnapshot {
        schema,
        next_auto,
        indexes,
        rows,
        slots: slots.max(n_rows),
    })
}

/// Serializes the whole database to bytes. The header's WAL watermark is
/// the attached WAL's last assigned LSN (0 without one), captured *before*
/// the tables are read: a frame appended mid-encode may then be replayed
/// over state that already contains it, which idempotent replay tolerates,
/// whereas a too-high watermark would silently skip a frame.
pub fn encode(db: &Database) -> Result<Vec<u8>> {
    let watermark = db.wal_last_lsn();
    let snapshots = db.snapshot_tables()?;
    Ok(encode_parts(db.global_now(), watermark, &snapshots))
}

/// Serializes pre-extracted parts of a database. Split out of [`encode`]
/// so `Database::save` can build the image while holding the engine lock
/// (checkpoint atomicity) without re-entering the lock per part.
pub(crate) fn encode_parts(now: i64, watermark: u64, snapshots: &[TableSnapshot]) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.i64(now);
    w.u64(watermark);
    w.u32(snapshots.len() as u32);
    for t in snapshots {
        encode_table(&mut w, t);
    }
    w.buf
}

/// Reconstructs a database from bytes produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Database> {
    Ok(decode_with_watermark(data)?.0)
}

/// Like [`decode`], but also returns the WAL watermark the snapshot was
/// checkpointed at (0 for v2 snapshots, which predate the WAL).
pub fn decode_with_watermark(data: &[u8]) -> Result<(Database, u64)> {
    let mut r = Reader::new(data);
    let head = r.take(8)?;
    if &head[..6] != MAGIC_PREFIX || head[7] != 0 {
        return Err(Error::Eval("not an edna database snapshot".to_string()));
    }
    let version = head[6];
    if !(2..=3).contains(&version) {
        return Err(Error::Eval(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let now = r.i64()?;
    let watermark = if version >= 3 { r.u64()? } else { 0 };
    let n_tables = r.u32()? as usize;
    let mut snapshots = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        snapshots.push(decode_table(&mut r, version)?);
    }
    if r.remaining() != 0 {
        return Err(r.err("trailing bytes"));
    }
    let db = Database::from_snapshots(snapshots)?;
    db.set_now(now);
    Ok((db, watermark))
}

/// Saves the database to `path`: the [`encode`]d image plus a SHA-256
/// checksum trailer, written to a temp file, fsynced, and atomically
/// renamed into place — a crash mid-save leaves the old snapshot intact,
/// and any other partial write is caught by the checksum at load. The
/// parent directory is fsynced after the rename so the new name is durable
/// before the caller truncates a WAL checkpointed by this snapshot.
pub fn save(db: &Database, path: impl AsRef<Path>) -> Result<()> {
    let data = encode(db)?;
    write_atomic(&data, path.as_ref())
}

/// Durably writes an encoded snapshot image to `path`: checksum trailer
/// appended, temp file fsynced, atomic rename, parent directory fsynced.
pub(crate) fn write_atomic(data: &[u8], path: &Path) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| Error::Eval(format!("snapshot I/O: {e}"));
    let mut f = std::fs::File::create(&tmp).map_err(io)?;
    f.write_all(data).map_err(io)?;
    f.write_all(&sha256(data)).map_err(io)?;
    f.sync_all().map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Loads a database from `path`, verifying the checksum trailer [`save`]
/// wrote. Truncation and bitflips are reported as corruption, never
/// decoded into a wrong database.
pub fn load(path: impl AsRef<Path>) -> Result<Database> {
    Ok(load_with_watermark(path)?.0)
}

/// Like [`load`], but also returns the snapshot's WAL watermark.
pub fn load_with_watermark(path: impl AsRef<Path>) -> Result<(Database, u64)> {
    let data =
        std::fs::read(path.as_ref()).map_err(|e| Error::Eval(format!("snapshot I/O: {e}")))?;
    decode_checked(&data)
}

/// Verifies the checksum trailer over a full snapshot *file image* and
/// decodes the body. Exposed so recovery can vet a stray `.tmp` file
/// before promoting it to the authoritative snapshot.
pub fn decode_checked(data: &[u8]) -> Result<(Database, u64)> {
    if data.len() < DIGEST_LEN {
        return Err(Error::Eval(
            "corrupt snapshot: too short for a checksum trailer".to_string(),
        ));
    }
    let (body, sum) = data.split_at(data.len() - DIGEST_LEN);
    if sha256(body) != sum {
        return Err(Error::Eval(
            "corrupt snapshot: checksum mismatch (truncated or bit-flipped)".to_string(),
        ));
    }
    decode_with_watermark(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
             karma INT DEFAULT 0);
             CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id) ON DELETE CASCADE);
             CREATE INDEX posts_by_user ON posts (user_id);",
        )
        .unwrap();
        db.execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")
            .unwrap();
        db.execute("INSERT INTO posts (user_id, body) VALUES (1, 'x''y'), (2, NULL)")
            .unwrap();
        db.set_now(777);
        db
    }

    #[test]
    fn encode_decode_round_trips() {
        let db = sample();
        let data = encode(&db).unwrap();
        let back = decode(&data).unwrap();
        assert_eq!(back.dump(), db.dump());
        assert_eq!(back.now(), 777);
        // Schema survived: constraints still enforced.
        assert!(back
            .execute("INSERT INTO users (id, name) VALUES (1, 'dup')")
            .is_err());
        assert!(back
            .execute("INSERT INTO posts (user_id, body) VALUES (99, 'z')")
            .is_err());
        // AUTO_INCREMENT continues where it left off.
        let r = back
            .execute("INSERT INTO users (name) VALUES ('zoe')")
            .unwrap();
        assert_eq!(r.last_insert_id, Some(3));
        // Cascade action survived.
        back.execute("DELETE FROM users WHERE id = 1").unwrap();
        assert_eq!(
            back.execute("SELECT COUNT(*) FROM posts")
                .unwrap()
                .scalar()
                .unwrap(),
            &crate::Value::Int(1)
        );
    }

    #[test]
    fn row_ids_survive_a_round_trip() {
        let db = sample();
        // Punch a hole: delete the first post so a free slot exists.
        db.execute("DELETE FROM posts WHERE id = 1").unwrap();
        let before = db.snapshot_tables().unwrap();
        let back = decode(&encode(&db).unwrap()).unwrap();
        let after = back.snapshot_tables().unwrap();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.rows, a.rows, "row ids drifted in {}", b.schema.name);
            assert_eq!(b.slots, a.slots, "slot count drifted in {}", b.schema.name);
        }
        // The freed slot is reused, not appended past it.
        back.execute("INSERT INTO posts (user_id, body) VALUES (2, 'new')")
            .unwrap();
        assert_eq!(
            back.snapshot_tables().unwrap()[1].slots,
            before[1].slots,
            "insert should reuse the free slot"
        );
    }

    #[test]
    fn v2_snapshots_still_load() {
        // A hand-built v2 image: one table, two columns, one row, encoded
        // with the pre-WAL layout (no slot ids, no watermark).
        let mut w = Writer::new();
        w.buf.extend_from_slice(b"EDNADB\x02\x00");
        w.i64(42); // now
        w.u32(1); // one table
        w.string("t");
        w.u32(2); // columns
        for (name, ty) in [("id", "INT"), ("name", "TEXT")] {
            w.string(name);
            w.string(ty);
            w.u8(0); // not_null
            w.u8(0); // unique
            w.u8(u8::from(name == "id")); // auto_increment
            w.u8(0); // pii
            w.u8(0); // no default
        }
        w.u32(0); // primary key = column 0
        w.u32(0); // no foreign keys
        w.i64(2); // next_auto
        w.u32(0); // no explicit indexes
        w.u32(1); // one row (v2: no slot header, no row id)
        w.value(&Value::Int(1));
        w.value(&Value::Text("bea".into()));
        let (db, watermark) = decode_with_watermark(&w.buf).unwrap();
        assert_eq!(watermark, 0);
        assert_eq!(db.now(), 42);
        assert_eq!(
            db.execute("SELECT name FROM t WHERE id = 1")
                .unwrap()
                .scalar()
                .unwrap(),
            &Value::Text("bea".into())
        );
    }

    #[test]
    fn explicit_indexes_survive() {
        let db = sample();
        let back = decode(&encode(&db).unwrap()).unwrap();
        // The explicit index exists: creating it again collides.
        assert!(back
            .execute("CREATE INDEX posts_by_user ON posts (user_id)")
            .is_err());
    }

    #[test]
    fn save_load_file_round_trip() {
        let db = sample();
        let path =
            std::env::temp_dir().join(format!("edna_snapshot_test_{}.edna", std::process::id()));
        save(&db, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.dump(), db.dump());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn saved_file_corruption_is_caught_by_checksum() {
        let db = sample();
        let path =
            std::env::temp_dir().join(format!("edna_snapshot_corrupt_{}.edna", std::process::id()));
        save(&db, &path).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Truncation (a crash mid-write that somehow bypassed the rename).
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let err = load(&path).err().unwrap().to_string();
        assert!(err.contains("checksum"), "got: {err}");

        // A single flipped bit mid-body.
        let mut flipped = full.clone();
        flipped[full.len() / 2] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(load(&path).is_err());

        // Intact bytes still load.
        std::fs::write(&path, &full).unwrap();
        assert_eq!(load(&path).unwrap().dump(), db.dump());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let db = sample();
        let data = encode(&db).unwrap();
        assert!(decode(&data[..data.len() - 1]).is_err(), "truncated");
        let mut wrong_magic = data.clone();
        wrong_magic[0] = b'X';
        assert!(decode(&wrong_magic).is_err(), "bad magic");
        let mut bad_version = data.clone();
        bad_version[6] = 9;
        assert!(decode(&bad_version).is_err(), "unknown version");
        let mut trailing = data;
        trailing.push(0);
        assert!(decode(&trailing).is_err(), "trailing bytes");
    }
}
