//! The threaded TCP server: bounded pool, admission control, drain.
//!
//! Shape:
//!
//! ```text
//! acceptor ──try_send──▶ admission queue (bounded) ──▶ N workers
//!    │ full?                                             │
//!    └── err busy + close                                └── frame loop
//! ```
//!
//! - The **acceptor** never blocks on a client: a full admission queue
//!   answers `err busy` immediately and closes — explicit backpressure
//!   instead of an unbounded thread-per-connection pile-up.
//! - **Workers** own a connection until EOF, idle timeout, a framing
//!   violation, or drain. Well-formed-but-wrong requests (bad op, bad
//!   SQL) get an error response and the connection lives on; framing
//!   violations (checksum, truncation, oversize, deadline) get a final
//!   structured error and the connection is closed, because nothing
//!   after a corrupt frame can be trusted.
//! - **Graceful drain**: the `shutdown` op stops the acceptor, lets
//!   in-flight requests finish, joins every worker, then checkpoints
//!   the workspace so the WAL is folded into the snapshot. Drain is an
//!   operator action, not a tenant one: the wire op must present the
//!   operator token minted at startup ([`ServerHandle::shutdown_token`],
//!   printed by `edna serve`), or any client could stop the server for
//!   everyone. A SIGKILL at any instant is still safe — not because of
//!   anything here, but because every committed statement was already
//!   fsynced to the WAL (see `edna recover`).
//! - A **background checkpointer** (optional) periodically snapshots to
//!   bound WAL growth during long serving runs.
//! - A **decay daemon** (optional) ticks registered expiration/decay
//!   policies on a wall clock, serialized through the same door lock as
//!   apply/reveal so policy runs never interleave with foreground work.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use edna_util::hex;
use edna_util::sha256::sha256;
use edna_util::sync::lock_unpoisoned;

use crate::caps;
use crate::proto::{code, Request, Response};
use crate::service::Service;
use crate::wire;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker pool size = connections served concurrently.
    pub max_conns: usize,
    /// Admission queue depth beyond the in-service connections; a
    /// connection arriving past this gets `err busy`.
    pub queue_depth: usize,
    /// Idle timeout *and* per-frame arrival budget.
    pub conn_timeout: Duration,
    /// Largest accepted frame body.
    pub max_frame_bytes: usize,
    /// Checkpoint the workspace this often while serving (bounds WAL
    /// growth); `None` disables background checkpointing.
    pub checkpoint_every: Option<Duration>,
    /// Drive registered expiration/decay policies this often via the
    /// decay daemon; `None` disables background policy runs.
    pub policy_tick: Option<Duration>,
    /// Row budget per policy tick: a tick transforms at most roughly
    /// this many rows, then yields the door back to foreground traffic
    /// and resumes where it left off on the next tick.
    pub decay_rows: usize,
    /// `--sync-replicas N`: hold each group-commit batch's waiters until
    /// `N` followers acknowledged the batch. 0 = fully asynchronous.
    pub sync_replicas: usize,
    /// How long the commit gate waits for the sync quorum before
    /// demoting stragglers to async and releasing the batch.
    pub repl_gate_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_conns: 8,
            queue_depth: 8,
            conn_timeout: Duration::from_secs(10),
            max_frame_bytes: 1 << 20,
            checkpoint_every: Some(Duration::from_secs(30)),
            policy_tick: Some(Duration::from_secs(1)),
            decay_rows: 512,
            sync_replicas: 0,
            repl_gate_timeout: Duration::from_secs(2),
        }
    }
}

/// Shutdown coordination shared by the acceptor, workers, and handle.
/// The wire `shutdown` op is authenticated against `token_hash`: only a
/// caller holding the operator token minted at startup may drain the
/// server, so one tenant cannot deny service to the rest.
struct ShutdownCtl {
    flag: AtomicBool,
    addr: SocketAddr,
    token_hash: [u8; 32],
}

impl ShutdownCtl {
    /// Constant-size comparison: both sides are hashed before the
    /// equality check, so the compare never walks a secret prefix.
    fn token_matches(&self, presented: &str) -> bool {
        sha256(presented.trim().as_bytes()) == self.token_hash
    }
}

/// A running server. Dropping the handle does not stop the server; call
/// [`ServerHandle::stop`] (or send the `shutdown` op with the operator
/// token) and then [`ServerHandle::wait`].
pub struct ServerHandle {
    svc: Arc<Service>,
    ctl: Arc<ShutdownCtl>,
    token: String,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the picked port).
    pub fn addr(&self) -> SocketAddr {
        self.ctl.addr
    }

    /// The operator token the wire `shutdown` op must present (`token`
    /// header). Minted fresh per server start; `edna serve` prints it to
    /// stdout for the supervisor.
    pub fn shutdown_token(&self) -> &str {
        &self.token
    }

    /// Begins a drain from inside the process, as the authenticated
    /// `shutdown` op does from the wire.
    pub fn stop(&self) {
        trigger_shutdown(&self.svc, &self.ctl);
    }

    /// Waits for the drain to complete (workers joined, workspace
    /// checkpointed).
    pub fn wait(self) -> std::thread::Result<()> {
        self.thread.join()
    }

    /// [`ServerHandle::stop`] + [`ServerHandle::wait`].
    pub fn stop_and_wait(self) -> std::thread::Result<()> {
        self.stop();
        self.wait()
    }
}

fn trigger_shutdown(svc: &Service, ctl: &ShutdownCtl) {
    svc.begin_drain();
    ctl.flag.store(true, Ordering::SeqCst);
    // Wake the acceptor out of its blocking accept; the connection is
    // dropped on arrival.
    let _ = TcpStream::connect_timeout(&ctl.addr, Duration::from_secs(1));
}

/// Binds and serves in background threads, returning a handle.
pub fn start(svc: Arc<Service>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // Every non-replica server is follower-capable: attach the hub and
    // tap the WAL and vault so `repl stream` handshakes have a live
    // feed. A replica (attached before `start`) accepts no followers.
    if !svc.is_replica() && svc.hub().is_none() {
        let hub = crate::repl::ReplHub::new(
            svc.workspace(),
            config.sync_replicas,
            config.repl_gate_timeout,
        );
        crate::repl::install(&hub, svc.workspace());
        svc.attach_primary(hub);
    }
    let token = hex::to_hex(&caps::mint().map_err(std::io::Error::other)?);
    let ctl = Arc::new(ShutdownCtl {
        flag: AtomicBool::new(false),
        addr,
        token_hash: sha256(token.as_bytes()),
    });
    let thread = {
        let svc = svc.clone();
        let ctl = ctl.clone();
        std::thread::Builder::new()
            .name("edna-acceptor".to_string())
            .spawn(move || run(listener, svc, config, ctl))?
    };
    Ok(ServerHandle {
        svc,
        ctl,
        token,
        thread,
    })
}

fn run(listener: TcpListener, svc: Arc<Service>, config: ServerConfig, ctl: Arc<ShutdownCtl>) {
    let metrics = svc.workspace().db.metrics();
    let connections_total = metrics.counter(
        "edna_server_connections_total",
        "Connections admitted to the worker pool",
    );
    let busy_total = metrics.counter(
        "edna_server_busy_rejections_total",
        "Connections refused with `err busy` by admission control",
    );
    let frame_errors_total = metrics.counter(
        "edna_server_frame_errors_total",
        "Connections closed for framing violations",
    );
    let timeouts_total = metrics.counter(
        "edna_server_timeouts_total",
        "Connections closed for missing a frame deadline",
    );

    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::new();
    for i in 0..config.max_conns.max(1) {
        let rx = rx.clone();
        let svc = svc.clone();
        let config = config.clone();
        let ctl = ctl.clone();
        let frame_errors_total = frame_errors_total.clone();
        let timeouts_total = timeouts_total.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("edna-worker-{i}"))
                .spawn(move || {
                    worker_loop(
                        &rx,
                        &svc,
                        &config,
                        &ctl,
                        &frame_errors_total,
                        &timeouts_total,
                    )
                })
                .expect("spawn worker"),
        );
    }

    // Optional background checkpointer, bounding WAL growth.
    let checkpointer = config.checkpoint_every.map(|every| {
        let svc = svc.clone();
        let ctl = ctl.clone();
        std::thread::Builder::new()
            .name("edna-checkpointer".to_string())
            .spawn(move || {
                let tick = Duration::from_millis(50);
                'outer: loop {
                    let mut waited = Duration::ZERO;
                    while waited < every {
                        if ctl.flag.load(Ordering::SeqCst) {
                            break 'outer;
                        }
                        std::thread::sleep(tick);
                        waited += tick;
                    }
                    if ctl.flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Err(e) = svc.checkpoint() {
                        eprintln!("edna serve: background checkpoint failed: {e}");
                    }
                }
            })
            .expect("spawn checkpointer")
    });

    // The decay daemon: drives registered policies on a wall clock while
    // the server runs. Each wakeup computes a logical `now` anchored at
    // the durable clock observed at startup plus real elapsed seconds —
    // monotonic across ticks, and never behind what a restarted server
    // already persisted. The tick itself serializes through the door's
    // write side (inside `Service::policy_tick_at`), so it never
    // interleaves with an apply/reveal/checkpoint or a foreground
    // statement.
    let decayer = config
        .policy_tick
        .filter(|_| svc.has_policies() && !svc.is_replica())
        .map(|every| {
            let svc = svc.clone();
            let ctl = ctl.clone();
            let budget = config.decay_rows.max(1);
            std::thread::Builder::new()
                .name("edna-decay".to_string())
                .spawn(move || {
                    let base = svc.workspace().db.global_now();
                    let started = std::time::Instant::now();
                    let tick = Duration::from_millis(50).min(every);
                    'outer: loop {
                        let mut waited = Duration::ZERO;
                        while waited < every {
                            if ctl.flag.load(Ordering::SeqCst) {
                                break 'outer;
                            }
                            std::thread::sleep(tick);
                            waited += tick;
                        }
                        if ctl.flag.load(Ordering::SeqCst) {
                            break;
                        }
                        let now = base + started.elapsed().as_secs() as i64;
                        if let Err(e) = svc.policy_tick_at(now, Some(budget)) {
                            eprintln!("edna serve: policy tick failed: {e}");
                        }
                    }
                })
                .expect("spawn decay daemon")
        });

    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if ctl.flag.load(Ordering::SeqCst) {
                    // Either the wake connection or a late client; if it
                    // speaks, it finds out we are draining.
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let _ = wire::write_frame(
                        &mut stream,
                        &Response::err(code::SHUTTING_DOWN, "server is draining").encode(),
                    );
                    break;
                }
                match tx.try_send(stream) {
                    Ok(()) => connections_total.inc(),
                    Err(TrySendError::Full(mut stream)) => {
                        busy_total.inc();
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                        let _ = wire::write_frame(
                            &mut stream,
                            &Response::err(
                                code::BUSY,
                                "admission queue is full; retry with backoff",
                            )
                            .encode(),
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(_) => {
                if ctl.flag.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }

    // Drain: close the queue, let workers finish their connections.
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    if let Some(c) = checkpointer {
        let _ = c.join();
    }
    if let Some(d) = decayer {
        let _ = d.join();
    }
    // Final checkpoint: fold the WAL into the snapshot so a clean
    // shutdown leaves a clean state.
    if let Err(e) = svc.checkpoint() {
        eprintln!("edna serve: shutdown checkpoint failed: {e}");
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    svc: &Arc<Service>,
    config: &ServerConfig,
    ctl: &Arc<ShutdownCtl>,
    frame_errors_total: &edna_obs::Counter,
    timeouts_total: &edna_obs::Counter,
) {
    loop {
        let stream = {
            let guard = lock_unpoisoned(rx);
            match guard.recv() {
                Ok(s) => s,
                Err(_) => break, // acceptor dropped the sender: drain.
            }
        };
        serve_connection(stream, svc, config, ctl, frame_errors_total, timeouts_total);
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> bool {
    wire::write_frame(stream, &resp.encode()).is_ok()
}

/// Every vault-side file of `state`, as `(relative name, bytes)` pairs
/// in the stream's naming scheme (`global/…`, `user/…`, `journal/…`).
fn vault_bootstrap_files(state: &std::path::Path) -> std::io::Result<Vec<(String, Vec<u8>)>> {
    let root = edna_core::workspace::sidecar(state, ".vault");
    let mut out = Vec::new();
    for tier in ["global", "user"] {
        let Ok(entries) = std::fs::read_dir(root.join(tier)) else {
            continue;
        };
        for entry in entries {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            out.push((format!("{tier}/{name}"), std::fs::read(entry.path())?));
        }
    }
    let journal = root.join("pending.journal");
    if journal.exists() {
        out.push((
            "journal/pending.journal".to_string(),
            std::fs::read(journal)?,
        ));
    }
    Ok(out)
}

/// Handles a `repl stream` handshake: fences by epoch, ships a bootstrap
/// (checkpoint + state files, copied and registered under the door's
/// write side so no commit slips between snapshot and live tail), then
/// runs the sender loop on this worker thread until the stream dies.
fn repl_stream_connection(mut stream: TcpStream, svc: &Arc<Service>, req: &Request) {
    use crate::repl::{self, StreamRecord};

    let Some(hub) = svc.hub() else {
        send(
            &mut stream,
            &Response::err(code::USAGE, "this node does not accept followers"),
        );
        return;
    };
    let follower_epoch: u64 = match req.header_value("epoch").unwrap_or("0").trim().parse() {
        Ok(e) => e,
        Err(_) => {
            send(
                &mut stream,
                &Response::err(code::USAGE, "bad `epoch` header on repl stream"),
            );
            return;
        }
    };
    if follower_epoch > hub.epoch() {
        // The would-be follower has lived through a promotion this node
        // never saw: this node is the deposed primary. Feeding the
        // promoted one would rewind acknowledged history.
        send(
            &mut stream,
            &Response::err(
                code::STALE_EPOCH,
                format!(
                    "follower is at epoch {follower_epoch}, this node at {}; a deposed \
                     primary cannot feed a promoted node",
                    hub.epoch()
                ),
            ),
        );
        return;
    }
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    type Staged = (
        Vec<u8>,
        Vec<u8>,
        Vec<(String, Vec<u8>)>,
        u64,
        Arc<repl::Follower>,
    );
    let staged = svc.with_write_door(|| -> Result<Staged, String> {
        let ws = svc.workspace();
        ws.save()
            .map_err(|e| format!("bootstrap checkpoint failed: {e}"))?;
        let snapshot = std::fs::read(&ws.path).map_err(|e| format!("cannot read snapshot: {e}"))?;
        let wal =
            std::fs::read(edna_core::workspace::sidecar(&ws.path, ".wal")).unwrap_or_default();
        let vault =
            vault_bootstrap_files(&ws.path).map_err(|e| format!("cannot read vault files: {e}"))?;
        let last_lsn = ws.db.wal_last_lsn();
        let follower = hub.register(peer.clone());
        Ok((snapshot, wal, vault, last_lsn, follower))
    });
    let (snapshot, wal, vault, last_lsn, follower) = match staged {
        Ok(t) => t,
        Err(e) => {
            send(&mut stream, &Response::err(code::RUNTIME, e));
            return;
        }
    };
    // Bootstrap ships whole files; give it a generous write budget.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
    let epoch = hub.epoch();
    let shipped = (|| -> std::io::Result<()> {
        wire::write_frame(
            &mut stream,
            &Response::ok("streaming\n")
                .header("epoch", epoch.to_string())
                .encode(),
        )?;
        wire::write_frame(&mut stream, &StreamRecord::Snapshot(snapshot).to_frame())?;
        wire::write_frame(&mut stream, &StreamRecord::WalFile(wal).to_frame())?;
        for (name, bytes) in vault {
            wire::write_frame(
                &mut stream,
                &StreamRecord::VaultFile(name, bytes).to_frame(),
            )?;
        }
        wire::write_frame(
            &mut stream,
            &StreamRecord::SnapEnd { last_lsn, epoch }.to_frame(),
        )
    })();
    if shipped.is_err() {
        hub.drop_follower(&follower);
        return;
    }
    eprintln!("edna serve: follower {peer} attached (epoch {epoch}, bootstrap lsn {last_lsn})");
    // Acks come back on a clone of the socket; the worker thread itself
    // becomes the sender until drain or stream death.
    match stream.try_clone() {
        Ok(ack_stream) => {
            let hub_for_acks = hub.clone();
            let follower_for_acks = follower.clone();
            let spawned = std::thread::Builder::new()
                .name("edna-repl-acks".to_string())
                .spawn(move || repl::ack_reader_loop(hub_for_acks, follower_for_acks, ack_stream));
            if spawned.is_err() {
                hub.drop_follower(&follower);
                return;
            }
        }
        Err(_) => {
            hub.drop_follower(&follower);
            return;
        }
    }
    let svc_drain = svc.clone();
    repl::sender_loop(&hub, &follower, &mut stream, move || svc_drain.draining());
    eprintln!("edna serve: follower {peer} detached");
}

fn serve_connection(
    mut stream: TcpStream,
    svc: &Arc<Service>,
    config: &ServerConfig,
    ctl: &Arc<ShutdownCtl>,
    frame_errors_total: &edna_obs::Counter,
    timeouts_total: &edna_obs::Counter,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(config.conn_timeout));
    loop {
        if svc.draining() {
            send(
                &mut stream,
                &Response::err(code::SHUTTING_DOWN, "server is draining"),
            );
            return;
        }
        let outcome = wire::read_frame(
            &mut stream,
            config.max_frame_bytes,
            config.conn_timeout,
            config.conn_timeout,
        );
        let body = match outcome {
            Ok(wire::ReadOutcome::Frame(body)) => body,
            Ok(wire::ReadOutcome::Eof) | Ok(wire::ReadOutcome::IdleTimeout) => return,
            Err(wire::WireError::TooLarge(n)) => {
                frame_errors_total.inc();
                send(
                    &mut stream,
                    &Response::err(
                        code::TOO_LARGE,
                        format!(
                            "frame of {n} bytes exceeds the {} byte limit",
                            config.max_frame_bytes
                        ),
                    ),
                );
                return;
            }
            Err(wire::WireError::DeadlineExpired) => {
                timeouts_total.inc();
                send(
                    &mut stream,
                    &Response::err(code::TIMEOUT, "frame did not arrive within the deadline"),
                );
                return;
            }
            Err(e @ (wire::WireError::Torn | wire::WireError::BadChecksum)) => {
                frame_errors_total.inc();
                send(&mut stream, &Response::err(code::FRAME, e.to_string()));
                return;
            }
            Err(wire::WireError::Io(_)) => return,
        };
        // From here on the frame is intact; request-level problems keep
        // the connection alive.
        let resp = match std::str::from_utf8(&body) {
            Err(_) => {
                frame_errors_total.inc();
                send(
                    &mut stream,
                    &Response::err(code::FRAME, "request body is not UTF-8"),
                );
                return;
            }
            Ok(text) => match Request::parse(text) {
                Err(e) => Response::err(code::USAGE, e),
                // A follower attaching: the connection stops speaking
                // request/response and becomes a replication stream; this
                // worker thread is the sender until the stream dies.
                Ok(req) if req.op == "repl" && req.arg.as_deref() == Some("stream") => {
                    repl_stream_connection(stream, svc, &req);
                    return;
                }
                Ok(req) if req.op == "shutdown" => {
                    // Draining stops the whole server, so it is operator
                    // business: the request must carry the token minted
                    // at startup, or any tenant could deny service to
                    // every other one.
                    let authorized = req
                        .header_value("token")
                        .is_some_and(|t| ctl.token_matches(t));
                    if authorized {
                        // Flip the drain flag before acknowledging, so by
                        // the time the caller sees `ok` no new work is
                        // accepted.
                        trigger_shutdown(svc, ctl);
                        send(&mut stream, &Response::ok("draining\n"));
                        return;
                    }
                    svc.note_denied();
                    Response::err(
                        code::DENIED,
                        "shutdown requires the operator token minted at server start \
                         (`token` header)",
                    )
                }
                // A frame that arrives after drain began is new work,
                // not in-flight work: refuse it and close.
                Ok(_) if svc.draining() => {
                    send(
                        &mut stream,
                        &Response::err(code::SHUTTING_DOWN, "server is draining"),
                    );
                    return;
                }
                Ok(req) => svc.handle(&req),
            },
        };
        if !send(&mut stream, &resp) {
            return;
        }
    }
}
