//! `edna-server`: the fault-hardened, multi-tenant disguise server.
//!
//! The paper frames Edna as an *external tool* applications call into
//! (Figure 1). This crate gives that tool a network face: one process
//! holds the workspace (and its `.lock`), and many clients — the
//! application, operators, users' own agents — speak a small framed
//! protocol to it. The design goals are the robustness ones:
//!
//! - **No trust in the network**: every message is a checksummed frame
//!   ([`wire`]); corrupt, truncated, oversized, or dribbled input gets a
//!   structured error, never a panic or a hung worker.
//! - **No tenant starves another**: a bounded worker pool with explicit
//!   `busy` backpressure ([`server`]), absolute per-frame deadlines, and
//!   a service-level door that keeps long disguise applications from
//!   blocking liveness probes ([`service`]).
//! - **The operator is not omnipotent**: reversible applications mint
//!   per-user capability tokens; reveal over the wire requires the
//!   token, and the server stores only its hash ([`caps`]). Wire SQL
//!   cannot reach the reserved `_edna_*` tables that back the gate
//!   ([`guard`]).
//! - **Kill it anytime**: graceful drain (the `shutdown` op,
//!   authenticated with the operator token minted at startup)
//!   checkpoints on the way out, and SIGKILL at any instant is
//!   recoverable because the WAL made every committed statement durable
//!   first (`edna recover`).
//!
//! Entry points: [`service::Service::new`] wraps an open
//! [`edna_core::Workspace`], [`server::start`] serves it, and
//! [`client::Client`] talks to it.

#![warn(missing_docs)]

pub mod caps;
pub mod client;
pub mod guard;
pub mod proto;
pub mod repl;
pub mod replica;
pub mod server;
pub mod service;
pub mod wire;

pub use client::Client;
pub use proto::{code, Request, Response};
pub use repl::ReplHub;
pub use replica::ReplicaShared;
pub use server::{start, ServerConfig, ServerHandle};
pub use service::Service;
