//! The request/response text format carried inside wire frames.
//!
//! A frame body is UTF-8 text shaped like a minimal internet message:
//!
//! ```text
//! <op> [<argument>]
//! <key>: <value>
//! ...
//! <blank line>
//! <free-form body>
//! ```
//!
//! Responses lead with `ok` or `err <code>` instead of an op. The format
//! is deliberately line-based and dependency-free: a human can speak it
//! with a hex editor, and a torn or hostile frame degrades into a parse
//! error rather than undefined behavior (framing-level corruption is
//! already rejected below this layer, see [`crate::wire`]).

use edna_util::frame;

/// Error codes a response can carry (`err <code>`), stable across
/// releases so clients and scripts can dispatch on them.
pub mod code {
    /// Malformed request: unknown op, missing argument or header.
    pub const USAGE: &str = "usage";
    /// Admission queue full; retry later.
    pub const BUSY: &str = "busy";
    /// The request overran a read deadline mid-frame.
    pub const TIMEOUT: &str = "timeout";
    /// Framing violation: bad checksum, torn frame, non-UTF-8 body.
    pub const FRAME: &str = "frame";
    /// Frame length exceeds the server's `--max-frame-bytes`.
    pub const TOO_LARGE: &str = "too-large";
    /// Capability check failed: missing, unknown, or wrong token.
    pub const DENIED: &str = "denied";
    /// The operation itself failed (engine error, unknown disguise, ...).
    pub const RUNTIME: &str = "runtime";
    /// The server is draining and accepts no new work.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// This node is a read-only replica; writes go to the primary.
    pub const READ_ONLY: &str = "read-only";
    /// Replication handshake refused: the would-be follower's epoch is
    /// ahead of this primary's, so this primary is the deposed one.
    pub const STALE_EPOCH: &str = "stale-epoch";
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The operation: `sql`, `apply`, `reveal`, `check`, `stats`,
    /// `recover`, `health`, `ready`, `shutdown`.
    pub op: String,
    /// Optional positional argument on the op line (e.g. a disguise name).
    pub arg: Option<String>,
    /// `key: value` headers, in order.
    pub headers: Vec<(String, String)>,
    /// Free-form body after the blank line (e.g. a SQL statement).
    pub body: String,
}

impl Request {
    /// A request with no argument, headers, or body.
    pub fn new(op: impl Into<String>) -> Request {
        Request {
            op: op.into(),
            arg: None,
            headers: Vec::new(),
            body: String::new(),
        }
    }

    /// Sets the positional argument.
    pub fn arg(mut self, arg: impl Into<String>) -> Request {
        self.arg = Some(arg.into());
        self
    }

    /// Appends a header.
    pub fn header(mut self, key: impl Into<String>, value: impl Into<String>) -> Request {
        self.headers.push((key.into(), value.into()));
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: impl Into<String>) -> Request {
        self.body = body.into();
        self
    }

    /// First value of header `key`, if present.
    pub fn header_value(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Renders the request as protocol text.
    pub fn render(&self) -> String {
        let mut out = self.op.clone();
        if let Some(arg) = &self.arg {
            out.push(' ');
            out.push_str(arg);
        }
        out.push('\n');
        render_tail(out, &self.headers, &self.body)
    }

    /// Renders and frames the request for the wire.
    pub fn encode(&self) -> Vec<u8> {
        frame::encode_record(self.render().as_bytes())
    }

    /// Parses protocol text into a request.
    pub fn parse(text: &str) -> Result<Request, String> {
        let (first, headers, body) = parse_message(text)?;
        let mut words = first.splitn(2, ' ');
        let op = words.next().unwrap_or("").trim();
        if op.is_empty() {
            return Err("empty request".to_string());
        }
        let arg = words
            .next()
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty());
        Ok(Request {
            op: op.to_string(),
            arg,
            headers,
            body,
        })
    }
}

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// `true` for `ok`, `false` for `err <code>`.
    pub ok: bool,
    /// The error code when `!ok` (one of [`code`]'s constants).
    pub code: Option<String>,
    /// `key: value` headers, in order.
    pub headers: Vec<(String, String)>,
    /// Free-form body (result table, error message, metrics text, ...).
    pub body: String,
}

impl Response {
    /// A successful response with the given body.
    pub fn ok(body: impl Into<String>) -> Response {
        Response {
            ok: true,
            code: None,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An error response with the given code and message body.
    pub fn err(code: &str, msg: impl Into<String>) -> Response {
        Response {
            ok: false,
            code: Some(code.to_string()),
            headers: Vec::new(),
            body: msg.into(),
        }
    }

    /// Appends a header.
    pub fn header(mut self, key: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((key.into(), value.into()));
        self
    }

    /// First value of header `key`, if present.
    pub fn header_value(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Renders the response as protocol text.
    pub fn render(&self) -> String {
        let mut out = if self.ok {
            "ok\n".to_string()
        } else {
            format!("err {}\n", self.code.as_deref().unwrap_or(code::RUNTIME))
        };
        out = render_tail(std::mem::take(&mut out), &self.headers, &self.body);
        out
    }

    /// Renders and frames the response for the wire.
    pub fn encode(&self) -> Vec<u8> {
        frame::encode_record(self.render().as_bytes())
    }

    /// Parses protocol text into a response.
    pub fn parse(text: &str) -> Result<Response, String> {
        let (first, headers, body) = parse_message(text)?;
        let (ok, code) = if first == "ok" {
            (true, None)
        } else if let Some(c) = first.strip_prefix("err ") {
            (false, Some(c.trim().to_string()))
        } else {
            return Err(format!("bad status line {first:?}"));
        };
        Ok(Response {
            ok,
            code,
            headers,
            body,
        })
    }
}

fn render_tail(mut out: String, headers: &[(String, String)], body: &str) -> String {
    for (k, v) in headers {
        out.push_str(k);
        out.push_str(": ");
        out.push_str(v);
        out.push('\n');
    }
    out.push('\n');
    out.push_str(body);
    out
}

/// Splits protocol text into (first line, headers, body).
type Message = (String, Vec<(String, String)>, String);

fn parse_message(text: &str) -> Result<Message, String> {
    let mut lines = text.split('\n');
    // `consumed` counts raw bytes, so measure the line before stripping
    // the `\r` a CRLF client sends.
    let raw_first = lines.next().unwrap_or("");
    let first = raw_first.trim_end_matches('\r').to_string();
    if first.trim().is_empty() {
        return Err("empty request".to_string());
    }
    let mut headers = Vec::new();
    let mut consumed = raw_first.len() + 1;
    let mut found_blank = false;
    for line in lines {
        consumed += line.len() + 1;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            found_blank = true;
            break;
        }
        let Some((k, v)) = line.split_once(':') else {
            return Err(format!("bad header line {line:?}"));
        };
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }
    let body = if found_blank && consumed <= text.len() {
        text[consumed..].to_string()
    } else {
        String::new()
    };
    Ok((first, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request::new("apply")
            .arg("Gdpr")
            .header("user", "19")
            .body("extra context");
        let parsed = Request::parse(&req.render()).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.header_value("user"), Some("19"));
    }

    #[test]
    fn response_round_trips() {
        let ok = Response::ok("2 rows\n").header("rows", "2");
        assert_eq!(Response::parse(&ok.render()).unwrap(), ok);
        let err = Response::err(code::DENIED, "bad capability");
        let parsed = Response::parse(&err.render()).unwrap();
        assert!(!parsed.ok);
        assert_eq!(parsed.code.as_deref(), Some(code::DENIED));
        assert_eq!(parsed.body, "bad capability");
    }

    #[test]
    fn bodyless_request_parses() {
        let req = Request::parse("health\n\n").unwrap();
        assert_eq!(req.op, "health");
        assert!(req.arg.is_none());
        assert!(req.body.is_empty());
        // Even without the trailing blank line.
        let req = Request::parse("health").unwrap();
        assert_eq!(req.op, "health");
    }

    #[test]
    fn hostile_text_is_a_clean_error() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("\n\n").is_err());
        assert!(Request::parse("sql\nnot a header\n\nbody").is_err());
        assert!(Response::parse("neither ok nor err\n\n").is_err());
    }

    #[test]
    fn crlf_line_endings_do_not_shift_the_body() {
        let req = Request::parse("sql\r\nuser: 7\r\n\r\nSELECT 1").unwrap();
        assert_eq!(req.op, "sql");
        assert_eq!(req.header_value("user"), Some("7"));
        assert_eq!(req.body, "SELECT 1");
        let resp = Response::parse("ok\r\nrows: 2\r\n\r\nbody line\n").unwrap();
        assert!(resp.ok);
        assert_eq!(resp.body, "body line\n");
    }

    #[test]
    fn multiline_sql_body_survives() {
        let stmt = "SELECT *\nFROM users\nWHERE id = 1";
        let req = Request::new("sql").body(stmt);
        assert_eq!(Request::parse(&req.render()).unwrap().body, stmt);
    }
}
