//! The shared service: one workspace, many concurrent requests.
//!
//! [`Service`] wraps the single open [`Workspace`] in the shape worker
//! threads need: every operation takes `&self`, and a service-level
//! reader/writer "door" serializes the operations that cannot overlap.
//!
//! The engine has exactly one transaction slot (an explicit `BEGIN`
//! claims the whole database), so the door maps operations onto it:
//!
//! - `sql`, `check`, `stats`, `recover` take the door's **read** side —
//!   plain statements commit atomically under the engine's own
//!   per-statement write lock and may interleave freely;
//! - `apply` and `reveal` run inside an explicit engine transaction and
//!   take the door's **write** side, as does the background
//!   checkpointer (a snapshot taken mid-disguise would be consistent
//!   but operationally confusing);
//! - wire-level `BEGIN`/`COMMIT`/`ROLLBACK` is rejected outright: a
//!   remote client holding the global transaction slot open would be a
//!   denial of service on every other tenant.
//!
//! `health` takes no lock at all — it must answer even while a long
//! apply holds the door, because that is precisely when an operator
//! probes liveness.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use edna_core::{render_report, ApplyOptions, Policy, Scheduler, TickOutcome, Workspace};
use edna_obs::{Counter, Histogram};
use edna_relational::{Database, Value};
use edna_util::{frame, sync::read_unpoisoned, sync::write_unpoisoned};
use edna_vault::ShipKind;

use crate::caps;
use crate::proto::{code, Request, Response};
use crate::repl::ReplHub;
use crate::replica::{self, ReplicaShared};

/// Reserved table deduplicating retried `apply`/`apply_many` requests:
/// one row per client idempotency key, holding the rendered reply that
/// was sent the first time (capability header included).
pub const REQUESTS_TABLE: &str = "_edna_requests";

/// Creates the idempotency ledger if this state has never served.
fn ensure_requests_table(db: &Database) -> edna_core::Result<()> {
    if !db.has_table(REQUESTS_TABLE) {
        db.execute(&format!(
            "CREATE TABLE {REQUESTS_TABLE} (id INT PRIMARY KEY AUTO_INCREMENT, \
             idem_key TEXT NOT NULL, reply TEXT NOT NULL)"
        ))?;
    }
    Ok(())
}

/// This node's place in a replication topology.
pub enum ReplRole {
    /// No replication attached (tests, or a server before `start`).
    Standalone,
    /// Accepts followers and ships its WAL through the hub.
    Primary(Arc<ReplHub>),
    /// Read-only; applies a primary's shipped stream.
    Replica(Arc<ReplicaShared>),
}

/// Statements that would claim the engine's single explicit-transaction
/// slot from the wire.
fn is_transaction_control(sql: &str) -> bool {
    let first = sql
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_ascii_uppercase();
    matches!(
        first.as_str(),
        "BEGIN" | "COMMIT" | "ROLLBACK" | "START" | "SAVEPOINT" | "RELEASE"
    )
}

/// Validates the optional `idem` header: an idempotency key is at most
/// 128 characters of `[A-Za-z0-9._:-]`, chosen by the client per
/// logical request (not per attempt).
fn idem_key(req: &Request) -> Result<Option<String>, Response> {
    let Some(raw) = req.header_value("idem") else {
        return Ok(None);
    };
    let key = raw.trim();
    let valid = !key.is_empty()
        && key.len() <= 128
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | ':' | '-'));
    if !valid {
        return Err(Response::err(
            code::USAGE,
            "idem key must be 1..=128 characters of [A-Za-z0-9._:-]",
        ));
    }
    Ok(Some(key.to_string()))
}

/// The request-handling core, shared across workers behind an `Arc`.
pub struct Service {
    ws: Workspace,
    /// The operation door: read = interleavable ops, write = ops that
    /// own the engine's transaction slot.
    door: RwLock<()>,
    /// The registered policies with their persisted last-run stamps;
    /// ticked by the decay daemon through [`Service::policy_tick_at`].
    scheduler: Scheduler,
    draining: AtomicBool,
    /// Replication role; swapped once by `server::start` (primary) or
    /// the CLI's replica path before serving begins.
    repl: RwLock<ReplRole>,
    requests_total: Arc<Counter>,
    idem_replays_total: Arc<Counter>,
    denied_total: Arc<Counter>,
    caps_minted_total: Arc<Counter>,
    checkpoints_total: Arc<Counter>,
    policy_runs_total: Arc<Counter>,
    policy_run_errors_total: Arc<Counter>,
    decay_rows_total: Arc<Counter>,
    request_us: Arc<Histogram>,
}

/// The per-policy tick-duration histogram's metric name: the policy name
/// folded into the Prometheus grammar (lowercased, everything else `_`).
fn policy_tick_metric(policy: &str) -> String {
    let mut slug = String::with_capacity(policy.len());
    for c in policy.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
        } else {
            slug.push('_');
        }
    }
    format!("edna_policy_tick_us_{slug}")
}

impl Service {
    /// Wraps an open workspace, registering the server's metrics in the
    /// workspace's registry (so `stats` and the metrics sidecar carry
    /// them alongside the engine counters).
    pub fn new(ws: Workspace) -> edna_core::Result<Service> {
        caps::ensure_caps_table(&ws.db)?;
        ensure_requests_table(&ws.db)?;
        let scheduler = ws.scheduler()?;
        let m = ws.db.metrics();
        Ok(Service {
            scheduler,
            requests_total: m.counter(
                "edna_server_requests_total",
                "Requests handled by the disguise server",
            ),
            idem_replays_total: m.counter(
                "edna_server_idem_replays_total",
                "Retried applies answered from the idempotency ledger",
            ),
            denied_total: m.counter(
                "edna_server_denied_total",
                "Requests refused by the capability gate",
            ),
            caps_minted_total: m.counter(
                "edna_server_caps_minted_total",
                "Reveal capabilities minted at apply time",
            ),
            checkpoints_total: m.counter(
                "edna_server_checkpoints_total",
                "Background and shutdown checkpoints taken",
            ),
            policy_runs_total: m.counter(
                "edna_policy_runs_total",
                "Scheduled policy runs fired by the decay daemon (complete or paused)",
            ),
            policy_run_errors_total: m.counter(
                "edna_policy_run_errors_total",
                "Scheduler ticks that failed with an error",
            ),
            decay_rows_total: m.counter(
                "edna_decay_rows_total",
                "Rows transformed (removed, decorrelated, or modified) by policy runs",
            ),
            request_us: m.histogram(
                "edna_server_request_us",
                "Request handling latency",
                &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
            ),
            ws,
            door: RwLock::new(()),
            draining: AtomicBool::new(false),
            repl: RwLock::new(ReplRole::Standalone),
        })
    }

    /// Makes this node a primary: followers may attach through `hub`.
    pub fn attach_primary(&self, hub: Arc<ReplHub>) {
        *write_unpoisoned(&self.repl) = ReplRole::Primary(hub);
    }

    /// Makes this node a read-only replica applying a shipped stream.
    pub fn attach_replica(&self, shared: Arc<ReplicaShared>) {
        *write_unpoisoned(&self.repl) = ReplRole::Replica(shared);
    }

    /// The replication hub, when this node is a primary.
    pub fn hub(&self) -> Option<Arc<ReplHub>> {
        match &*read_unpoisoned(&self.repl) {
            ReplRole::Primary(hub) => Some(Arc::clone(hub)),
            _ => None,
        }
    }

    /// The replica state, when this node is a replica.
    pub fn replica_shared(&self) -> Option<Arc<ReplicaShared>> {
        match &*read_unpoisoned(&self.repl) {
            ReplRole::Replica(shared) => Some(Arc::clone(shared)),
            _ => None,
        }
    }

    /// Whether this node serves as a read-only replica.
    pub fn is_replica(&self) -> bool {
        matches!(&*read_unpoisoned(&self.repl), ReplRole::Replica(_))
    }

    /// Runs `f` holding the operation door's write side — used by the
    /// replication handshake, which must freeze all commits while it
    /// checkpoints and copies the state files.
    pub(crate) fn with_write_door<R>(&self, f: impl FnOnce() -> R) -> R {
        let _door = write_unpoisoned(&self.door);
        f()
    }

    /// Replica-side apply of one shipped WAL frame: verifies the frame
    /// is exactly one clean record, appends it to the local WAL at its
    /// original LSN (fsynced), then applies it to the live state — all
    /// under the door's write side so reads never see a torn step.
    /// Returns the applied LSN.
    pub fn apply_shipped_wal(&self, framed: &[u8]) -> edna_core::Result<u64> {
        let scan = frame::scan_records(framed);
        if scan.records.len() != 1 || scan.valid_len != framed.len() {
            return Err(edna_core::Error::Workspace(
                "shipped WAL frame is not exactly one clean record".to_string(),
            ));
        }
        let (lsn, record) = edna_relational::wal::decode_frame_body(&scan.records[0])
            .map_err(edna_core::Error::from)?;
        let _door = write_unpoisoned(&self.door);
        let wal = self
            .ws
            .db
            .wal()
            .ok_or_else(|| edna_core::Error::Workspace("replica has no WAL attached".into()))?;
        wal.append_shipped(lsn, framed, &record)?;
        self.ws.db.apply_shipped(&record)?;
        Ok(lsn)
    }

    /// Replica-side mirror of one shipped vault-side file mutation.
    pub fn apply_shipped_vault(
        &self,
        kind: ShipKind,
        name: &str,
        bytes: &[u8],
    ) -> Result<(), String> {
        let path = replica::resolve_vault_name(&self.ws.path, name)?;
        let _door = write_unpoisoned(&self.door);
        replica::apply_vault_file(&path, kind, bytes).map_err(|e| e.to_string())
    }

    /// The wrapped workspace (used by the server for the final save).
    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Marks the service as draining: `ready` starts failing and
    /// workers stop taking new frames.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has begun.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Counts a refusal decided outside the service (the connection
    /// layer's shutdown-token check) in the same denial metric.
    pub(crate) fn note_denied(&self) {
        self.denied_total.inc();
    }

    /// Checkpoints the workspace (snapshot + WAL truncation), waiting
    /// out any in-flight apply/reveal first.
    pub fn checkpoint(&self) -> edna_core::Result<()> {
        let _door = write_unpoisoned(&self.door);
        self.ws.save()?;
        self.checkpoints_total.inc();
        Ok(())
    }

    /// Whether any policies are registered (the server skips spawning the
    /// decay daemon otherwise).
    pub fn has_policies(&self) -> bool {
        !self.scheduler.policies().is_empty()
    }

    /// Runs one scheduler tick at logical time `now`, transforming at
    /// most roughly `budget` rows, serialized against apply/reveal/
    /// checkpoint (and foreground statements) through the door's write
    /// side. The policies evaluate `NOW()` under a thread-scoped clock;
    /// afterwards — still under the door, so no foreground statement can
    /// observe time moving mid-statement — the *global* clock is advanced
    /// to `now` when the tick is ahead of it. The advance is WAL-logged
    /// and snapshot-persisted, so a restarted server resumes from an
    /// already-advanced clock instead of rewinding the decay frontier.
    pub fn policy_tick_at(
        &self,
        now: i64,
        budget: Option<usize>,
    ) -> edna_core::Result<TickOutcome> {
        if self.is_replica() {
            return Err(edna_core::Error::Workspace(
                "a replica does not tick policies; the primary's runs arrive via the WAL"
                    .to_string(),
            ));
        }
        let _door = write_unpoisoned(&self.door);
        let outcome = match self.scheduler.tick_budgeted(&self.ws.edna, now, budget) {
            Ok(o) => o,
            Err(e) => {
                self.policy_run_errors_total.inc();
                return Err(e);
            }
        };
        if now > self.ws.db.global_now() {
            self.ws.db.set_now(now);
        }
        let m = self.ws.db.metrics();
        for run in &outcome.runs {
            self.policy_runs_total.inc();
            let rows: usize = run
                .reports
                .iter()
                .map(|r| r.rows_removed + r.rows_decorrelated + r.rows_modified)
                .sum();
            self.decay_rows_total.add(rows as u64);
            m.histogram(
                &policy_tick_metric(&run.policy),
                "Wall-clock duration of this policy's runs",
                &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
            )
            .observe(run.duration);
        }
        Ok(outcome)
    }

    /// Handles one parsed request. Never panics on hostile input; every
    /// failure maps to a structured error response.
    pub fn handle(&self, req: &Request) -> Response {
        let start = Instant::now();
        self.requests_total.inc();
        let resp = self.dispatch(req);
        self.request_us.observe(start.elapsed());
        resp
    }

    fn dispatch(&self, req: &Request) -> Response {
        if self.is_replica() {
            match req.op.as_str() {
                "apply" | "apply_many" | "reveal" => {
                    return Response::err(
                        code::READ_ONLY,
                        "this node is a read-only replica; write to the primary, or promote \
                         this node with `edna promote`",
                    )
                }
                "sql" if !crate::guard::is_read_only(req.body.trim()) => {
                    return Response::err(
                        code::READ_ONLY,
                        "a replica answers SELECT only; write to the primary",
                    )
                }
                _ => {}
            }
        }
        match req.op.as_str() {
            "health" => Response::ok("ok\n"),
            "ready" => {
                if self.draining() {
                    Response::err(code::SHUTTING_DOWN, "server is draining")
                } else {
                    Response::ok("ready\n")
                }
            }
            "sql" => self.op_sql(req),
            "apply" => self.op_apply(req),
            "apply_many" => self.op_apply_many(req),
            "reveal" => self.op_reveal(req),
            "check" => self.op_check(req),
            "stats" => {
                let _door = read_unpoisoned(&self.door);
                Response::ok(self.ws.db.metrics().render_prometheus())
            }
            "recover" => self.op_recover(req),
            "policy" => self.op_policy(req),
            "repl" => self.op_repl(req),
            // `shutdown` is intercepted by the connection loop (it has
            // to stop the accept loop, not just answer); seeing it here
            // means a non-server caller routed it manually.
            "shutdown" => Response::err(code::USAGE, "shutdown is handled at the connection layer"),
            other => Response::err(code::USAGE, format!("unknown op {other:?}")),
        }
    }

    fn op_sql(&self, req: &Request) -> Response {
        let stmt = req.body.trim();
        if stmt.is_empty() {
            return Response::err(code::USAGE, "sql needs a statement in the body");
        }
        if is_transaction_control(stmt) {
            return Response::err(
                code::USAGE,
                "explicit transactions are not available over the wire (the engine has a \
                 single transaction slot); each statement commits atomically on its own",
            );
        }
        // Reserved tables hold capability hashes and disguise bookkeeping;
        // a tenant who can touch them can forge or destroy another
        // tenant's reveal capability.
        if let Some(table) = crate::guard::reserved_table_in(stmt) {
            self.denied_total.inc();
            return Response::err(
                code::DENIED,
                format!("table {table:?} is reserved and not accessible over the wire"),
            );
        }
        let _door = read_unpoisoned(&self.door);
        match self.ws.db.execute(stmt) {
            Ok(r) => {
                let mut body = String::new();
                if !r.columns.is_empty() {
                    body.push_str(&r.columns.join("\t"));
                    body.push('\n');
                    for row in &r.rows {
                        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                        body.push_str(&cells.join("\t"));
                        body.push('\n');
                    }
                }
                let mut resp = Response::ok(body)
                    .header("rows", r.rows.len().to_string())
                    .header("affected", r.affected.to_string());
                if let Some(id) = r.last_insert_id {
                    resp = resp.header("last-insert-id", id.to_string());
                }
                resp
            }
            Err(e) => Response::err(code::RUNTIME, e.to_string()),
        }
    }

    fn op_apply(&self, req: &Request) -> Response {
        let Some(name) = req.arg.as_deref() else {
            return Response::err(code::USAGE, "apply needs a disguise name: `apply <name>`");
        };
        let user = req.header_value("user").map(edna_core::parse_user);
        let opts = ApplyOptions {
            compose: req.header_value("compose") != Some("false"),
            optimize: req.header_value("optimize") != Some("false"),
            use_transaction: true,
            ..ApplyOptions::default()
        };
        let idem = match idem_key(req) {
            Ok(k) => k,
            Err(resp) => return resp,
        };
        let _door = write_unpoisoned(&self.door);
        if let Some(key) = &idem {
            match self.idem_lookup(key) {
                Ok(Some(replay)) => {
                    self.idem_replays_total.inc();
                    return replay;
                }
                Ok(None) => {}
                Err(e) => return Response::err(code::RUNTIME, e),
            }
        }
        let resp = self.do_apply(name, user.as_ref(), opts);
        self.idem_record(idem.as_deref(), resp)
    }

    fn do_apply(
        &self,
        name: &str,
        user: Option<&edna_relational::Value>,
        opts: ApplyOptions,
    ) -> Response {
        let reversible = match self.ws.edna.spec(name) {
            Ok(spec) => spec.reversible,
            Err(e) => return Response::err(code::RUNTIME, e.to_string()),
        };
        match self.ws.edna.apply_with_options(name, user, opts) {
            Ok(report) => {
                let mut resp = Response::ok(format!(
                    "applied {} (id {}): removed {}, decorrelated {}, modified {}, \
                     placeholders {}, recorrelated {}\n",
                    report.name,
                    report.disguise_id,
                    report.rows_removed,
                    report.rows_decorrelated,
                    report.rows_modified,
                    report.placeholders_created,
                    report.rows_recorrelated,
                ))
                .header("id", report.disguise_id.to_string());
                // A reversible application gets a one-time reveal
                // capability; only its hash survives in the database.
                if reversible && report.disguise_id != 0 {
                    let minted = caps::mint()
                        .and_then(|cap| caps::store(&self.ws.db, report.disguise_id, &cap));
                    match minted {
                        Ok(token) => {
                            self.caps_minted_total.inc();
                            resp = resp.header("cap", token);
                        }
                        Err(e) => {
                            return Response::err(
                                code::RUNTIME,
                                format!("applied but could not mint capability: {e}"),
                            )
                        }
                    }
                }
                resp
            }
            Err(e) => Response::err(code::RUNTIME, e.to_string()),
        }
    }

    /// Mass disguise: `apply_many <name>` with one user id per body line
    /// (blank lines and `#` comments skipped) and an optional `shards`
    /// header. The work is owner-hash-sharded across threads inside the
    /// engine; commits from all shards share fsyncs through the
    /// group-commit WAL. Unlike `apply`, no reveal capabilities are
    /// minted — a departing cohort's reveals are an operator action
    /// (the CLI bypasses capabilities), not a wire-tenant one.
    fn op_apply_many(&self, req: &Request) -> Response {
        let Some(name) = req.arg.as_deref() else {
            return Response::err(
                code::USAGE,
                "apply_many needs a disguise name: `apply_many <name>`",
            );
        };
        let users: Vec<edna_relational::Value> = req
            .body
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(edna_core::parse_user)
            .collect();
        if users.is_empty() {
            return Response::err(code::USAGE, "apply_many needs one user id per body line");
        }
        let shards: usize = match req.header_value("shards") {
            Some(s) => match s.trim().parse() {
                Ok(n) => n,
                Err(_) => return Response::err(code::USAGE, format!("bad shard count {s:?}")),
            },
            None => 0, // 0 = one shard per available core
        };
        let idem = match idem_key(req) {
            Ok(k) => k,
            Err(resp) => return resp,
        };
        let _door = write_unpoisoned(&self.door);
        if let Some(key) = &idem {
            match self.idem_lookup(key) {
                Ok(Some(replay)) => {
                    self.idem_replays_total.inc();
                    return replay;
                }
                Ok(None) => {}
                Err(e) => return Response::err(code::RUNTIME, e),
            }
        }
        let resp = match self.ws.edna.apply_many(name, &users, shards) {
            Ok(report) => {
                let mut body = format!(
                    "applied {} to {} user(s) in {} shard(s): {} succeeded, {} failed\n",
                    report.name,
                    report.users,
                    report.shards,
                    report.succeeded,
                    report.failures.len(),
                );
                for (user, reason) in &report.failures {
                    body.push_str(&format!("failed {}: {reason}\n", user.to_sql_literal()));
                }
                Response::ok(body)
                    .header("users", report.users.to_string())
                    .header("succeeded", report.succeeded.to_string())
                    .header("failed", report.failures.len().to_string())
                    .header("shards", report.shards.to_string())
            }
            Err(e) => Response::err(code::RUNTIME, e.to_string()),
        };
        self.idem_record(idem.as_deref(), resp)
    }

    /// Answers a deduplicated retry from the ledger, if `key` has been
    /// seen. Caller holds the door's write side.
    fn idem_lookup(&self, key: &str) -> Result<Option<Response>, String> {
        let mut params = HashMap::new();
        params.insert("K".to_string(), Value::Text(key.to_string()));
        let r = self
            .ws
            .db
            .execute_with_params(
                &format!("SELECT reply FROM {REQUESTS_TABLE} WHERE idem_key = $K"),
                &params,
            )
            .map_err(|e| e.to_string())?;
        let Some(row) = r.rows.first() else {
            return Ok(None);
        };
        let text = row[0].as_text().map_err(|e| e.to_string())?;
        let replay = Response::parse(text)
            .map_err(|e| format!("stored reply for idempotency key {key:?} is corrupt: {e}"))?;
        Ok(Some(replay.header("idem", "replayed")))
    }

    /// Records a successful reply under its idempotency key so a wire
    /// retry replays it instead of re-applying. Failed applies are not
    /// recorded — they mutated nothing, so retrying them for real is
    /// correct. Caller holds the door's write side, which is what makes
    /// lookup-then-record atomic against concurrent retries.
    fn idem_record(&self, key: Option<&str>, resp: Response) -> Response {
        let Some(key) = key else { return resp };
        if !resp.ok {
            return resp;
        }
        let stored = self.ws.db.insert_row(
            REQUESTS_TABLE,
            &[
                ("idem_key", Value::Text(key.to_string())),
                ("reply", Value::Text(resp.render())),
            ],
        );
        match stored {
            Ok(_) => resp,
            // The disguise is applied but the ledger write failed: fail
            // loudly rather than invite a retry that would apply twice.
            Err(e) => Response::err(
                code::RUNTIME,
                format!(
                    "applied, but could not record idempotency key {key:?}: {e}; \
                     do NOT retry blindly — inspect the disguise history first"
                ),
            ),
        }
    }

    fn op_repl(&self, req: &Request) -> Response {
        match req.arg.as_deref() {
            Some("status") => {}
            Some("stream") => {
                return Response::err(
                    code::USAGE,
                    "repl stream is handled at the connection layer; seeing it here means a \
                     non-server caller routed it manually",
                )
            }
            _ => return Response::err(code::USAGE, "usage: `repl status`"),
        }
        match &*read_unpoisoned(&self.repl) {
            ReplRole::Standalone => {
                Response::ok(format!("role: standalone\nepoch: {}\n", self.ws.epoch()))
                    .header("role", "standalone")
                    .header("epoch", self.ws.epoch().to_string())
            }
            ReplRole::Primary(hub) => {
                let mut body = format!(
                    "role: primary\nepoch: {}\nlast_lsn: {}\nsync_target: {}\n",
                    hub.epoch(),
                    hub.last_lsn(),
                    hub.sync_target(),
                );
                let followers = hub.follower_status();
                for f in &followers {
                    body.push_str(&format!(
                        "follower {}\tacked {}\tlag {}\t{}\t{}\n",
                        f.peer,
                        f.acked_lsn,
                        f.lag,
                        if f.sync { "sync" } else { "async" },
                        if f.alive { "alive" } else { "dropped" },
                    ));
                }
                Response::ok(body)
                    .header("role", "primary")
                    .header("epoch", hub.epoch().to_string())
                    .header("last-lsn", hub.last_lsn().to_string())
                    .header("followers", followers.len().to_string())
            }
            ReplRole::Replica(shared) => Response::ok(format!(
                "role: replica\nsource: {}\nepoch: {}\napplied_lsn: {}\nconnected: {}\n",
                shared.source,
                shared.epoch(),
                shared.applied_lsn(),
                shared.connected(),
            ))
            .header("role", "replica")
            .header("epoch", shared.epoch().to_string())
            .header("applied-lsn", shared.applied_lsn().to_string())
            .header("connected", shared.connected().to_string()),
        }
    }

    fn op_reveal(&self, req: &Request) -> Response {
        let Some(id) = req.header_value("id") else {
            return Response::err(
                code::USAGE,
                "reveal needs an `id` header (the id returned by apply)",
            );
        };
        let Ok(id) = id.trim().parse::<u64>() else {
            return Response::err(code::USAGE, format!("bad disguise id {id:?}"));
        };
        let Some(cap) = req.header_value("cap") else {
            return Response::err(
                code::DENIED,
                "reveal needs the `cap` header minted when the disguise was applied",
            );
        };
        let _door = write_unpoisoned(&self.door);
        if let Err(e) = caps::verify(&self.ws.db, id, cap) {
            self.denied_total.inc();
            return Response::err(code::DENIED, e.to_string());
        }
        match self.ws.edna.reveal(id) {
            Ok(report) => Response::ok(format!(
                "revealed {} (id {}): reinserted {}, restored {}, placeholders removed {}\n",
                report.name,
                report.disguise_id,
                report.rows_reinserted,
                report.rows_restored,
                report.placeholders_removed,
            ))
            .header("id", report.disguise_id.to_string()),
            Err(e) => Response::err(code::RUNTIME, e.to_string()),
        }
    }

    fn op_check(&self, req: &Request) -> Response {
        let _door = read_unpoisoned(&self.door);
        let reports = match req.arg.as_deref() {
            Some(name) => match self.ws.edna.check(name) {
                Ok(diags) => vec![(name.to_string(), diags)],
                Err(e) => return Response::err(code::RUNTIME, e.to_string()),
            },
            None => self.ws.edna.check_all(),
        };
        let mut body = String::new();
        let mut errors = 0usize;
        let mut warnings = 0usize;
        for (name, diags) in &reports {
            if diags.is_empty() {
                body.push_str(&format!("{name}: ok\n"));
                continue;
            }
            errors += diags
                .iter()
                .filter(|d| d.severity == edna_core::Severity::Error)
                .count();
            warnings += diags
                .iter()
                .filter(|d| d.severity == edna_core::Severity::Warning)
                .count();
            body.push_str(&format!("{name}:\n"));
            body.push_str(&render_report(diags));
        }
        Response::ok(body)
            .header("errors", errors.to_string())
            .header("warnings", warnings.to_string())
    }

    fn op_recover(&self, req: &Request) -> Response {
        let _door = read_unpoisoned(&self.door);
        let r = &self.ws.last_recovery;
        let mut body = format!(
            "scanned {} WAL frame(s), replayed {}, truncated {} torn byte(s)\n",
            r.frames_scanned, r.frames_replayed, r.torn_bytes
        );
        for id in &self.ws.last_resolution.completed {
            body.push_str(&format!("disguise {id}: intent resolved as completed\n"));
        }
        for id in &self.ws.last_resolution.undone {
            body.push_str(&format!("disguise {id}: half-applied, rolled back\n"));
        }
        if req.header_value("verify") == Some("true") {
            let problems = self.ws.db.verify_integrity();
            if !problems.is_empty() {
                for p in &problems {
                    body.push_str(&format!("integrity: {p}\n"));
                }
                return Response::err(code::RUNTIME, body)
                    .header("integrity-problems", problems.len().to_string());
            }
            body.push_str("integrity: ok\n");
        }
        for run in &r.open_policy_runs {
            body.push_str(&format!(
                "policy run {:?} interrupted mid-tick; it resumes on the next tick\n",
                run.policy
            ));
        }
        Response::ok(body)
    }

    fn op_policy(&self, req: &Request) -> Response {
        if req.arg.as_deref() != Some("status") {
            return Response::err(code::USAGE, "usage: `policy status`");
        }
        let _door = read_unpoisoned(&self.door);
        let last = self.scheduler.last_runs();
        let mut body = String::from("name\tkind\tcadence\tlast_run\n");
        for p in self.scheduler.policies() {
            let kind = match p {
                Policy::Expiration(_) => "expiration",
                Policy::Decay(_) => "decay",
            };
            let stamp = match last.get(p.name()) {
                Some(t) => t.to_string(),
                None => "never".to_string(),
            };
            body.push_str(&format!("{}\t{kind}\t{}\t{stamp}\n", p.name(), p.cadence()));
        }
        Response::ok(body)
            .header("policies", self.scheduler.policies().len().to_string())
            .header("runs-total", self.policy_runs_total.get().to_string())
            .header("decay-rows-total", self.decay_rows_total.get().to_string())
    }
}

// The whole point of the service shape: one instance, many threads.
#[allow(dead_code)]
fn assert_service_is_shareable() {
    fn shareable<T: Send + Sync>() {}
    shareable::<Service>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::{Path, PathBuf};

    fn temp_state(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("edna_svc_test_{tag}_{}", std::process::id()));
        cleanup(&p);
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        for suffix in [".tmp", ".metrics", ".metrics.tmp", ".wal", ".lock"] {
            let _ = std::fs::remove_file(edna_core::workspace::sidecar(p, suffix));
        }
        let _ = std::fs::remove_dir_all(edna_core::workspace::sidecar(p, ".vault"));
    }

    const SPEC: &str = r#"
disguise_name: "Gdpr"
user_to_disguise: $UID
tables: {
  users: { transformations: [ Remove(pred: "id = $UID") ] },
}
"#;

    fn service(tag: &str) -> (Service, PathBuf) {
        let state = temp_state(tag);
        let ws = Workspace::init(&state, None).unwrap();
        ws.db
            .execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)")
            .unwrap();
        ws.db
            .execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")
            .unwrap();
        ws.register_spec(SPEC).unwrap();
        (Service::new(ws).unwrap(), state)
    }

    #[test]
    fn sql_apply_reveal_through_the_service() {
        let (svc, state) = service("lifecycle");
        let r = svc.handle(&Request::new("sql").body("SELECT name FROM users ORDER BY id"));
        assert!(r.ok, "{}", r.body);
        assert_eq!(r.header_value("rows"), Some("2"));
        assert!(r.body.contains("bea"));

        let r = svc.handle(&Request::new("apply").arg("Gdpr").header("user", "1"));
        assert!(r.ok, "{}", r.body);
        let id = r.header_value("id").unwrap().to_string();
        let cap = r
            .header_value("cap")
            .expect("reversible apply mints a cap")
            .to_string();

        // Wrong capability is denied and denies are counted.
        let r = svc.handle(
            &Request::new("reveal")
                .header("id", &id)
                .header("cap", "00".repeat(32)),
        );
        assert!(!r.ok);
        assert_eq!(r.code.as_deref(), Some(code::DENIED));

        let r = svc.handle(&Request::new("reveal").header("id", &id).header("cap", cap));
        assert!(r.ok, "{}", r.body);
        let r = svc.handle(&Request::new("sql").body("SELECT name FROM users ORDER BY id"));
        assert_eq!(r.header_value("rows"), Some("2"));

        let r = svc.handle(&Request::new("stats"));
        assert!(r.ok);
        assert!(r.body.contains("edna_server_requests_total"), "{}", r.body);
        assert!(r.body.contains("edna_server_denied_total 1"), "{}", r.body);
        drop(svc);
        cleanup(&state);
    }

    #[test]
    fn wire_transactions_are_rejected() {
        let (svc, state) = service("txn");
        for stmt in [
            "BEGIN",
            "begin",
            "COMMIT",
            "ROLLBACK",
            "  Start Transaction",
        ] {
            let r = svc.handle(&Request::new("sql").body(stmt));
            assert!(!r.ok, "{stmt} should be rejected");
            assert_eq!(r.code.as_deref(), Some(code::USAGE), "{stmt}");
        }
        drop(svc);
        cleanup(&state);
    }

    #[test]
    fn unknown_ops_and_empty_sql_are_usage_errors() {
        let (svc, state) = service("usage");
        assert_eq!(
            svc.handle(&Request::new("frobnicate")).code.as_deref(),
            Some(code::USAGE)
        );
        assert_eq!(
            svc.handle(&Request::new("sql")).code.as_deref(),
            Some(code::USAGE)
        );
        assert_eq!(
            svc.handle(&Request::new("apply")).code.as_deref(),
            Some(code::USAGE)
        );
        assert_eq!(
            svc.handle(&Request::new("reveal").header("id", "not-a-number"))
                .code
                .as_deref(),
            Some(code::USAGE)
        );
        drop(svc);
        cleanup(&state);
    }

    #[test]
    fn reserved_tables_are_unreachable_over_the_wire() {
        let (svc, state) = service("reserved");
        for stmt in [
            "SELECT cap_hash FROM _edna_caps",
            "UPDATE _edna_caps SET cap_hash = 'attacker'",
            "DELETE FROM _edna_caps",
            "DROP TABLE _edna_spec_registry",
            "SELECT * FROM users WHERE id IN (SELECT disguise_id FROM _edna_caps)",
            // The policy registry schedules the decay daemon's work:
            // writable → arbitrary disguises against any tenant;
            // readable → the retention schedule leaks.
            "SELECT dsl, last_run FROM _edna_policy_registry",
            "UPDATE _edna_policy_registry SET last_run = 0",
            "INSERT INTO _edna_policy_registry (name, dsl) VALUES ('x', 'y')",
            // The idempotency ledger stores rendered replies — minted
            // reveal capabilities included.
            "SELECT reply FROM _edna_requests",
            "UPDATE _edna_requests SET reply = 'forged'",
        ] {
            let r = svc.handle(&Request::new("sql").body(stmt));
            assert!(!r.ok, "{stmt} must be refused");
            assert_eq!(r.code.as_deref(), Some(code::DENIED), "{stmt}");
        }
        // The denial is counted alongside capability denials.
        let r = svc.handle(&Request::new("stats"));
        assert!(r.body.contains("edna_server_denied_total 10"), "{}", r.body);
        drop(svc);
        cleanup(&state);
    }

    const DECAY_SPEC: &str = r#"
disguise_name: "AgeNotes"
reversible: false
tables: {
  notes: { transformations: [ Modify(pred: "created_at < NOW() - 500", column: body, modifier: Truncate(1)) ] },
}
"#;

    const DECAY_POLICY: &str = "policy_name: \"aging\"\n\
                                kind: decay\n\
                                cadence: 60\n\
                                stages: [ \"AgeNotes\" ]\n";

    #[test]
    fn policy_tick_decays_rows_and_survives_restart() {
        let state = temp_state("policy_tick");
        {
            let ws = Workspace::init(&state, None).unwrap();
            ws.db
                .execute(
                    "CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, body TEXT, \
                     created_at INT NOT NULL DEFAULT 0)",
                )
                .unwrap();
            ws.db
                .execute(
                    "INSERT INTO notes (body, created_at) VALUES ('old body', 0), \
                     ('new body', 900)",
                )
                .unwrap();
            ws.register_spec(DECAY_SPEC).unwrap();
            ws.register_policy(DECAY_POLICY).unwrap();
            let svc = Service::new(ws).unwrap();
            assert!(svc.has_policies());

            let r = svc.handle(&Request::new("policy").arg("status"));
            assert!(r.ok, "{}", r.body);
            assert!(r.body.contains("aging\tdecay\t60\tnever"), "{}", r.body);

            let out = svc.policy_tick_at(1_000, Some(512)).unwrap();
            assert_eq!(out.runs.len(), 1, "one policy due");
            assert!(out.runs[0].complete);

            // The run decayed the old note and left the new one alone.
            let r = svc.handle(&Request::new("sql").body("SELECT body FROM notes ORDER BY id"));
            assert!(r.body.starts_with("body\no\nnew body"), "{}", r.body);

            // Status reflects the completed run; the metrics appear in
            // the Prometheus exposition, including the per-policy
            // duration histogram.
            let r = svc.handle(&Request::new("policy").arg("status"));
            assert!(r.body.contains("aging\tdecay\t60\t1000"), "{}", r.body);
            assert_eq!(r.header_value("runs-total"), Some("1"));
            let r = svc.handle(&Request::new("stats"));
            assert!(r.body.contains("edna_policy_runs_total 1"), "{}", r.body);
            assert!(r.body.contains("edna_decay_rows_total 1"), "{}", r.body);
            assert!(r.body.contains("edna_policy_tick_us_aging"), "{}", r.body);

            // The tick advanced the durable clock: foreground NOW() moves.
            assert_eq!(svc.workspace().db.global_now(), 1_000);
            svc.checkpoint().unwrap();
            drop(svc);
        }
        // Restart. The scheduler reloads the persisted last-run stamp, so
        // the policy is NOT due again at the same logical time — the bug
        // this guards against is every policy re-firing on restart.
        {
            let ws = Workspace::open(&state, None).unwrap();
            let svc = Service::new(ws).unwrap();
            let r = svc.handle(&Request::new("policy").arg("status"));
            assert!(r.body.contains("aging\tdecay\t60\t1000"), "{}", r.body);
            let now = svc.workspace().db.global_now();
            assert_eq!(now, 1_000, "restart must not rewind the clock");
            let out = svc.policy_tick_at(now, Some(512)).unwrap();
            assert!(
                out.runs.is_empty(),
                "policy re-fired within its cadence after restart"
            );
            drop(svc);
        }
        cleanup(&state);
    }

    #[test]
    fn policy_op_requires_status_arg() {
        let (svc, state) = service("policy_usage");
        let r = svc.handle(&Request::new("policy"));
        assert_eq!(r.code.as_deref(), Some(code::USAGE));
        let r = svc.handle(&Request::new("policy").arg("nonsense"));
        assert_eq!(r.code.as_deref(), Some(code::USAGE));
        drop(svc);
        cleanup(&state);
    }

    #[test]
    fn ready_flips_on_drain_but_health_stays_up() {
        let (svc, state) = service("drain");
        assert!(svc.handle(&Request::new("ready")).ok);
        svc.begin_drain();
        let r = svc.handle(&Request::new("ready"));
        assert_eq!(r.code.as_deref(), Some(code::SHUTTING_DOWN));
        assert!(svc.handle(&Request::new("health")).ok);
        drop(svc);
        cleanup(&state);
    }

    #[test]
    fn recover_op_reports_and_verifies() {
        let (svc, state) = service("recover");
        let r = svc.handle(&Request::new("recover").header("verify", "true"));
        assert!(r.ok, "{}", r.body);
        assert!(r.body.contains("integrity: ok"), "{}", r.body);
        drop(svc);
        cleanup(&state);
    }

    #[test]
    fn idempotent_apply_replays_the_original_reply() {
        let (svc, state) = service("idem");
        let first = svc.handle(
            &Request::new("apply")
                .arg("Gdpr")
                .header("user", "1")
                .header("idem", "req-001"),
        );
        assert!(first.ok, "{}", first.body);
        let cap = first.header_value("cap").unwrap().to_string();
        let id = first.header_value("id").unwrap().to_string();

        // The wire retry replays the stored reply — same id, same
        // capability — and does not run the disguise again.
        let retry = svc.handle(
            &Request::new("apply")
                .arg("Gdpr")
                .header("user", "1")
                .header("idem", "req-001"),
        );
        assert!(retry.ok, "{}", retry.body);
        assert_eq!(retry.header_value("idem"), Some("replayed"));
        assert_eq!(retry.header_value("cap"), Some(cap.as_str()));
        assert_eq!(retry.header_value("id"), Some(id.as_str()));
        assert_eq!(retry.body, first.body);

        // Only one disguise ran: user 1's row is gone, user 2's remains,
        // and a second application would have failed on the missing row
        // anyway — the replay counter is the positive evidence.
        let r = svc.handle(&Request::new("stats"));
        assert!(
            r.body.contains("edna_server_idem_replays_total 1"),
            "{}",
            r.body
        );

        // A different key is a different logical request.
        let other = svc.handle(
            &Request::new("apply")
                .arg("Gdpr")
                .header("user", "2")
                .header("idem", "req-002"),
        );
        assert!(other.ok, "{}", other.body);
        assert_eq!(other.header_value("idem"), None);

        // Hostile keys are refused before touching anything.
        for bad in ["", "  ", "a b", "key/with/slash", &"x".repeat(129)] {
            let r = svc.handle(&Request::new("apply").arg("Gdpr").header("idem", bad));
            assert_eq!(r.code.as_deref(), Some(code::USAGE), "key {bad:?}");
        }
        drop(svc);
        cleanup(&state);
    }

    #[test]
    fn replica_role_rejects_writes_and_reports_status() {
        let (svc, state) = service("replica_role");
        svc.attach_replica(crate::replica::ReplicaShared::new(
            "10.0.0.1:7777".to_string(),
            3,
            42,
        ));
        assert!(svc.is_replica());

        for req in [
            Request::new("apply").arg("Gdpr").header("user", "1"),
            Request::new("apply_many").arg("Gdpr").body("1\n"),
            Request::new("reveal").header("id", "1").header("cap", "00"),
            Request::new("sql").body("INSERT INTO users (name) VALUES ('x')"),
            Request::new("sql").body("DROP TABLE users"),
        ] {
            let r = svc.handle(&req);
            assert_eq!(r.code.as_deref(), Some(code::READ_ONLY), "{}", req.op);
        }
        // Reads still flow.
        let r = svc.handle(&Request::new("sql").body("SELECT name FROM users ORDER BY id"));
        assert!(r.ok, "{}", r.body);
        assert_eq!(r.header_value("rows"), Some("2"));
        assert!(svc.handle(&Request::new("stats")).ok);
        assert!(svc.handle(&Request::new("policy").arg("status")).ok);

        // Policy ticks are the primary's job.
        assert!(svc.policy_tick_at(1_000, None).is_err());

        let r = svc.handle(&Request::new("repl").arg("status"));
        assert!(r.ok, "{}", r.body);
        assert_eq!(r.header_value("role"), Some("replica"));
        assert_eq!(r.header_value("epoch"), Some("3"));
        assert_eq!(r.header_value("applied-lsn"), Some("42"));
        assert!(r.body.contains("source: 10.0.0.1:7777"), "{}", r.body);
        drop(svc);
        cleanup(&state);
    }

    #[test]
    fn repl_status_on_a_standalone_node() {
        let (svc, state) = service("repl_standalone");
        let r = svc.handle(&Request::new("repl").arg("status"));
        assert!(r.ok, "{}", r.body);
        assert_eq!(r.header_value("role"), Some("standalone"));
        let r = svc.handle(&Request::new("repl"));
        assert_eq!(r.code.as_deref(), Some(code::USAGE));
        drop(svc);
        cleanup(&state);
    }

    #[test]
    fn concurrent_sql_and_apply_do_not_interleave_torn_state() {
        let (svc, state) = service("concurrent");
        let svc = std::sync::Arc::new(svc);
        std::thread::scope(|s| {
            let applier = {
                let svc = svc.clone();
                s.spawn(move || {
                    let r = svc.handle(&Request::new("apply").arg("Gdpr").header("user", "1"));
                    assert!(r.ok, "{}", r.body);
                })
            };
            for _ in 0..20 {
                let r = svc.handle(&Request::new("sql").body("SELECT COUNT(*) FROM users"));
                assert!(r.ok, "{}", r.body);
            }
            applier.join().unwrap();
        });
        drop(svc);
        cleanup(&state);
    }
}
