//! Reserved-table enforcement for wire SQL.
//!
//! The engine's reserved `_edna_*` tables hold the server's own trust
//! anchors: capability hashes (`_edna_caps`), the spec registry, the
//! policy registry that drives the decay daemon, and the disguise
//! history. A wire client that can read or write them can forge or
//! destroy another tenant's reveal capability — or schedule arbitrary
//! disguises against everyone's data — so the `sql` op must
//! refuse any statement that references them — structurally, not by
//! substring, so `SELECT '_edna_caps' FROM t` stays legal while
//! `... WHERE id IN (SELECT disguise_id FROM _edna_caps)` does not.
//!
//! The CLI and the engine itself are trusted and do not go through this
//! gate (core writes history and specs through the same `execute` path).

use edna_relational::parser::{SelectStmt, Statement};
use edna_relational::{parse_statement, Expr};

/// Name prefix of tables the wire may not touch.
pub const RESERVED_PREFIX: &str = "_edna";

fn is_reserved(name: &str) -> bool {
    // The engine resolves table names case-insensitively (lowercased),
    // so the gate must too.
    name.trim()
        .to_ascii_lowercase()
        .starts_with(RESERVED_PREFIX)
}

/// Returns the first reserved table referenced by `sql`, or `None` if
/// the statement touches none (or does not parse — the engine will then
/// report the parse error itself, and an unparsable statement executes
/// nothing).
pub fn reserved_table_in(sql: &str) -> Option<String> {
    // `EXPLAIN ANALYZE <select>` is intercepted before the parser by the
    // engine; strip the same prefix so the inner SELECT is still vetted.
    let stmt_text = strip_explain_analyze(sql).unwrap_or(sql);
    let stmt = parse_statement(stmt_text).ok()?;
    let mut tables = Vec::new();
    collect_statement(&stmt, &mut tables);
    tables.into_iter().find(|t| is_reserved(t))
}

/// Whether `sql` is safe on a read-only replica: a `SELECT` (optionally
/// under `EXPLAIN ANALYZE`). Unparsable statements pass — they execute
/// nothing, and the engine's own parse error beats a misleading
/// read-only refusal.
pub fn is_read_only(sql: &str) -> bool {
    let stmt_text = strip_explain_analyze(sql).unwrap_or(sql);
    match parse_statement(stmt_text) {
        Ok(Statement::Select(_)) => true,
        Ok(_) => false,
        Err(_) => true,
    }
}

fn strip_explain_analyze(sql: &str) -> Option<&str> {
    let rest = strip_keyword(sql.trim_start(), "EXPLAIN")?;
    strip_keyword(rest.trim_start(), "ANALYZE")
}

fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let head = s.get(..kw.len())?;
    if !head.eq_ignore_ascii_case(kw) {
        return None;
    }
    let rest = &s[kw.len()..];
    rest.starts_with(char::is_whitespace).then_some(rest)
}

fn collect_statement(stmt: &Statement, out: &mut Vec<String>) {
    match stmt {
        Statement::CreateTable(schema) => {
            out.push(schema.name.clone());
            for fk in &schema.foreign_keys {
                out.push(fk.parent_table.clone());
            }
        }
        Statement::CreateIndex { table, .. } => out.push(table.clone()),
        Statement::DropTable { name, .. } => out.push(name.clone()),
        Statement::AlterTable { table, .. } => out.push(table.clone()),
        Statement::Insert { table, rows, .. } => {
            out.push(table.clone());
            for row in rows {
                for e in row {
                    collect_expr(e, out);
                }
            }
        }
        Statement::Select(select) => collect_select(select, out),
        Statement::Update {
            table,
            sets,
            where_,
        } => {
            out.push(table.clone());
            for (_, e) in sets {
                collect_expr(e, out);
            }
            if let Some(e) = where_ {
                collect_expr(e, out);
            }
        }
        Statement::Delete { table, where_ } => {
            out.push(table.clone());
            if let Some(e) = where_ {
                collect_expr(e, out);
            }
        }
        Statement::Begin | Statement::Commit | Statement::Rollback => {}
    }
}

fn collect_select(select: &SelectStmt, out: &mut Vec<String>) {
    out.push(select.from.clone());
    for join in &select.joins {
        out.push(join.table.clone());
        collect_expr(&join.on, out);
    }
    for p in &select.projections {
        match p {
            edna_relational::parser::Projection::Expr { expr, .. } => collect_expr(expr, out),
            edna_relational::parser::Projection::Aggregate { arg: Some(e), .. } => {
                collect_expr(e, out)
            }
            _ => {}
        }
    }
    for e in select
        .where_
        .iter()
        .chain(&select.group_by)
        .chain(&select.having)
    {
        collect_expr(e, out);
    }
    for k in &select.order_by {
        collect_expr(&k.expr, out);
    }
}

fn collect_expr(expr: &Expr, out: &mut Vec<String>) {
    // `walk` visits every node but deliberately does not descend into
    // subquery SELECTs; recurse into those here so a reserved table
    // cannot hide inside `IN (SELECT ...)`.
    expr.walk(&mut |e| {
        if let Expr::InSelect { select, .. } = e {
            collect_select(select, out);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_references_are_caught() {
        for sql in [
            "SELECT cap_hash FROM _edna_caps",
            "select * from _EDNA_CAPS",
            "UPDATE _edna_caps SET cap_hash = 'mine'",
            "DELETE FROM _edna_caps",
            "INSERT INTO _edna_spec_registry (name) VALUES ('x')",
            "DROP TABLE _edna_disguise_history",
            "DROP TABLE IF EXISTS _edna_caps",
            // The policy registry drives the decay daemon: a tenant who
            // can write it schedules arbitrary disguises against other
            // tenants' data; one who can read it learns the retention
            // schedule. Both directions must be refused.
            "SELECT dsl, last_run FROM _edna_policy_registry",
            "UPDATE _edna_policy_registry SET last_run = 0",
            "UPDATE _edna_policy_registry SET dsl = 'decay evil ...'",
            "DELETE FROM _edna_policy_registry",
            "INSERT INTO _edna_policy_registry (name, dsl) VALUES ('x', 'y')",
            "DROP TABLE _edna_policy_registry",
            "ALTER TABLE _edna_caps DROP COLUMN cap_hash",
            "CREATE INDEX i ON _edna_caps (cap_hash)",
            "CREATE TABLE _edna_caps (id INT PRIMARY KEY)",
            "EXPLAIN ANALYZE SELECT * FROM _edna_caps",
        ] {
            assert!(reserved_table_in(sql).is_some(), "should refuse: {sql}");
        }
    }

    #[test]
    fn indirect_references_are_caught() {
        for sql in [
            "SELECT u.name FROM users u JOIN _edna_caps c ON u.id = c.disguise_id",
            "SELECT * FROM users WHERE id IN (SELECT disguise_id FROM _edna_caps)",
            "DELETE FROM users WHERE id IN (SELECT disguise_id FROM _edna_caps)",
            "SELECT * FROM users WHERE id NOT IN \
             (SELECT id FROM t WHERE x IN (SELECT disguise_id FROM _edna_caps))",
            "CREATE TABLE leak (id INT PRIMARY KEY, d INT, \
             FOREIGN KEY (d) REFERENCES _edna_caps(disguise_id))",
        ] {
            assert!(reserved_table_in(sql).is_some(), "should refuse: {sql}");
        }
    }

    #[test]
    fn escape_attempts_are_caught() {
        // Audit of the gate against the full statement grammar: quoting
        // and case games on the identifier, the EXPLAIN ANALYZE prefix,
        // and a subquery smuggled into every expression position the
        // parser has (`Expr::InSelect` is the only subquery form; `walk`
        // reaches it inside CASE/BETWEEN/function arguments).
        let mut caught = 0usize;
        for sql in [
            // Quoted identifiers lex to the same Ident the engine
            // resolves, so quoting must not bypass the prefix check.
            "SELECT cap_hash FROM `_edna_caps`",
            "SELECT cap_hash FROM \"_edna_caps\"",
            "SELECT cap_hash FROM `_EDNA_Caps`",
            "DROP TABLE \"_edna_disguise_history\"",
            "ExPlAiN aNaLyZe SELECT * FROM `_EDNA_CAPS`",
            // An alias does not hide the underlying table.
            "SELECT c.cap_hash FROM _edna_caps c",
            "SELECT c.cap_hash FROM _edna_caps AS c",
            // Subqueries in every DML expression position.
            "UPDATE users SET flagged = id IN (SELECT disguise_id FROM _edna_caps) \
             WHERE id = 1",
            "UPDATE users SET name = 'x' \
             WHERE id IN (SELECT disguise_id FROM `_edna_caps`)",
            "INSERT INTO t (a) VALUES (1 IN (SELECT disguise_id FROM _edna_caps))",
            "DELETE FROM users WHERE id BETWEEN 0 AND \
             (CASE WHEN 1 IN (SELECT disguise_id FROM _edna_caps) THEN 10 ELSE 0 END)",
            "SELECT user_id FROM posts GROUP BY user_id \
             HAVING user_id IN (SELECT disguise_id FROM _edna_caps)",
            "SELECT * FROM users ORDER BY id IN (SELECT disguise_id FROM _edna_caps)",
            "SELECT CASE WHEN id IN (SELECT disguise_id FROM _edna_caps) \
             THEN 1 ELSE 0 END FROM users",
            "SELECT * FROM users u JOIN posts p \
             ON u.id IN (SELECT disguise_id FROM _edna_caps)",
            "SELECT COUNT(id IN (SELECT disguise_id FROM _edna_caps)) FROM users",
            "SELECT * FROM users WHERE name LIKE \
             (SELECT cap_hash FROM _edna_caps LIMIT 1)",
            // Same games against the policy registry: quoting, case,
            // aliases, and a smuggled subquery. Resetting `last_run`
            // would re-fire every policy on the next tick.
            "SELECT dsl FROM `_EDNA_Policy_Registry`",
            "UPDATE \"_edna_policy_registry\" SET last_run = 0",
            "SELECT p.dsl FROM _edna_policy_registry AS p",
            "SELECT * FROM users WHERE id IN (SELECT id FROM _edna_policy_registry)",
            // The idempotency ledger stores rendered replies verbatim —
            // including minted reveal capabilities. Reading it steals
            // caps; writing it forges a cached reply for someone else's
            // retry key.
            "SELECT reply FROM _edna_requests",
            "SELECT r.reply FROM `_EDNA_Requests` AS r",
            "UPDATE _edna_requests SET reply = 'forged'",
            "DELETE FROM \"_edna_requests\"",
            "SELECT * FROM users WHERE id IN (SELECT id FROM _edna_requests)",
        ] {
            match reserved_table_in(sql) {
                Some(_) => caught += 1,
                // A refused-by-the-parser statement executes nothing, so
                // the gate may pass it — but then the engine must indeed
                // refuse it, or the escape is real.
                None => assert!(
                    parse_statement(sql).is_err(),
                    "guard passed a parsable statement: {sql}"
                ),
            }
        }
        // The unparsable fallback must stay the exception: if grammar
        // changes make most of these stop parsing, the audit below loses
        // its teeth and needs new phrasings.
        assert!(caught >= 23, "only {caught} attempts reached the guard");
    }

    #[test]
    fn insert_select_is_unparsable_and_therefore_inert() {
        // The grammar has no `INSERT INTO ... SELECT`; the gate returns
        // None but the engine cannot execute the statement either. If
        // this form ever starts parsing, `collect_statement` must learn
        // to descend into the source SELECT — this test is the tripwire.
        let sql = "INSERT INTO t SELECT * FROM _edna_caps";
        assert!(
            parse_statement(sql).is_err(),
            "INSERT..SELECT now parses: teach the guard to vet its source SELECT"
        );
        assert!(reserved_table_in(sql).is_none());
    }

    #[test]
    fn read_only_classification_for_replicas() {
        for sql in [
            "SELECT 1 FROM users",
            "select * from users where id = 1",
            "EXPLAIN ANALYZE SELECT * FROM users",
            "this does not parse at all",
        ] {
            assert!(is_read_only(sql), "should pass on a replica: {sql}");
        }
        for sql in [
            "INSERT INTO t (a) VALUES (1)",
            "UPDATE t SET a = 1",
            "DELETE FROM t",
            "DROP TABLE t",
            "ALTER TABLE t ADD COLUMN b INT",
            "CREATE TABLE t (id INT PRIMARY KEY)",
            "CREATE INDEX i ON t (a)",
        ] {
            assert!(!is_read_only(sql), "should refuse on a replica: {sql}");
        }
    }

    #[test]
    fn ordinary_statements_pass() {
        for sql in [
            "SELECT * FROM users",
            "INSERT INTO users (name) VALUES ('bea')",
            "UPDATE users SET name = 'x' WHERE id = 1",
            "DELETE FROM users WHERE id IN (SELECT id FROM orphans)",
            // A string literal mentioning the prefix is data, not a
            // table reference.
            "INSERT INTO notes (body) VALUES ('_edna_caps is reserved')",
            "SELECT '_edna_caps' FROM users",
            "this does not parse at all",
        ] {
            assert!(reserved_table_in(sql).is_none(), "should allow: {sql}");
        }
    }
}
