//! Per-user capability tokens gating reveal.
//!
//! When the server applies a reversible disguise it mints a random
//! 32-byte capability and returns it to the caller — once. Only the
//! SHA-256 of the capability is persisted (in the reserved `_edna_caps`
//! table, so it rides the same WAL/snapshot durability as everything
//! else); the server can *verify* a presented token but never recover
//! one. Revealing over the wire requires presenting the capability
//! minted at apply time, mirroring the decryption-capability design of
//! the paper's external encrypted vaults (§4.2): the service operator
//! alone cannot undo a user's disguise.
//!
//! The CLI, which runs with filesystem access to the state (and the
//! vault passphrase), is trusted and does not go through this gate.

use edna_core::{Error, Result};
use edna_relational::{Database, Value};
use edna_util::{hex, sha256::sha256};

/// Reserved table persisting capability hashes, keyed by disguise id.
pub const CAPS_TABLE: &str = "_edna_caps";

/// Creates the capability table if this state has never served.
pub fn ensure_caps_table(db: &Database) -> Result<()> {
    if !db.has_table(CAPS_TABLE) {
        db.execute(&format!(
            "CREATE TABLE {CAPS_TABLE} (id INT PRIMARY KEY AUTO_INCREMENT, \
             disguise_id INT NOT NULL, cap_hash TEXT NOT NULL)"
        ))?;
    }
    Ok(())
}

/// Mints a fresh 32-byte capability from the OS entropy pool. Fails
/// closed: a capability is a bearer security token, so on a platform or
/// in a sandbox where `/dev/urandom` is unavailable we refuse to mint
/// rather than degrade to a guessable clock-seeded value.
pub fn mint() -> Result<[u8; 32]> {
    let attempt = || -> std::io::Result<[u8; 32]> {
        use std::io::Read;
        let mut f = std::fs::File::open("/dev/urandom")?;
        let mut buf = [0u8; 32];
        f.read_exact(&mut buf)?;
        Ok(buf)
    };
    attempt().map_err(|e| {
        Error::Workspace(format!(
            "cannot mint a capability: no OS entropy source (/dev/urandom: {e})"
        ))
    })
}

/// Stores the hash of `cap` for `disguise_id` and returns the token's
/// wire form (hex).
pub fn store(db: &Database, disguise_id: u64, cap: &[u8; 32]) -> Result<String> {
    db.insert_row(
        CAPS_TABLE,
        &[
            ("disguise_id", Value::Int(disguise_id as i64)),
            ("cap_hash", Value::Text(hex::to_hex(&sha256(cap)))),
        ],
    )?;
    Ok(hex::to_hex(cap))
}

/// Checks a presented hex capability against the stored hash for
/// `disguise_id`. `Ok(())` means the caller may reveal; the error
/// message distinguishes "never minted" from "wrong token" so operators
/// can tell a CLI-applied disguise from an attack.
pub fn verify(db: &Database, disguise_id: u64, presented_hex: &str) -> Result<()> {
    let Some(presented) = hex::from_hex(presented_hex.trim()) else {
        return Err(Error::Workspace("capability is not valid hex".to_string()));
    };
    let r = db.execute(&format!(
        "SELECT cap_hash FROM {CAPS_TABLE} WHERE disguise_id = {disguise_id}"
    ))?;
    let Some(row) = r.rows.first() else {
        return Err(Error::Workspace(format!(
            "no capability registered for disguise {disguise_id}; it was not applied \
             through this server — reveal it with the CLI instead"
        )));
    };
    let stored = row[0].as_text()?;
    if hex::to_hex(&sha256(&presented)) != stored {
        return Err(Error::Workspace(format!(
            "capability does not match disguise {disguise_id}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_store_verify_round_trip() {
        let db = Database::new();
        ensure_caps_table(&db).unwrap();
        let cap = mint().unwrap();
        let token = store(&db, 7, &cap).unwrap();
        assert_eq!(token.len(), 64);
        verify(&db, 7, &token).unwrap();
    }

    #[test]
    fn wrong_or_missing_capability_is_refused() {
        let db = Database::new();
        ensure_caps_table(&db).unwrap();
        let cap = mint().unwrap();
        store(&db, 7, &cap).unwrap();
        // Wrong token for a known disguise.
        let wrong = hex::to_hex(&mint().unwrap());
        let err = verify(&db, 7, &wrong).unwrap_err().to_string();
        assert!(err.contains("does not match"), "got: {err}");
        // Unknown disguise: the error points at the CLI path.
        let err = verify(&db, 8, &wrong).unwrap_err().to_string();
        assert!(err.contains("no capability registered"), "got: {err}");
        // Garbage encoding.
        let err = verify(&db, 7, "zz-not-hex").unwrap_err().to_string();
        assert!(err.contains("not valid hex"), "got: {err}");
    }

    #[test]
    fn minted_caps_are_distinct() {
        let a = mint().unwrap();
        let b = mint().unwrap();
        assert_ne!(a, b);
    }
}
