//! A minimal blocking client for the serve protocol.
//!
//! Used by the server's own tests, the CLI soak harness, and anyone
//! scripting against `edna serve` from Rust. One [`Client`] is one
//! persistent connection; requests are answered in order.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::proto::{Request, Response};
use crate::wire::{self, ReadOutcome};

/// One connection to an `edna serve` instance.
pub struct Client {
    stream: TcpStream,
    timeout: Duration,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects with the default 10 s timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit connect/read timeout.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client {
            stream,
            timeout,
            max_frame_bytes: 1 << 24,
        })
    }

    fn io_err(msg: String) -> std::io::Error {
        std::io::Error::other(msg)
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        wire::write_frame(&mut self.stream, &req.encode())?;
        match wire::read_frame(
            &mut self.stream,
            self.max_frame_bytes,
            self.timeout,
            self.timeout,
        ) {
            Ok(ReadOutcome::Frame(body)) => {
                let text = std::str::from_utf8(&body)
                    .map_err(|_| Self::io_err("response is not UTF-8".to_string()))?;
                Response::parse(text).map_err(Self::io_err)
            }
            Ok(ReadOutcome::Eof) => Err(Self::io_err(
                "server closed the connection before responding".to_string(),
            )),
            Ok(ReadOutcome::IdleTimeout) => {
                Err(Self::io_err("timed out waiting for response".to_string()))
            }
            Err(e) => Err(Self::io_err(e.to_string())),
        }
    }

    /// Runs one SQL statement.
    pub fn sql(&mut self, stmt: &str) -> std::io::Result<Response> {
        self.request(&Request::new("sql").body(stmt))
    }

    /// Applies a disguise; the response carries `id` and (for reversible
    /// disguises) `cap` headers.
    pub fn apply(&mut self, disguise: &str, user: Option<&str>) -> std::io::Result<Response> {
        let mut req = Request::new("apply").arg(disguise);
        if let Some(u) = user {
            req = req.header("user", u);
        }
        self.request(&req)
    }

    /// Reveals a disguise by id, presenting its capability.
    pub fn reveal(&mut self, id: u64, cap: &str) -> std::io::Result<Response> {
        self.request(
            &Request::new("reveal")
                .header("id", id.to_string())
                .header("cap", cap),
        )
    }

    /// Fetches the live Prometheus metrics.
    pub fn stats(&mut self) -> std::io::Result<Response> {
        self.request(&Request::new("stats"))
    }

    /// Fetches the policy table: one row per registered policy with its
    /// kind, cadence, and last completed run.
    pub fn policy_status(&mut self) -> std::io::Result<Response> {
        self.request(&Request::new("policy").arg("status"))
    }

    /// Liveness probe (lock-free on the server).
    pub fn health(&mut self) -> std::io::Result<Response> {
        self.request(&Request::new("health"))
    }

    /// Asks the server to drain and checkpoint, presenting the operator
    /// token minted at server start (`ServerHandle::shutdown_token`, or
    /// the `shutdown token` line `edna serve` prints).
    pub fn shutdown(&mut self, token: &str) -> std::io::Result<Response> {
        self.request(&Request::new("shutdown").header("token", token))
    }
}
