//! A minimal blocking client for the serve protocol.
//!
//! Used by the server's own tests, the CLI soak harness, and anyone
//! scripting against `edna serve` from Rust. One [`Client`] is one
//! persistent connection; requests are answered in order.
//!
//! Requests retry transparently on transient refusals — `busy`
//! (admission queue full) and `shutting-down` answered before any work
//! ran — with bounded exponential backoff plus jitter, and reconnect
//! once per attempt when the connection itself resets (the server
//! closes after both refusals). Retries re-send the same bytes, so for
//! mutating ops whose first attempt may have executed before the
//! connection died, pair them with an idempotency key (`idem` header on
//! `apply`/`apply_many`, see [`Client::apply_idem`]) and the server
//! replays the original reply instead of applying twice.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, SystemTime};

use crate::proto::{code, Request, Response};
use crate::wire::{self, ReadOutcome};

/// Attempts per request: the first plus up to four retries.
const MAX_ATTEMPTS: u32 = 5;
/// First backoff step; doubles per retry up to [`BACKOFF_CAP`].
const BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Ceiling on a single backoff sleep (before jitter).
const BACKOFF_CAP: Duration = Duration::from_millis(200);

/// One connection to an `edna serve` instance.
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    timeout: Duration,
    max_frame_bytes: usize,
    retries: u64,
    reconnects: u64,
}

fn open_stream(addr: SocketAddr, timeout: Duration) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(timeout))?;
    Ok(stream)
}

/// Whether an I/O failure looks like the peer dropped the connection —
/// the cases a single transparent reconnect can heal.
fn is_connection_reset(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
    )
}

impl Client {
    /// Connects with the default 10 s timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit connect/read timeout.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        Ok(Client {
            stream: open_stream(addr, timeout)?,
            addr,
            timeout,
            max_frame_bytes: 1 << 24,
            retries: 0,
            reconnects: 0,
        })
    }

    /// How many attempts were retried (backoff taken) over this
    /// client's lifetime.
    pub fn retry_count(&self) -> u64 {
        self.retries
    }

    /// How many transparent reconnects this client has performed.
    pub fn reconnect_count(&self) -> u64 {
        self.reconnects
    }

    fn io_err(msg: String) -> std::io::Error {
        std::io::Error::other(msg)
    }

    /// Deterministic-enough jitter without a PRNG dependency: the clock's
    /// sub-millisecond nanoseconds, scaled to at most half the step.
    fn jitter(step: Duration) -> Duration {
        let nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        Duration::from_nanos(nanos % (step.as_nanos() as u64 / 2).max(1))
    }

    /// One write + read on the current stream, no retry logic.
    fn request_once(&mut self, req: &Request) -> std::io::Result<Response> {
        wire::write_frame(&mut self.stream, &req.encode())?;
        match wire::read_frame(
            &mut self.stream,
            self.max_frame_bytes,
            self.timeout,
            self.timeout,
        ) {
            Ok(ReadOutcome::Frame(body)) => {
                let text = std::str::from_utf8(&body)
                    .map_err(|_| Self::io_err("response is not UTF-8".to_string()))?;
                Response::parse(text).map_err(Self::io_err)
            }
            // The server closes after `busy`/`shutting-down` refusals and
            // on drain; map EOF to the reset kind so the retry loop can
            // reconnect instead of failing the whole request.
            Ok(ReadOutcome::Eof) => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )),
            Ok(ReadOutcome::IdleTimeout) => {
                Err(Self::io_err("timed out waiting for response".to_string()))
            }
            Err(wire::WireError::Io(e)) => Err(e),
            Err(e) => Err(Self::io_err(e.to_string())),
        }
    }

    /// Sends one request and reads one response, retrying transient
    /// refusals (`busy`, `shutting-down`) with bounded exponential
    /// backoff + jitter and reconnecting at most once per attempt when
    /// the connection resets underneath the request.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        let mut backoff = BACKOFF_BASE;
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..MAX_ATTEMPTS {
            if attempt > 0 {
                self.retries += 1;
                std::thread::sleep(backoff + Self::jitter(backoff));
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
            let outcome = match self.request_once(req) {
                Err(e) if is_connection_reset(&e) => {
                    // One transparent reconnect per attempt; if the new
                    // connection dies too, that consumes the attempt.
                    self.stream = open_stream(self.addr, self.timeout)?;
                    self.reconnects += 1;
                    self.request_once(req)
                }
                other => other,
            };
            match outcome {
                Ok(resp) => {
                    let transient = !resp.ok
                        && matches!(
                            resp.code.as_deref(),
                            Some(code::BUSY) | Some(code::SHUTTING_DOWN)
                        );
                    if !transient {
                        return Ok(resp);
                    }
                    last = Some(Self::io_err(format!(
                        "server refused with {}: {}",
                        resp.code.as_deref().unwrap_or("?"),
                        resp.body.trim_end()
                    )));
                }
                Err(e) => {
                    if !is_connection_reset(&e) {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| Self::io_err("request failed".to_string())))
    }

    /// Runs one SQL statement.
    pub fn sql(&mut self, stmt: &str) -> std::io::Result<Response> {
        self.request(&Request::new("sql").body(stmt))
    }

    /// Applies a disguise; the response carries `id` and (for reversible
    /// disguises) `cap` headers.
    pub fn apply(&mut self, disguise: &str, user: Option<&str>) -> std::io::Result<Response> {
        let mut req = Request::new("apply").arg(disguise);
        if let Some(u) = user {
            req = req.header("user", u);
        }
        self.request(&req)
    }

    /// Applies a disguise under a client-chosen idempotency key: if any
    /// earlier attempt with the same key succeeded, the server replays
    /// that attempt's reply (original capability included) instead of
    /// applying again — exactly-once across wire retries.
    pub fn apply_idem(
        &mut self,
        disguise: &str,
        user: Option<&str>,
        idem: &str,
    ) -> std::io::Result<Response> {
        let mut req = Request::new("apply").arg(disguise).header("idem", idem);
        if let Some(u) = user {
            req = req.header("user", u);
        }
        self.request(&req)
    }

    /// Reveals a disguise by id, presenting its capability.
    pub fn reveal(&mut self, id: u64, cap: &str) -> std::io::Result<Response> {
        self.request(
            &Request::new("reveal")
                .header("id", id.to_string())
                .header("cap", cap),
        )
    }

    /// Fetches the live Prometheus metrics.
    pub fn stats(&mut self) -> std::io::Result<Response> {
        self.request(&Request::new("stats"))
    }

    /// Fetches the replication status: role, epoch, and per-follower lag
    /// on a primary; source and applied LSN on a replica.
    pub fn repl_status(&mut self) -> std::io::Result<Response> {
        self.request(&Request::new("repl").arg("status"))
    }

    /// Fetches the policy table: one row per registered policy with its
    /// kind, cadence, and last completed run.
    pub fn policy_status(&mut self) -> std::io::Result<Response> {
        self.request(&Request::new("policy").arg("status"))
    }

    /// Liveness probe (lock-free on the server).
    pub fn health(&mut self) -> std::io::Result<Response> {
        self.request(&Request::new("health"))
    }

    /// Asks the server to drain and checkpoint, presenting the operator
    /// token minted at server start (`ServerHandle::shutdown_token`, or
    /// the `shutdown token` line `edna serve` prints). Not retried: a
    /// `shutting-down` answer means the drain is already under way.
    pub fn shutdown(&mut self, token: &str) -> std::io::Result<Response> {
        self.request_once(&Request::new("shutdown").header("token", token))
    }
}
