//! Framed, deadline-bounded socket I/O.
//!
//! Every message on the wire is one record in the same checksummed
//! framing the WAL and vault files use ([`edna_util::frame`]):
//! `[u32 LE length][body][32-byte SHA-256]`. Reading is bounded twice
//! over:
//!
//! - an **idle timeout** while waiting for a frame to start — a
//!   connection that goes quiet is closed, it does not pin a worker;
//! - a **frame budget** that starts at the first byte — once a frame has
//!   begun, the whole thing must arrive before the budget expires. A
//!   slowloris client dribbling one byte per second hits this deadline
//!   no matter how regularly it feeds bytes, because the deadline is
//!   absolute, not a per-read inactivity window.
//!
//! Oversized length prefixes are rejected *before* the body is read, so
//! a hostile 4 GiB length never allocates 4 GiB.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use edna_util::sha256::{sha256, DIGEST_LEN};

/// How a bounded frame read ended, when it didn't produce a frame error.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, checksum-valid frame body.
    Frame(Vec<u8>),
    /// Clean EOF between frames: the peer hung up.
    Eof,
    /// No frame started within the idle timeout.
    IdleTimeout,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The length prefix exceeds the configured maximum.
    TooLarge(u32),
    /// The peer closed mid-frame.
    Torn,
    /// The body does not match its checksum.
    BadChecksum,
    /// The frame budget expired mid-frame (slowloris, stall).
    DeadlineExpired,
    /// Some other socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds the limit"),
            WireError::Torn => f.write_str("connection closed mid-frame"),
            WireError::BadChecksum => f.write_str("frame checksum mismatch"),
            WireError::DeadlineExpired => f.write_str("frame did not arrive within the deadline"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

fn timed_out(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads exactly `buf.len()` bytes with an absolute deadline, adjusting
/// the socket read timeout before every `read` so a dribbling peer
/// cannot reset the clock. Returns the number of bytes read before an
/// early EOF (`Ok(n) < buf.len()`), the full length on success.
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<usize, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(WireError::DeadlineExpired);
        }
        stream
            .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
            .map_err(WireError::Io)?;
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => filled += n,
            Err(e) if timed_out(&e) => return Err(WireError::DeadlineExpired),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(filled)
}

/// Reads one frame. Waits up to `idle` for the first byte; once the
/// frame has started, the whole frame must complete within `budget`.
pub fn read_frame(
    stream: &mut TcpStream,
    max_bytes: usize,
    idle: Duration,
    budget: Duration,
) -> Result<ReadOutcome, WireError> {
    // Wait for the first byte of the length prefix under the idle timeout.
    let mut len_buf = [0u8; 4];
    stream
        .set_read_timeout(Some(idle.max(Duration::from_millis(1))))
        .map_err(WireError::Io)?;
    let first = loop {
        match stream.read(&mut len_buf[..1]) {
            Ok(0) => return Ok(ReadOutcome::Eof),
            Ok(_) => break len_buf[0],
            Err(e) if timed_out(&e) => return Ok(ReadOutcome::IdleTimeout),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    };
    len_buf[0] = first;
    // The frame has started: everything else races the absolute budget.
    let deadline = Instant::now() + budget;
    if read_exact_deadline(stream, &mut len_buf[1..], deadline)? < 3 {
        return Err(WireError::Torn);
    }
    let len = u32::from_le_bytes(len_buf);
    if len as usize > max_bytes {
        return Err(WireError::TooLarge(len));
    }
    let mut rest = vec![0u8; len as usize + DIGEST_LEN];
    if read_exact_deadline(stream, &mut rest, deadline)? < rest.len() {
        return Err(WireError::Torn);
    }
    let body = &rest[..len as usize];
    if sha256(body) != rest[len as usize..] {
        return Err(WireError::BadChecksum);
    }
    Ok(ReadOutcome::Frame(body.to_vec()))
}

/// Writes one pre-framed message (see `encode` on the proto types).
pub fn write_frame(stream: &mut TcpStream, framed: &[u8]) -> std::io::Result<()> {
    stream.write_all(framed)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edna_util::frame::encode_record;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    const IDLE: Duration = Duration::from_millis(400);
    const BUDGET: Duration = Duration::from_millis(400);

    #[test]
    fn frame_round_trips() {
        let (mut client, mut server) = pair();
        write_frame(&mut client, &encode_record(b"hello frames")).unwrap();
        match read_frame(&mut server, 1 << 20, IDLE, BUDGET).unwrap() {
            ReadOutcome::Frame(body) => assert_eq!(body, b"hello frames"),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let (mut client, mut server) = pair();
        let mut hostile = u32::MAX.to_le_bytes().to_vec();
        hostile.extend_from_slice(b"tail");
        client.write_all(&hostile).unwrap();
        match read_frame(&mut server, 1024, IDLE, BUDGET) {
            Err(WireError::TooLarge(n)) => assert_eq!(n, u32::MAX),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_detected() {
        let (mut client, mut server) = pair();
        let framed = encode_record(b"will be cut short");
        client.write_all(&framed[..framed.len() / 2]).unwrap();
        drop(client);
        match read_frame(&mut server, 1 << 20, IDLE, BUDGET) {
            Err(WireError::Torn) => {}
            other => panic!("expected Torn, got {other:?}"),
        }
    }

    #[test]
    fn checksum_flip_is_detected() {
        let (mut client, mut server) = pair();
        let mut framed = encode_record(b"checksummed");
        let last = framed.len() - 1;
        framed[last] ^= 0xFF;
        client.write_all(&framed).unwrap();
        match read_frame(&mut server, 1 << 20, IDLE, BUDGET) {
            Err(WireError::BadChecksum) => {}
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    #[test]
    fn idle_peer_times_out_quietly() {
        let (_client, mut server) = pair();
        match read_frame(&mut server, 1 << 20, Duration::from_millis(50), BUDGET).unwrap() {
            ReadOutcome::IdleTimeout => {}
            other => panic!("expected IdleTimeout, got {other:?}"),
        }
    }

    #[test]
    fn dribbling_slowloris_hits_the_absolute_deadline() {
        let (mut client, mut server) = pair();
        let framed = encode_record(&[7u8; 64]);
        let feeder = std::thread::spawn(move || {
            // One byte every 20 ms: each read succeeds well within any
            // per-read timeout, but the absolute budget still expires.
            for chunk in framed.chunks(1).take(60) {
                if client.write_all(chunk).is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let t0 = Instant::now();
        let got = read_frame(&mut server, 1 << 20, IDLE, Duration::from_millis(200));
        assert!(
            matches!(got, Err(WireError::DeadlineExpired)),
            "expected DeadlineExpired, got {got:?}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "deadline was absolute"
        );
        feeder.join().unwrap();
    }

    #[test]
    fn zero_length_frame_is_a_valid_empty_body() {
        let (mut client, mut server) = pair();
        write_frame(&mut client, &encode_record(b"")).unwrap();
        match read_frame(&mut server, 1 << 20, IDLE, BUDGET).unwrap() {
            ReadOutcome::Frame(body) => assert!(body.is_empty()),
            other => panic!("expected empty frame, got {other:?}"),
        }
    }
}
