//! WAL-shipping replication: the stream codec and the primary-side hub.
//!
//! A follower (`edna serve --replica-of <addr>`) dials the primary and
//! sends a `repl stream` request carrying its own epoch. The primary
//! answers `ok`, then — on the same connection — ships a bootstrap
//! (snapshot, WAL file, vault files) followed by a live tail of every
//! durable mutation: WAL frames as the group-commit leader flushes them,
//! and vault-side file mutations (entry puts, journal appends,
//! compaction rewrites) as raw bytes below the encryption layer, so
//! sealed payloads ship sealed and the follower needs no key material.
//!
//! Stream records ride inside the same checksummed wire frames as
//! requests ([`crate::wire`]); the follower acknowledges applied WAL
//! LSNs on the same socket. With `--sync-replicas N`, the primary's
//! group-commit gate holds every waiter of a flushed batch until `N`
//! followers have acknowledged the batch's last LSN — an acknowledged
//! commit (and every vault entry and capability minted before it)
//! then survives losing the primary.
//!
//! Degradation is never allowed to wedge the foreground commit path: a
//! follower whose send queue overflows is dropped (it can re-bootstrap),
//! and a sync follower that stalls past the gate timeout is demoted to
//! async with a warning metric.
//!
//! Fencing: every stream record carries the shipper's epoch. `edna
//! promote` durably bumps the follower's epoch; a deposed primary
//! (lower epoch) is refused by the promoted node, and a promoted node's
//! handshake against a stale primary is refused with `stale-epoch`.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use edna_core::Workspace;
use edna_obs::{Counter, Gauge, Histogram};
use edna_util::buf::{Bytes, BytesMut};
use edna_util::sync::lock_unpoisoned;
use edna_vault::ShipKind;

use crate::wire;

/// Stream record type tags (first byte of each record body).
pub mod rec {
    /// Bootstrap: the database snapshot file, verbatim.
    pub const SNAPSHOT: u8 = 0;
    /// Live tail: `[u64 epoch][framed WAL record]`.
    pub const WAL: u8 = 1;
    /// Live tail: `[u64 epoch][u8 kind][u32 len][name][bytes]`.
    pub const VAULT: u8 = 2;
    /// Keepalive: `[u64 epoch]`.
    pub const HEARTBEAT: u8 = 3;
    /// Follower → primary: `[u64 epoch][u64 lsn]` durably applied.
    pub const ACK: u8 = 4;
    /// Bootstrap: `[u32 len][name][bytes]` — one vault-side file.
    pub const VAULT_FILE: u8 = 5;
    /// Bootstrap end: `[u64 last_lsn][u64 epoch]`.
    pub const SNAP_END: u8 = 6;
    /// Bootstrap: the WAL file, verbatim.
    pub const WAL_FILE: u8 = 7;
}

/// Replication frames carry whole snapshots and vault files, so their
/// size cap is far above the request cap.
pub const REPL_MAX_FRAME: usize = 256 << 20;

/// One decoded stream record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamRecord {
    /// The snapshot file (bootstrap).
    Snapshot(Vec<u8>),
    /// The WAL file (bootstrap).
    WalFile(Vec<u8>),
    /// One vault-side file (bootstrap): `(relative name, bytes)`.
    VaultFile(String, Vec<u8>),
    /// End of bootstrap: the shipped state's last LSN and epoch.
    SnapEnd {
        /// Highest LSN present in the shipped WAL file.
        last_lsn: u64,
        /// The primary's replication epoch.
        epoch: u64,
    },
    /// A live WAL frame: the framed record bytes, ready to append.
    Wal {
        /// Shipper's epoch at flush time.
        epoch: u64,
        /// The framed record (`[u32 len][body][digest]`).
        framed: Vec<u8>,
    },
    /// A live vault-side mutation.
    Vault {
        /// Shipper's epoch.
        epoch: u64,
        /// Append or wholesale replace.
        kind: ShipKind,
        /// Relative name (`global/...`, `user/...`, `journal/...`).
        name: String,
        /// The raw (possibly sealed) bytes.
        bytes: Vec<u8>,
    },
    /// Keepalive.
    Heartbeat {
        /// Shipper's epoch.
        epoch: u64,
    },
    /// Follower acknowledgment of a durably applied LSN.
    Ack {
        /// Follower's epoch.
        epoch: u64,
        /// Highest LSN applied and fsynced.
        lsn: u64,
    },
}

impl StreamRecord {
    /// Encodes the record body (not yet wire-framed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = BytesMut::new();
        match self {
            StreamRecord::Snapshot(bytes) => {
                w.put_u8(rec::SNAPSHOT);
                w.put_slice(bytes);
            }
            StreamRecord::WalFile(bytes) => {
                w.put_u8(rec::WAL_FILE);
                w.put_slice(bytes);
            }
            StreamRecord::VaultFile(name, bytes) => {
                w.put_u8(rec::VAULT_FILE);
                w.put_u32_le(name.len() as u32);
                w.put_slice(name.as_bytes());
                w.put_slice(bytes);
            }
            StreamRecord::SnapEnd { last_lsn, epoch } => {
                w.put_u8(rec::SNAP_END);
                w.put_u64_le(*last_lsn);
                w.put_u64_le(*epoch);
            }
            StreamRecord::Wal { epoch, framed } => {
                w.put_u8(rec::WAL);
                w.put_u64_le(*epoch);
                w.put_slice(framed);
            }
            StreamRecord::Vault {
                epoch,
                kind,
                name,
                bytes,
            } => {
                w.put_u8(rec::VAULT);
                w.put_u64_le(*epoch);
                w.put_u8(match kind {
                    ShipKind::Append => 0,
                    ShipKind::Replace => 1,
                });
                w.put_u32_le(name.len() as u32);
                w.put_slice(name.as_bytes());
                w.put_slice(bytes);
            }
            StreamRecord::Heartbeat { epoch } => {
                w.put_u8(rec::HEARTBEAT);
                w.put_u64_le(*epoch);
            }
            StreamRecord::Ack { epoch, lsn } => {
                w.put_u8(rec::ACK);
                w.put_u64_le(*epoch);
                w.put_u64_le(*lsn);
            }
        }
        w.to_vec()
    }

    /// Decodes a record body. Every malformed shape is a clean error —
    /// a hostile peer gets disconnected, not a panic.
    pub fn decode(body: &[u8]) -> Result<StreamRecord, String> {
        if body.is_empty() {
            return Err("empty stream record".to_string());
        }
        let tag = body[0];
        let mut r = Bytes::copy_from_slice(&body[1..]);
        let need = |r: &Bytes, n: usize| -> Result<(), String> {
            if r.remaining() < n {
                Err(format!("stream record {tag} truncated"))
            } else {
                Ok(())
            }
        };
        match tag {
            rec::SNAPSHOT => Ok(StreamRecord::Snapshot(body[1..].to_vec())),
            rec::WAL_FILE => Ok(StreamRecord::WalFile(body[1..].to_vec())),
            rec::VAULT_FILE => {
                need(&r, 4)?;
                let len = r.get_u32_le() as usize;
                need(&r, len)?;
                let rest = &body[1 + 4..];
                let name = std::str::from_utf8(&rest[..len])
                    .map_err(|_| "vault file name is not UTF-8".to_string())?
                    .to_string();
                Ok(StreamRecord::VaultFile(name, rest[len..].to_vec()))
            }
            rec::SNAP_END => {
                need(&r, 16)?;
                Ok(StreamRecord::SnapEnd {
                    last_lsn: r.get_u64_le(),
                    epoch: r.get_u64_le(),
                })
            }
            rec::WAL => {
                need(&r, 8)?;
                let epoch = r.get_u64_le();
                Ok(StreamRecord::Wal {
                    epoch,
                    framed: body[1 + 8..].to_vec(),
                })
            }
            rec::VAULT => {
                need(&r, 8 + 1 + 4)?;
                let epoch = r.get_u64_le();
                let kind = match r.get_u8() {
                    0 => ShipKind::Append,
                    1 => ShipKind::Replace,
                    k => return Err(format!("unknown vault mutation kind {k}")),
                };
                let len = r.get_u32_le() as usize;
                need(&r, len)?;
                let rest = &body[1 + 8 + 1 + 4..];
                let name = std::str::from_utf8(&rest[..len])
                    .map_err(|_| "vault mutation name is not UTF-8".to_string())?
                    .to_string();
                Ok(StreamRecord::Vault {
                    epoch,
                    kind,
                    name,
                    bytes: rest[len..].to_vec(),
                })
            }
            rec::HEARTBEAT => {
                need(&r, 8)?;
                Ok(StreamRecord::Heartbeat {
                    epoch: r.get_u64_le(),
                })
            }
            rec::ACK => {
                need(&r, 16)?;
                Ok(StreamRecord::Ack {
                    epoch: r.get_u64_le(),
                    lsn: r.get_u64_le(),
                })
            }
            other => Err(format!("unknown stream record tag {other}")),
        }
    }

    /// Encodes and wire-frames the record in one go.
    pub fn to_frame(&self) -> Vec<u8> {
        edna_util::frame::encode_record(&self.encode())
    }
}

/// One connected follower, as the primary sees it.
pub struct Follower {
    /// Peer address, for `repl status`.
    pub peer: String,
    queue: Mutex<VecDeque<Vec<u8>>>,
    ready: Condvar,
    acked: AtomicU64,
    alive: AtomicBool,
    /// Counted toward the `--sync-replicas` quorum. Starts true;
    /// cleared when the follower stalls past the gate timeout.
    sync: AtomicBool,
}

impl Follower {
    fn new(peer: String) -> Follower {
        Follower {
            peer,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            acked: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            sync: AtomicBool::new(true),
        }
    }

    /// Highest LSN this follower has durably applied.
    pub fn acked_lsn(&self) -> u64 {
        self.acked.load(Ordering::SeqCst)
    }

    /// Whether the stream is still up.
    pub fn alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Whether this follower still counts toward the sync quorum.
    pub fn is_sync(&self) -> bool {
        self.sync.load(Ordering::SeqCst)
    }

    fn push(&self, framed: Vec<u8>, cap: usize) -> bool {
        let mut q = lock_unpoisoned(&self.queue);
        if q.len() >= cap {
            return false;
        }
        q.push_back(framed);
        drop(q);
        self.ready.notify_all();
        true
    }

    fn drop_stream(&self) {
        self.alive.store(false, Ordering::SeqCst);
        self.sync.store(false, Ordering::SeqCst);
        lock_unpoisoned(&self.queue).clear();
        self.ready.notify_all();
    }
}

/// Per-follower status row for `repl status`.
#[derive(Debug, Clone)]
pub struct FollowerStatus {
    /// Peer address.
    pub peer: String,
    /// Highest acknowledged LSN.
    pub acked_lsn: u64,
    /// Shipped-but-unacknowledged LSN distance.
    pub lag: u64,
    /// Counted toward the sync quorum.
    pub sync: bool,
    /// Stream still connected.
    pub alive: bool,
}

/// The primary-side replication hub: fan-out queues, the sync-commit
/// gate, and the replication metrics.
pub struct ReplHub {
    epoch: AtomicU64,
    sync_target: usize,
    gate_timeout: Duration,
    queue_cap: usize,
    followers: Mutex<Vec<Arc<Follower>>>,
    ack_lock: Mutex<()>,
    ack_cond: Condvar,
    last_lsn: AtomicU64,
    lag_gauge: Arc<Gauge>,
    ack_us: Arc<Histogram>,
    frames_shipped_total: Arc<Counter>,
    followers_dropped_total: Arc<Counter>,
    sync_demotions_total: Arc<Counter>,
    gate_degraded_total: Arc<Counter>,
}

impl ReplHub {
    /// Builds the hub for `ws`'s server, registering the replication
    /// metrics in the workspace registry. `sync_target` is the
    /// `--sync-replicas` quorum (0 = fully asynchronous).
    pub fn new(ws: &Workspace, sync_target: usize, gate_timeout: Duration) -> Arc<ReplHub> {
        let m = ws.db.metrics();
        let epoch = ws.epoch();
        // The epoch only moves via `edna promote` (a separate process on
        // a closed workspace), so setting the gauge once at hub build is
        // exact for the server's whole lifetime.
        m.gauge(
            "edna_replication_epoch",
            "Replication epoch of this node (bumped by `edna promote`)",
        )
        .set(epoch as i64);
        let hub = ReplHub {
            epoch: AtomicU64::new(epoch),
            sync_target,
            gate_timeout,
            queue_cap: 4096,
            followers: Mutex::new(Vec::new()),
            ack_lock: Mutex::new(()),
            ack_cond: Condvar::new(),
            last_lsn: AtomicU64::new(ws.db.wal_last_lsn()),
            lag_gauge: m.gauge(
                "edna_replica_lag_frames",
                "Largest shipped-but-unacknowledged LSN distance across connected followers",
            ),
            ack_us: m.histogram(
                "edna_repl_ack_us",
                "Group-commit gate wait for the sync-replica quorum",
                &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
            ),
            frames_shipped_total: m.counter(
                "edna_repl_frames_shipped_total",
                "WAL frames offered to the replication stream",
            ),
            followers_dropped_total: m.counter(
                "edna_repl_followers_dropped_total",
                "Followers dropped for send-queue overflow or stream errors",
            ),
            sync_demotions_total: m.counter(
                "edna_repl_sync_demotions_total",
                "Sync followers demoted to async for stalling past the gate timeout",
            ),
            gate_degraded_total: m.counter(
                "edna_repl_gate_degraded_total",
                "Commit batches released without the full sync-replica quorum",
            ),
        };
        Arc::new(hub)
    }

    /// This node's replication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The configured sync-replica quorum.
    pub fn sync_target(&self) -> usize {
        self.sync_target
    }

    /// Registers a follower slot. Must be called while holding the
    /// service door's write side during the bootstrap handshake, so no
    /// commit can slip between the shipped snapshot and the live tail.
    pub fn register(&self, peer: String) -> Arc<Follower> {
        let f = Arc::new(Follower::new(peer));
        lock_unpoisoned(&self.followers).push(f.clone());
        f
    }

    /// Drops a follower from the fan-out (stream error, drain, or queue
    /// overflow) and wakes any gate waiting on it.
    pub fn drop_follower(&self, f: &Arc<Follower>) {
        if f.alive() {
            self.followers_dropped_total.inc();
        }
        f.drop_stream();
        lock_unpoisoned(&self.followers).retain(|g| !Arc::ptr_eq(g, f));
        let _g = lock_unpoisoned(&self.ack_lock);
        self.ack_cond.notify_all();
        self.update_lag();
    }

    /// The WAL frame sink: called by the group-commit leader after the
    /// batch fsync, before waiters are released. Enqueue-only.
    pub fn offer_wal(&self, lsn: u64, epoch: u64, framed: &[u8]) {
        self.last_lsn.store(lsn, Ordering::SeqCst);
        self.frames_shipped_total.inc();
        let record = StreamRecord::Wal {
            epoch,
            framed: framed.to_vec(),
        }
        .to_frame();
        self.fan_out(record);
        self.update_lag();
    }

    /// The vault ship hook: a durable vault-side file mutation. Called
    /// on the mutating thread, inside the store's lock. Enqueue-only.
    pub fn offer_vault(&self, kind: ShipKind, name: &str, bytes: &[u8]) {
        let record = StreamRecord::Vault {
            epoch: self.epoch(),
            kind,
            name: name.to_string(),
            bytes: bytes.to_vec(),
        }
        .to_frame();
        self.fan_out(record);
    }

    fn fan_out(&self, framed: Vec<u8>) {
        let followers: Vec<Arc<Follower>> = lock_unpoisoned(&self.followers).clone();
        for f in followers {
            if !f.alive() {
                continue;
            }
            if !f.push(framed.clone(), self.queue_cap) {
                // A bounded queue that overflows means the follower
                // cannot keep up; dropping it (to re-bootstrap later)
                // is the degradation that never blocks this thread.
                eprintln!(
                    "edna serve: follower {} send queue overflow; dropping to async",
                    f.peer
                );
                self.drop_follower(&f);
            }
        }
    }

    /// The group-commit gate: holds the calling (leader) thread until
    /// `sync_target` followers acknowledged `lsn`, the timeout demotes
    /// the stragglers, or too few sync followers are connected to ever
    /// reach quorum (degrade to async immediately).
    pub fn gate(&self, lsn: u64) {
        if self.sync_target == 0 {
            return;
        }
        let start = Instant::now();
        let deadline = start + self.gate_timeout;
        let mut guard = lock_unpoisoned(&self.ack_lock);
        loop {
            let followers: Vec<Arc<Follower>> = lock_unpoisoned(&self.followers).clone();
            let candidates = followers
                .iter()
                .filter(|f| f.alive() && f.is_sync())
                .count();
            let acked = followers
                .iter()
                .filter(|f| f.alive() && f.is_sync() && f.acked_lsn() >= lsn)
                .count();
            if acked >= self.sync_target {
                self.ack_us.observe(start.elapsed());
                return;
            }
            if candidates < self.sync_target {
                // Not enough sync followers to ever reach quorum:
                // degrade to async rather than wedge every commit.
                self.gate_degraded_total.inc();
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                // Demote the stragglers so subsequent commits do not
                // pay the timeout again; they rejoin the quorum only by
                // reconnecting.
                for f in followers
                    .iter()
                    .filter(|f| f.alive() && f.is_sync() && f.acked_lsn() < lsn)
                {
                    f.sync.store(false, Ordering::SeqCst);
                    self.sync_demotions_total.inc();
                    eprintln!(
                        "edna serve: sync follower {} stalled past {:?}; demoted to async",
                        f.peer, self.gate_timeout
                    );
                }
                self.gate_degraded_total.inc();
                return;
            }
            let (g, _) = self
                .ack_cond
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            guard = g;
        }
    }

    /// Records a follower acknowledgment and wakes gate waiters.
    pub fn note_ack(&self, f: &Follower, lsn: u64) {
        f.acked.fetch_max(lsn, Ordering::SeqCst);
        let _g = lock_unpoisoned(&self.ack_lock);
        self.ack_cond.notify_all();
        self.update_lag();
    }

    fn update_lag(&self) {
        let last = self.last_lsn.load(Ordering::SeqCst);
        let lag = lock_unpoisoned(&self.followers)
            .iter()
            .filter(|f| f.alive())
            .map(|f| last.saturating_sub(f.acked_lsn()))
            .max()
            .unwrap_or(0);
        self.lag_gauge.set(lag as i64);
    }

    /// Status rows for `repl status`.
    pub fn follower_status(&self) -> Vec<FollowerStatus> {
        let last = self.last_lsn.load(Ordering::SeqCst);
        lock_unpoisoned(&self.followers)
            .iter()
            .map(|f| FollowerStatus {
                peer: f.peer.clone(),
                acked_lsn: f.acked_lsn(),
                lag: last.saturating_sub(f.acked_lsn()),
                sync: f.is_sync(),
                alive: f.alive(),
            })
            .collect()
    }

    /// Highest LSN offered to the stream.
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn.load(Ordering::SeqCst)
    }
}

/// Installs the hub's taps on a primary workspace: the WAL frame sink,
/// the group-commit gate, and the vault ship hook.
pub fn install(hub: &Arc<ReplHub>, ws: &Workspace) {
    if let Some(wal) = ws.db.wal() {
        let sink = hub.clone();
        wal.set_frame_sink(Some(Arc::new(move |lsn, epoch, framed: &[u8]| {
            sink.offer_wal(lsn, epoch, framed);
        })));
        let gate = hub.clone();
        wal.set_commit_gate(Some(Arc::new(move |lsn| gate.gate(lsn))));
    }
    let vault = hub.clone();
    ws.set_vault_ship_hook(Some(Arc::new(move |kind, name, bytes: &[u8]| {
        vault.offer_vault(kind, name, bytes);
    })));
}

/// The sender loop the primary worker thread runs after a successful
/// handshake: drains the follower's queue onto the socket, heartbeating
/// when idle, until the stream breaks, the follower is dropped, or
/// `draining()` turns true.
pub fn sender_loop(
    hub: &Arc<ReplHub>,
    follower: &Arc<Follower>,
    stream: &mut TcpStream,
    draining: impl Fn() -> bool,
) {
    let heartbeat = StreamRecord::Heartbeat { epoch: hub.epoch() }.to_frame();
    loop {
        if !follower.alive() || draining() {
            break;
        }
        let frame = {
            let mut q = lock_unpoisoned(&follower.queue);
            loop {
                if let Some(frame) = q.pop_front() {
                    break Some(frame);
                }
                if !follower.alive() || draining() {
                    break None;
                }
                let (g, timeout) = follower
                    .ready
                    .wait_timeout(q, Duration::from_millis(500))
                    .unwrap_or_else(|p| p.into_inner());
                q = g;
                if timeout.timed_out() {
                    break None; // fall through to heartbeat
                }
            }
        };
        let framed = match frame {
            Some(f) => f,
            None => {
                if !follower.alive() || draining() {
                    break;
                }
                if wire::write_frame(stream, &heartbeat).is_err() {
                    break;
                }
                continue;
            }
        };
        if wire::write_frame(stream, &framed).is_err() {
            break;
        }
    }
    hub.drop_follower(follower);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// The acknowledgment reader: runs on its own thread over a clone of
/// the stream, feeding ACKs into the gate. Hostile input — torn frames,
/// oversize lengths, checksum mismatches, garbage records, stale
/// epochs — drops the follower; nothing here can wedge the sender or
/// the commit path, which only ever *waits with a timeout* on acks.
pub fn ack_reader_loop(hub: Arc<ReplHub>, follower: Arc<Follower>, mut stream: TcpStream) {
    loop {
        if !follower.alive() {
            break;
        }
        let outcome = wire::read_frame(
            &mut stream,
            1 << 16, // acks are tiny; anything bigger is hostile
            Duration::from_millis(500),
            Duration::from_secs(5),
        );
        let body = match outcome {
            Ok(wire::ReadOutcome::Frame(body)) => body,
            Ok(wire::ReadOutcome::IdleTimeout) => continue,
            Ok(wire::ReadOutcome::Eof) | Err(_) => break,
        };
        match StreamRecord::decode(&body) {
            Ok(StreamRecord::Ack { epoch, lsn }) => {
                if epoch < hub.epoch() {
                    eprintln!(
                        "edna serve: follower {} acked with stale epoch {epoch}; dropping",
                        follower.peer
                    );
                    break;
                }
                hub.note_ack(&follower, lsn);
            }
            Ok(_) | Err(_) => {
                eprintln!(
                    "edna serve: follower {} sent a malformed ack; dropping",
                    follower.peer
                );
                break;
            }
        }
    }
    hub.drop_follower(&follower);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_records_round_trip() {
        for record in [
            StreamRecord::Snapshot(vec![1, 2, 3]),
            StreamRecord::WalFile(vec![9; 64]),
            StreamRecord::VaultFile("global/a.bin".to_string(), vec![7; 9]),
            StreamRecord::SnapEnd {
                last_lsn: 42,
                epoch: 3,
            },
            StreamRecord::Wal {
                epoch: 1,
                framed: vec![0xAB; 17],
            },
            StreamRecord::Vault {
                epoch: 2,
                kind: ShipKind::Append,
                name: "journal/pending.journal".to_string(),
                bytes: vec![5; 5],
            },
            StreamRecord::Vault {
                epoch: 2,
                kind: ShipKind::Replace,
                name: "user/u.bin".to_string(),
                bytes: Vec::new(),
            },
            StreamRecord::Heartbeat { epoch: 7 },
            StreamRecord::Ack { epoch: 7, lsn: 99 },
        ] {
            let decoded = StreamRecord::decode(&record.encode()).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn hostile_record_bodies_are_clean_errors() {
        assert!(StreamRecord::decode(&[]).is_err());
        assert!(StreamRecord::decode(&[200]).is_err(), "unknown tag");
        assert!(
            StreamRecord::decode(&[rec::ACK, 1, 2, 3]).is_err(),
            "truncated ack"
        );
        assert!(
            StreamRecord::decode(&[rec::SNAP_END, 0]).is_err(),
            "truncated snap end"
        );
        // A vault record whose declared name length overruns the body.
        let mut w = BytesMut::new();
        w.put_u8(rec::VAULT);
        w.put_u64_le(0);
        w.put_u8(0);
        w.put_u32_le(1 << 30);
        assert!(StreamRecord::decode(w.as_ref()).is_err());
        // Bad vault kind byte.
        let mut w = BytesMut::new();
        w.put_u8(rec::VAULT);
        w.put_u64_le(0);
        w.put_u8(9);
        w.put_u32_le(0);
        assert!(StreamRecord::decode(w.as_ref()).is_err());
        // Non-UTF-8 name.
        let mut w = BytesMut::new();
        w.put_u8(rec::VAULT_FILE);
        w.put_u32_le(2);
        w.put_slice(&[0xFF, 0xFE]);
        assert!(StreamRecord::decode(w.as_ref()).is_err());
    }
}
