//! WAL-shipping replication: the follower side.
//!
//! `edna serve --replica-of <addr>` runs this module's two halves:
//!
//! 1. [`bootstrap`] — dial the primary, hand it our epoch, and receive a
//!    complete copy of the state (snapshot, WAL file, vault-side files)
//!    written to the local state paths **before** the workspace is
//!    opened. The connection stays up; the live tail follows on it.
//! 2. [`run`] — the apply loop: read stream records, apply each WAL
//!    frame through the service door's write side (preserving the
//!    primary's LSNs, fsync per frame), mirror vault-side file
//!    mutations, and acknowledge applied LSNs back on the same socket.
//!
//! The replica's service rejects writes (`read-only`), its decay daemon
//! and background checkpointer stay off (a local checkpoint would burn
//! an LSN the primary is about to use), and it does not auto-reconnect:
//! when the stream breaks it keeps serving reads from the last applied
//! state until an operator promotes it (`edna promote`) or restarts it
//! as a replica (which re-bootstraps from scratch).
//!
//! Fencing: a record whose epoch is *behind* ours comes from a deposed
//! primary and kills the stream; the primary symmetrically refuses a
//! handshake from a follower whose epoch is ahead of its own
//! (`stale-epoch`), which is exactly what a promoted node pointed at
//! its old primary sees.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use edna_core::workspace::sidecar;
use edna_util::frame;
use edna_vault::ShipKind;

use crate::proto::{code, Request, Response};
use crate::repl::{StreamRecord, REPL_MAX_FRAME};
use crate::service::Service;
use crate::wire::{self, ReadOutcome};

/// Shared, observable state of a running replica (for `repl status`
/// and the serve banner).
#[derive(Debug)]
pub struct ReplicaShared {
    /// The primary's address as given on the command line.
    pub source: String,
    epoch: AtomicU64,
    applied_lsn: AtomicU64,
    connected: AtomicBool,
}

impl ReplicaShared {
    /// Fresh state for a replica of `source`.
    pub fn new(source: String, epoch: u64, applied_lsn: u64) -> Arc<ReplicaShared> {
        Arc::new(ReplicaShared {
            source,
            epoch: AtomicU64::new(epoch),
            applied_lsn: AtomicU64::new(applied_lsn),
            connected: AtomicBool::new(true),
        })
    }

    /// The replication epoch this replica is at.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Highest LSN durably applied.
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn.load(Ordering::SeqCst)
    }

    /// Whether the stream to the primary is still up.
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }
}

/// A bootstrap or stream failure.
#[derive(Debug)]
pub enum ReplicaError {
    /// The primary refused the handshake because our epoch is ahead of
    /// its own: it is deposed, not us. Joining it would rewind history.
    StaleEpoch(String),
    /// Everything else: socket, protocol, filesystem.
    Other(String),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::StaleEpoch(msg) => write!(f, "stale-epoch: {msg}"),
            ReplicaError::Other(msg) => f.write_str(msg),
        }
    }
}

fn other(msg: impl Into<String>) -> ReplicaError {
    ReplicaError::Other(msg.into())
}

/// What [`bootstrap`] hands back: the still-open stream (live tail
/// follows on it) and the shipped state's coordinates.
pub struct Bootstrap {
    /// The connection to the primary, positioned after `SNAP_END`.
    pub stream: TcpStream,
    /// Highest LSN in the shipped WAL file.
    pub last_lsn: u64,
    /// The primary's epoch.
    pub epoch: u64,
}

/// Validates a shipped vault-side file name and resolves it under the
/// replica's `<state>.vault/` directory. The name must be
/// `global/<file>`, `user/<file>`, or `journal/<file>` with a plain
/// single-component file name — anything else is hostile.
pub fn resolve_vault_name(state: &Path, name: &str) -> Result<PathBuf, String> {
    let (prefix, file) = name
        .split_once('/')
        .ok_or_else(|| format!("vault file name {name:?} has no tier prefix"))?;
    if file.is_empty()
        || file.contains('/')
        || file.contains('\\')
        || file.contains("..")
        || file.starts_with('.')
        || file.contains('\0')
    {
        return Err(format!("vault file name {name:?} is not a plain file name"));
    }
    let vault_root = sidecar(state, ".vault");
    match prefix {
        "global" => Ok(vault_root.join("global").join(file)),
        "user" => Ok(vault_root.join("user").join(file)),
        // The journal lives directly in the vault dir, not a subdir.
        "journal" => Ok(vault_root.join(file)),
        other => Err(format!("unknown vault tier prefix {other:?} in {name:?}")),
    }
}

/// Applies one shipped vault-side mutation to the file at `path`.
pub fn apply_vault_file(path: &Path, kind: ShipKind, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    match kind {
        ShipKind::Append => {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            f.write_all(bytes)?;
            f.sync_all()
        }
        ShipKind::Replace if bytes.is_empty() => match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        },
        ShipKind::Replace => {
            let tmp = path.with_extension("shiptmp");
            {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(bytes)?;
                f.sync_all()?;
            }
            std::fs::rename(&tmp, path)
        }
    }
}

fn write_durable(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

/// Reads the replication epoch a state directory was last at, without
/// opening the workspace: the highest epoch record in its WAL. A
/// missing WAL (or state) is epoch 0.
pub fn local_epoch(state: &Path) -> u64 {
    let Ok(data) = std::fs::read(sidecar(state, ".wal")) else {
        return 0;
    };
    let mut epoch = 0u64;
    for body in frame::scan_records(&data).records {
        if let Ok((_, edna_relational::WalRecord::Epoch { epoch: e })) =
            edna_relational::wal::decode_frame_body(&body)
        {
            epoch = epoch.max(e);
        }
    }
    epoch
}

/// Dials the primary, performs the `repl stream` handshake, and writes
/// the shipped state (snapshot, WAL, vault files) to `state`'s paths.
/// **Destructive**: existing state files at `state` are replaced — a
/// replica's local state is always a copy of its primary's.
pub fn bootstrap(
    addr: SocketAddr,
    state: &Path,
    timeout: Duration,
) -> Result<Bootstrap, ReplicaError> {
    let epoch = local_epoch(state);
    let mut stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| other(format!("cannot reach primary {addr}: {e}")))?;
    stream.set_nodelay(true).ok();
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| other(e.to_string()))?;
    let req = Request::new("repl")
        .arg("stream")
        .header("epoch", epoch.to_string());
    wire::write_frame(&mut stream, &req.encode())
        .map_err(|e| other(format!("handshake send failed: {e}")))?;
    let resp = read_response(&mut stream, timeout)?;
    if !resp.ok {
        let msg = format!(
            "primary {addr} refused replication: {}",
            resp.body.trim_end()
        );
        return match resp.code.as_deref() {
            Some(code::STALE_EPOCH) => Err(ReplicaError::StaleEpoch(msg)),
            _ => Err(ReplicaError::Other(msg)),
        };
    }

    // Sweep local vault state so the shipped copy is exact, not merged
    // over leftovers from a previous life.
    let vault_root = sidecar(state, ".vault");
    if vault_root.exists() {
        std::fs::remove_dir_all(&vault_root)
            .map_err(|e| other(format!("cannot clear {}: {e}", vault_root.display())))?;
    }

    let mut got_snapshot = false;
    let mut got_wal = false;
    loop {
        let record = read_stream_record(&mut stream, timeout)
            .map_err(|e| other(format!("bootstrap stream: {e}")))?;
        match record {
            StreamRecord::Snapshot(bytes) => {
                write_durable(state, &bytes)
                    .map_err(|e| other(format!("cannot write snapshot: {e}")))?;
                got_snapshot = true;
            }
            StreamRecord::WalFile(bytes) => {
                write_durable(&sidecar(state, ".wal"), &bytes)
                    .map_err(|e| other(format!("cannot write WAL: {e}")))?;
                got_wal = true;
            }
            StreamRecord::VaultFile(name, bytes) => {
                let path = resolve_vault_name(state, &name).map_err(other)?;
                write_durable(&path, &bytes)
                    .map_err(|e| other(format!("cannot write vault file {name:?}: {e}")))?;
            }
            StreamRecord::SnapEnd { last_lsn, epoch } => {
                if !got_snapshot || !got_wal {
                    return Err(other("bootstrap ended before snapshot and WAL arrived"));
                }
                return Ok(Bootstrap {
                    stream,
                    last_lsn,
                    epoch,
                });
            }
            StreamRecord::Heartbeat { .. } => {}
            unexpected => {
                return Err(other(format!(
                    "unexpected record during bootstrap: {unexpected:?}"
                )))
            }
        }
    }
}

fn read_response(stream: &mut TcpStream, timeout: Duration) -> Result<Response, ReplicaError> {
    match wire::read_frame(stream, REPL_MAX_FRAME, timeout, timeout) {
        Ok(ReadOutcome::Frame(body)) => {
            let text =
                std::str::from_utf8(&body).map_err(|_| other("handshake response is not UTF-8"))?;
            Response::parse(text).map_err(other)
        }
        Ok(ReadOutcome::Eof) => Err(other("primary closed during handshake")),
        Ok(ReadOutcome::IdleTimeout) => Err(other("handshake timed out")),
        Err(e) => Err(other(e.to_string())),
    }
}

fn read_stream_record(stream: &mut TcpStream, budget: Duration) -> Result<StreamRecord, String> {
    match wire::read_frame(stream, REPL_MAX_FRAME, budget, budget) {
        Ok(ReadOutcome::Frame(body)) => StreamRecord::decode(&body),
        Ok(ReadOutcome::Eof) => Err("stream closed".to_string()),
        Ok(ReadOutcome::IdleTimeout) => Err("stream idle past deadline".to_string()),
        Err(e) => Err(e.to_string()),
    }
}

/// The live apply loop. Runs until the stream breaks, a record fails to
/// apply, or `stop` turns true; marks `shared` disconnected on exit.
/// Each WAL frame is applied under the service door's write side and
/// acknowledged only after it is durable locally, so an LSN this
/// replica acked genuinely survives losing the primary.
pub fn run(
    mut stream: TcpStream,
    svc: &Arc<Service>,
    shared: &Arc<ReplicaShared>,
    stop: &Arc<AtomicBool>,
) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    loop {
        if stop.load(Ordering::SeqCst) || svc.draining() {
            break;
        }
        let outcome = wire::read_frame(
            &mut stream,
            REPL_MAX_FRAME,
            Duration::from_millis(500),
            Duration::from_secs(30),
        );
        let body = match outcome {
            Ok(ReadOutcome::Frame(body)) => body,
            Ok(ReadOutcome::IdleTimeout) => continue,
            Ok(ReadOutcome::Eof) => {
                eprintln!("edna serve: primary closed the replication stream");
                break;
            }
            Err(e) => {
                eprintln!("edna serve: replication stream error: {e}");
                break;
            }
        };
        let record = match StreamRecord::decode(&body) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("edna serve: malformed stream record ({e}); dropping stream");
                break;
            }
        };
        match record {
            StreamRecord::Wal { epoch, framed } => {
                if epoch < shared.epoch() {
                    eprintln!(
                        "edna serve: frame from deposed primary (epoch {epoch} < {}); \
                         dropping stream",
                        shared.epoch()
                    );
                    break;
                }
                let lsn = match svc.apply_shipped_wal(&framed) {
                    Ok(lsn) => lsn,
                    Err(e) => {
                        eprintln!("edna serve: cannot apply shipped frame: {e}");
                        break;
                    }
                };
                shared.epoch.fetch_max(epoch, Ordering::SeqCst);
                shared.applied_lsn.store(lsn, Ordering::SeqCst);
                let ack = StreamRecord::Ack {
                    epoch: shared.epoch(),
                    lsn,
                }
                .to_frame();
                if wire::write_frame(&mut stream, &ack).is_err() {
                    break;
                }
            }
            StreamRecord::Vault {
                epoch,
                kind,
                name,
                bytes,
            } => {
                if epoch < shared.epoch() {
                    eprintln!(
                        "edna serve: vault event from deposed primary (epoch {epoch}); \
                         dropping stream"
                    );
                    break;
                }
                if let Err(e) = svc.apply_shipped_vault(kind, &name, &bytes) {
                    eprintln!("edna serve: cannot mirror vault file {name:?}: {e}");
                    break;
                }
            }
            StreamRecord::Heartbeat { epoch } => {
                if epoch < shared.epoch() {
                    eprintln!("edna serve: heartbeat from deposed primary; dropping stream");
                    break;
                }
            }
            unexpected => {
                eprintln!("edna serve: unexpected stream record {unexpected:?}; dropping");
                break;
            }
        }
    }
    shared.connected.store(false, Ordering::SeqCst);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vault_names_are_validated_structurally() {
        let state = Path::new("/tmp/edna_state");
        assert!(resolve_vault_name(state, "global/a.bin").is_ok());
        assert!(resolve_vault_name(state, "user/vault_19.bin").is_ok());
        let j = resolve_vault_name(state, "journal/pending.journal").unwrap();
        assert_eq!(j, sidecar(state, ".vault").join("pending.journal"));
        for hostile in [
            "",
            "noprefix",
            "global/",
            "global/../../etc/passwd",
            "global/a/b",
            "global/..",
            "global/.hidden",
            "elsewhere/a.bin",
            "global/a\\b",
            "global/a\0b",
        ] {
            assert!(
                resolve_vault_name(state, hostile).is_err(),
                "should refuse {hostile:?}"
            );
        }
    }

    #[test]
    fn apply_vault_file_append_replace_remove() {
        let dir = std::env::temp_dir().join(format!("edna_shipfile_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("f.bin");
        apply_vault_file(&path, ShipKind::Append, b"ab").unwrap();
        apply_vault_file(&path, ShipKind::Append, b"cd").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
        apply_vault_file(&path, ShipKind::Replace, b"xyz").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"xyz");
        apply_vault_file(&path, ShipKind::Replace, b"").unwrap();
        assert!(!path.exists());
        // Removing an already-missing file is idempotent.
        apply_vault_file(&path, ShipKind::Replace, b"").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn local_epoch_of_missing_state_is_zero() {
        assert_eq!(local_epoch(Path::new("/tmp/edna_no_such_state")), 0);
    }
}
