//! Hostile-replica tests: the replication stream is a network surface,
//! so a malicious or broken follower must never wedge the primary. A
//! torn, oversized, checksum-corrupt, or garbage ack frame — and an ack
//! from a stale epoch — each drop that follower; the group-commit path
//! and other clients keep working throughout. A sync follower that
//! simply stops acking is demoted to async at the gate timeout instead
//! of blocking every commit forever.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use edna_core::Workspace;
use edna_server::repl::{StreamRecord, REPL_MAX_FRAME};
use edna_server::wire::{self, ReadOutcome};
use edna_server::{code, server, Client, Request, Response, ServerConfig, ServerHandle, Service};
use edna_util::frame::encode_record;

fn temp_state(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("edna_replh_test_{tag}_{}", std::process::id()));
    cleanup(&p);
    p
}

fn cleanup(p: &Path) {
    let _ = std::fs::remove_file(p);
    for suffix in [".tmp", ".metrics", ".metrics.tmp", ".wal", ".lock"] {
        let _ = std::fs::remove_file(edna_core::workspace::sidecar(p, suffix));
    }
    let _ = std::fs::remove_dir_all(edna_core::workspace::sidecar(p, ".vault"));
}

/// Starts a primary over a fresh workspace; `epoch_bumps` simulates
/// prior promotions so stale-epoch paths can be exercised.
fn start_server(tag: &str, epoch_bumps: u64, config: ServerConfig) -> (ServerHandle, PathBuf) {
    let state = temp_state(tag);
    let ws = Workspace::init(&state, None).unwrap();
    ws.db
        .execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, x INT)")
        .unwrap();
    for _ in 0..epoch_bumps {
        ws.bump_epoch().unwrap();
    }
    let svc = Arc::new(Service::new(ws).unwrap());
    let handle = server::start(svc, config).unwrap();
    (handle, state)
}

/// Reads one replication frame body off a raw follower socket.
fn read_record(stream: &mut TcpStream) -> Vec<u8> {
    match wire::read_frame(
        stream,
        REPL_MAX_FRAME,
        Duration::from_secs(5),
        Duration::from_secs(30),
    ) {
        Ok(ReadOutcome::Frame(body)) => body,
        other => panic!("expected a stream frame, got {other:?}"),
    }
}

/// Performs the `repl stream` handshake as a follower would: sends the
/// request with an epoch header, checks the ok response, and consumes
/// the bootstrap (snapshot, WAL file, vault files) through `SnapEnd`.
/// Returns the live stream and the bootstrap's last LSN.
fn attach_follower(addr: SocketAddr, epoch: u64) -> (TcpStream, u64) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    let req = Request::new("repl")
        .arg("stream")
        .header("epoch", epoch.to_string());
    wire::write_frame(&mut s, &req.encode()).unwrap();
    let body = read_record(&mut s);
    let resp = Response::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(resp.ok, "handshake refused: {}", resp.body);
    let mut saw_snapshot = false;
    loop {
        match StreamRecord::decode(&read_record(&mut s)).unwrap() {
            StreamRecord::Snapshot(_) => saw_snapshot = true,
            StreamRecord::SnapEnd { last_lsn, .. } => {
                assert!(saw_snapshot, "SnapEnd before the snapshot");
                return (s, last_lsn);
            }
            _ => {}
        }
    }
}

/// Polls `repl status` until the primary reports `want` live followers.
fn wait_for_followers(c: &mut Client, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let r = c.repl_status().unwrap();
        assert!(r.ok, "{}", r.body);
        let got: usize = r.header_value("followers").unwrap().parse().unwrap();
        if got == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "still {got} followers, wanted {want}:\n{}",
            r.body
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn handshake_from_a_promoted_follower_is_fenced() {
    let (handle, state) = start_server("fence", 0, ServerConfig::default());
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    let req = Request::new("repl").arg("stream").header("epoch", "7");
    wire::write_frame(&mut s, &req.encode()).unwrap();
    let body = read_record(&mut s);
    let resp = Response::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(!resp.ok, "a deposed primary must refuse a promoted node");
    assert_eq!(resp.code.as_deref(), Some(code::STALE_EPOCH));

    // A garbage epoch header is a usage error, not a panic.
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    let req = Request::new("repl").arg("stream").header("epoch", "yes");
    wire::write_frame(&mut s, &req.encode()).unwrap();
    let body = read_record(&mut s);
    let resp = Response::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(resp.code.as_deref(), Some(code::USAGE));

    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn hostile_ack_frames_drop_the_follower_without_wedging_the_primary() {
    let (handle, state) = start_server("hostile", 0, ServerConfig::default());
    let addr = handle.addr();
    let mut c = Client::connect(addr).unwrap();

    type Poison = fn(&mut TcpStream);
    let poisons: [(&str, Poison); 4] = [
        ("torn frame", |s| {
            // Claims 100 bytes, delivers 10, hangs up mid-frame.
            let _ = s.write_all(&100u32.to_le_bytes());
            let _ = s.write_all(&[0u8; 10]);
            let _ = s.shutdown(Shutdown::Write);
        }),
        ("oversized length", |s| {
            // Acks are capped at 64 KiB; a 1 MiB claim is hostile.
            let _ = s.write_all(&(1u32 << 20).to_le_bytes());
        }),
        ("bad checksum", |s| {
            let mut framed = StreamRecord::Ack { epoch: 0, lsn: 1 }.to_frame();
            let last = framed.len() - 1;
            framed[last] ^= 0xFF;
            let _ = s.write_all(&framed);
        }),
        ("garbage record", |s| {
            // Checksums fine, decodes to an unknown tag.
            let _ = s.write_all(&encode_record(&[0xEE, 1, 2, 3]));
        }),
    ];

    for (name, poison) in poisons {
        let (mut s, _) = attach_follower(addr, 0);
        wait_for_followers(&mut c, 1);
        poison(&mut s);
        wait_for_followers(&mut c, 0);
        // The commit path is alive after every drop.
        let r = c.sql("INSERT INTO t (x) VALUES (1)").unwrap();
        assert!(r.ok, "{name}: commit failed after drop: {}", r.body);
    }

    let stats = c.stats().unwrap();
    assert!(
        stats.body.contains("edna_repl_followers_dropped_total 4"),
        "each poison drops exactly one follower:\n{}",
        stats.body
    );
    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn ack_from_a_stale_epoch_drops_the_follower() {
    // The primary has lived through one promotion (epoch 1); a follower
    // acking with epoch 0 is reporting history from before the fence.
    let (handle, state) = start_server("stale_ack", 1, ServerConfig::default());
    let addr = handle.addr();
    let mut c = Client::connect(addr).unwrap();

    let (mut s, _) = attach_follower(addr, 1);
    wait_for_followers(&mut c, 1);
    wire::write_frame(&mut s, &StreamRecord::Ack { epoch: 0, lsn: 1 }.to_frame()).unwrap();
    wait_for_followers(&mut c, 0);

    let r = c.sql("INSERT INTO t (x) VALUES (9)").unwrap();
    assert!(r.ok, "{}", r.body);
    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn stalled_sync_follower_is_demoted_instead_of_wedging_commits() {
    let (handle, state) = start_server(
        "stall",
        0,
        ServerConfig {
            sync_replicas: 1,
            repl_gate_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let mut c = Client::connect(addr).unwrap();

    // A follower that bootstraps and then never acks anything.
    let (_s, _) = attach_follower(addr, 0);
    wait_for_followers(&mut c, 1);

    // The commit waits out the gate timeout once, then the straggler is
    // demoted and the write completes.
    let start = Instant::now();
    let r = c.sql("INSERT INTO t (x) VALUES (1)").unwrap();
    assert!(r.ok, "{}", r.body);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "gate must be bounded, took {:?}",
        start.elapsed()
    );

    // Subsequent commits no longer pay the timeout (demotion sticks)
    // and the metrics record the degradation.
    let r = c.sql("INSERT INTO t (x) VALUES (2)").unwrap();
    assert!(r.ok, "{}", r.body);
    let stats = c.stats().unwrap();
    for needle in [
        "edna_repl_sync_demotions_total 1",
        "edna_repl_gate_degraded_total",
        "edna_replica_lag_frames",
    ] {
        assert!(
            stats.body.contains(needle),
            "missing {needle}:\n{}",
            stats.body
        );
    }
    let r = c.repl_status().unwrap();
    assert!(r.body.contains("async"), "demoted follower:\n{}", r.body);
    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn acking_sync_follower_releases_the_gate_and_shows_in_status() {
    let (handle, state) = start_server(
        "acked",
        0,
        ServerConfig {
            sync_replicas: 1,
            repl_gate_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let (s, _) = attach_follower(addr, 0);
    // A cooperative acker: reads the live tail and acknowledges every
    // WAL frame's LSN (bytes 4..12 of the framed record) immediately.
    let acker = std::thread::spawn(move || {
        let mut s = s;
        loop {
            let body = match wire::read_frame(
                &mut s,
                REPL_MAX_FRAME,
                Duration::from_millis(500),
                Duration::from_secs(30),
            ) {
                Ok(ReadOutcome::Frame(body)) => body,
                Ok(ReadOutcome::IdleTimeout) => continue,
                Ok(ReadOutcome::Eof) | Err(_) => return,
            };
            if let Ok(StreamRecord::Wal { epoch, framed }) = StreamRecord::decode(&body) {
                let lsn = u64::from_le_bytes(framed[4..12].try_into().unwrap());
                if wire::write_frame(&mut s, &StreamRecord::Ack { epoch, lsn }.to_frame()).is_err()
                {
                    return;
                }
            }
        }
    });

    let mut c = Client::connect(addr).unwrap();
    wait_for_followers(&mut c, 1);
    for i in 0..3 {
        let start = Instant::now();
        let r = c.sql(&format!("INSERT INTO t (x) VALUES ({i})")).unwrap();
        assert!(r.ok, "{}", r.body);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "acked commit should not wait out the gate"
        );
    }
    let r = c.repl_status().unwrap();
    assert_eq!(r.header_value("role"), Some("primary"));
    assert!(r.body.contains("sync"), "quorum member:\n{}", r.body);
    let stats = c.stats().unwrap();
    assert!(
        stats.body.contains("edna_repl_sync_demotions_total 0"),
        "no demotion when acks flow:\n{}",
        stats.body
    );
    assert!(stats.body.contains("edna_repl_ack_us"), "{}", stats.body);

    handle.stop_and_wait().unwrap();
    let _ = acker.join();
    cleanup(&state);
}

#[test]
fn client_reconnects_transparently_when_the_server_closes_idle_connections() {
    let (handle, state) = start_server(
        "reconnect",
        0,
        ServerConfig {
            conn_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    );
    let mut c = Client::connect_with_timeout(handle.addr(), Duration::from_secs(5)).unwrap();
    assert!(c.health().unwrap().ok);
    assert_eq!(c.reconnect_count(), 0);

    // Outlive the server's idle timeout; the next request lands on a
    // dead connection and must heal without surfacing an error.
    std::thread::sleep(Duration::from_millis(900));
    let r = c.sql("SELECT COUNT(*) FROM t").unwrap();
    assert!(r.ok, "{}", r.body);
    assert!(
        c.reconnect_count() >= 1,
        "the request went through a transparent reconnect"
    );

    handle.stop_and_wait().unwrap();
    cleanup(&state);
}
