//! Hostile wire-input tests: the server must answer garbage with
//! structured errors, never panic, and never let one bad client block a
//! well-behaved one.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use edna_core::Workspace;
use edna_server::{server, Client, ServerConfig, ServerHandle, Service};
use edna_util::frame::encode_record;
use edna_util::sha256::DIGEST_LEN;

fn temp_state(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("edna_hostile_test_{tag}_{}", std::process::id()));
    cleanup(&p);
    p
}

fn cleanup(p: &Path) {
    let _ = std::fs::remove_file(p);
    for suffix in [".tmp", ".metrics", ".metrics.tmp", ".wal", ".lock"] {
        let _ = std::fs::remove_file(edna_core::workspace::sidecar(p, suffix));
    }
    let _ = std::fs::remove_dir_all(edna_core::workspace::sidecar(p, ".vault"));
}

fn start_server(tag: &str, config: ServerConfig) -> (ServerHandle, PathBuf) {
    let state = temp_state(tag);
    let ws = Workspace::init(&state, None).unwrap();
    ws.db
        .execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, x INT)")
        .unwrap();
    ws.db.execute("INSERT INTO t (x) VALUES (1), (2)").unwrap();
    let svc = Arc::new(Service::new(ws).unwrap());
    let handle = server::start(svc, config).unwrap();
    (handle, state)
}

/// Reads one response frame off a raw socket (no client conveniences).
fn read_raw_response(stream: &mut TcpStream) -> Option<String> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).ok()?;
    let len = u32::from_le_bytes(len_buf) as usize;
    let mut rest = vec![0u8; len + DIGEST_LEN];
    stream.read_exact(&mut rest).ok()?;
    String::from_utf8(rest[..len].to_vec()).ok()
}

#[test]
fn truncated_frame_gets_a_frame_error_and_the_server_survives() {
    let (handle, state) = start_server("truncated", ServerConfig::default());
    let addr = handle.addr();

    let mut hostile = TcpStream::connect(addr).unwrap();
    let framed = encode_record(b"health\n\n");
    hostile.write_all(&framed[..framed.len() / 2]).unwrap();
    // Half a frame, then hang up mid-frame.
    hostile.shutdown(std::net::Shutdown::Write).unwrap();
    let resp = read_raw_response(&mut hostile);
    assert!(
        resp.as_deref().unwrap_or("").starts_with("err frame"),
        "got: {resp:?}"
    );

    // The server is fine: a fresh well-behaved connection works.
    let mut c = Client::connect(addr).unwrap();
    assert!(c.health().unwrap().ok);
    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn oversized_frame_is_refused_before_the_body_is_read() {
    let (handle, state) = start_server(
        "oversized",
        ServerConfig {
            max_frame_bytes: 1024,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    let mut hostile = TcpStream::connect(addr).unwrap();
    // A 3 GiB length prefix; the body never needs to exist for the
    // server to say no.
    hostile.write_all(&(3u32 << 30).to_le_bytes()).unwrap();
    let resp = read_raw_response(&mut hostile).unwrap();
    assert!(resp.starts_with("err too-large"), "got: {resp}");

    let mut c = Client::connect(addr).unwrap();
    assert!(c.health().unwrap().ok);
    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn checksum_failure_is_refused_and_the_connection_closed() {
    let (handle, state) = start_server("checksum", ServerConfig::default());
    let addr = handle.addr();

    let mut hostile = TcpStream::connect(addr).unwrap();
    let mut framed = encode_record(b"health\n\n");
    let last = framed.len() - 1;
    framed[last] ^= 0xFF;
    hostile.write_all(&framed).unwrap();
    let resp = read_raw_response(&mut hostile).unwrap();
    assert!(resp.starts_with("err frame"), "got: {resp}");
    // Closed: the next read sees EOF.
    let mut buf = [0u8; 1];
    assert_eq!(hostile.read(&mut buf).unwrap_or(0), 0);

    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn zero_length_frame_is_a_usage_error_and_the_connection_lives() {
    let (handle, state) = start_server("zerolen", ServerConfig::default());
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&encode_record(b"")).unwrap();
    let resp = read_raw_response(&mut stream).unwrap();
    assert!(resp.starts_with("err usage"), "got: {resp}");

    // The framing was valid, so the connection stays usable.
    stream.write_all(&encode_record(b"health\n\n")).unwrap();
    let resp = read_raw_response(&mut stream).unwrap();
    assert!(resp.starts_with("ok"), "got: {resp}");

    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn non_utf8_body_is_a_frame_error() {
    let (handle, state) = start_server("nonutf8", ServerConfig::default());
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(&encode_record(&[0xFF, 0xFE, 0x80, 0x00]))
        .unwrap();
    let resp = read_raw_response(&mut stream).unwrap();
    assert!(resp.starts_with("err frame"), "got: {resp}");

    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn slowloris_and_malformed_clients_cannot_block_a_well_behaved_one() {
    // Two hostile connections pin at most two workers; with a pool of
    // four, the well-behaved client's latency stays bounded by its own
    // work, not by the hostile clients' 5-second connection timeout.
    let config = ServerConfig {
        max_conns: 4,
        queue_depth: 4,
        conn_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let (handle, state) = start_server("slowloris", config);
    let addr = handle.addr();

    // Hostile client 1: starts a frame, then stalls half-written.
    let mut stalled = TcpStream::connect(addr).unwrap();
    let framed = encode_record(b"sql\n\nSELECT * FROM t");
    stalled.write_all(&framed[..3]).unwrap();

    // Hostile client 2: dribbles one byte every 50 ms.
    let dribbler = std::thread::spawn(move || {
        let mut s = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => return,
        };
        let framed = encode_record(&vec![b'x'; 4096]);
        for chunk in framed.chunks(1).take(100) {
            if s.write_all(chunk).is_err() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });

    std::thread::sleep(Duration::from_millis(100));

    // The well-behaved client gets answers with bounded latency the
    // whole time the hostile pair is stalling.
    let mut c = Client::connect(addr).unwrap();
    for _ in 0..20 {
        let t0 = Instant::now();
        let r = c.sql("SELECT COUNT(*) FROM t").unwrap();
        assert!(r.ok, "{}", r.body);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "well-behaved client was starved: {:?}",
            t0.elapsed()
        );
    }

    // Eventually the stalled client is evicted with a timeout error.
    let resp = read_raw_response(&mut stalled);
    if let Some(resp) = resp {
        assert!(resp.starts_with("err timeout"), "got: {resp}");
    }
    dribbler.join().unwrap();

    // The hostile clients are counted, and the server drains cleanly.
    // Fresh connection: `c` sat idle while we waited for the eviction
    // and may itself have been reaped by the idle timeout, which is
    // correct server behaviour.
    drop(c);
    let mut c = Client::connect(addr).unwrap();
    let r = c.stats().unwrap();
    assert!(r.body.contains("edna_server_timeouts_total"), "{}", r.body);
    assert!(c.shutdown(handle.shutdown_token()).unwrap().ok);
    handle.wait().unwrap();
    cleanup(&state);
}

fn addr_of(handle: &ServerHandle) -> SocketAddr {
    handle.addr()
}

#[test]
fn a_fuzz_burst_of_garbage_never_kills_the_server() {
    let (handle, state) = start_server("fuzz", ServerConfig::default());
    let addr = addr_of(&handle);

    // Deterministic garbage: assorted prefixes, lengths, and junk bytes.
    use edna_util::rng::Rng as _;
    let mut rng = edna_util::rng::SplitMix64::new(0xED7A);
    for _ in 0..40 {
        let mut s = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let n = (rng.next_u64() % 64) as usize;
        let junk: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        let _ = s.write_all(&junk);
        // Half the connections hang up immediately, half linger.
        if rng.next_u64().is_multiple_of(2) {
            drop(s);
        } else {
            let _ = s.shutdown(std::net::Shutdown::Write);
            let _ = read_raw_response(&mut s);
        }
    }

    let mut c = Client::connect(addr).unwrap();
    let r = c.sql("SELECT COUNT(*) FROM t").unwrap();
    assert!(r.ok, "server died under garbage: {}", r.body);
    assert!(c.shutdown(handle.shutdown_token()).unwrap().ok);
    handle.wait().unwrap();
    cleanup(&state);
}
