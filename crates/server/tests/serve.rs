//! End-to-end server tests: a real listener, real sockets, concurrent
//! clients, backpressure, capability enforcement, and graceful drain.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use edna_core::Workspace;
use edna_server::{code, server, Client, Request, ServerConfig, ServerHandle, Service};

fn temp_state(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("edna_serve_test_{tag}_{}", std::process::id()));
    cleanup(&p);
    p
}

fn cleanup(p: &Path) {
    let _ = std::fs::remove_file(p);
    for suffix in [".tmp", ".metrics", ".metrics.tmp", ".wal", ".lock"] {
        let _ = std::fs::remove_file(edna_core::workspace::sidecar(p, suffix));
    }
    let _ = std::fs::remove_dir_all(edna_core::workspace::sidecar(p, ".vault"));
}

const SPEC: &str = r#"
disguise_name: "Gdpr"
user_to_disguise: $UID
tables: {
  users: { transformations: [ Remove(pred: "id = $UID") ] },
}
"#;

fn start_server(tag: &str, config: ServerConfig) -> (ServerHandle, PathBuf) {
    let state = temp_state(tag);
    let ws = Workspace::init(&state, None).unwrap();
    ws.db
        .execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)")
        .unwrap();
    ws.db
        .execute("INSERT INTO users (name) VALUES ('bea'), ('mel'), ('lyn')")
        .unwrap();
    ws.register_spec(SPEC).unwrap();
    let svc = Arc::new(Service::new(ws).unwrap());
    let handle = server::start(svc, config).unwrap();
    (handle, state)
}

#[test]
fn full_lifecycle_over_the_wire() {
    let (handle, state) = start_server("lifecycle", ServerConfig::default());
    let addr = handle.addr();

    let mut c = Client::connect(addr).unwrap();
    assert!(c.health().unwrap().ok);
    assert!(c.request(&Request::new("ready")).unwrap().ok);

    // SQL round trip on a persistent connection.
    let r = c.sql("SELECT name FROM users ORDER BY id").unwrap();
    assert!(r.ok, "{}", r.body);
    assert_eq!(r.header_value("rows"), Some("3"));
    assert!(r.body.contains("bea\n"), "{}", r.body);
    let r = c.sql("INSERT INTO users (name) VALUES ('new')").unwrap();
    assert_eq!(r.header_value("affected"), Some("1"));
    assert!(r.header_value("last-insert-id").is_some());

    // Apply mints a capability; reveal requires it.
    let r = c.apply("Gdpr", Some("1")).unwrap();
    assert!(r.ok, "{}", r.body);
    let id: u64 = r.header_value("id").unwrap().parse().unwrap();
    let cap = r.header_value("cap").unwrap().to_string();
    assert_eq!(cap.len(), 64, "32 random bytes, hex-encoded");

    let denied = c.reveal(id, &"ab".repeat(32)).unwrap();
    assert!(!denied.ok);
    assert_eq!(denied.code.as_deref(), Some(code::DENIED));
    let missing = c
        .request(&Request::new("reveal").header("id", id.to_string()))
        .unwrap();
    assert_eq!(missing.code.as_deref(), Some(code::DENIED));

    let r = c.reveal(id, &cap).unwrap();
    assert!(r.ok, "{}", r.body);
    let r = c.sql("SELECT COUNT(*) FROM users").unwrap();
    assert!(r.body.contains('4'), "all rows back: {}", r.body);

    // check and recover ops answer over the wire.
    let r = c.request(&Request::new("check").arg("Gdpr")).unwrap();
    assert!(r.ok, "{}", r.body);
    let r = c
        .request(&Request::new("recover").header("verify", "true"))
        .unwrap();
    assert!(r.ok, "{}", r.body);
    assert!(r.body.contains("integrity: ok"), "{}", r.body);

    // Live stats include the server's own counters.
    let r = c.stats().unwrap();
    assert!(r.body.contains("edna_server_requests_total"), "{}", r.body);
    assert!(
        r.body.contains("edna_server_connections_total"),
        "{}",
        r.body
    );

    // Graceful drain: shutdown (with the operator token) answers, then
    // the server checkpoints and exits; the WAL is folded into the
    // snapshot.
    assert!(c.shutdown(handle.shutdown_token()).unwrap().ok);
    handle.wait().unwrap();
    let wal = edna_core::workspace::sidecar(&state, ".wal");
    let wal_len = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
    assert_eq!(wal_len, 0, "clean shutdown leaves a checkpointed WAL");

    // The state reopens cleanly (the server released the lock).
    let ws = Workspace::open(&state, None).unwrap();
    assert_eq!(ws.last_recovery.frames_replayed, 0);
    assert_eq!(ws.db.row_count("users").unwrap(), 4);
    drop(ws);
    cleanup(&state);
}

#[test]
fn shutdown_without_the_operator_token_is_denied() {
    let (handle, state) = start_server("shutdown_token", ServerConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();

    // Missing and wrong tokens are both refused, and the refusal does
    // not drain the server: other tenants keep working.
    let r = c.request(&Request::new("shutdown")).unwrap();
    assert!(!r.ok);
    assert_eq!(r.code.as_deref(), Some(code::DENIED), "{}", r.body);
    let r = c.shutdown(&"ff".repeat(32)).unwrap();
    assert_eq!(r.code.as_deref(), Some(code::DENIED), "{}", r.body);
    assert!(c.health().unwrap().ok, "denied shutdown must not drain");
    let mut other = Client::connect(handle.addr()).unwrap();
    assert!(other.sql("SELECT COUNT(*) FROM users").unwrap().ok);

    // The real token drains.
    assert!(c.shutdown(handle.shutdown_token()).unwrap().ok);
    handle.wait().unwrap();
    cleanup(&state);
}

#[test]
fn wire_sql_cannot_forge_or_destroy_capabilities() {
    let (handle, state) = start_server("reserved_wire", ServerConfig::default());
    let mut c = Client::connect(handle.addr()).unwrap();

    let r = c.apply("Gdpr", Some("1")).unwrap();
    assert!(r.ok, "{}", r.body);
    let id: u64 = r.header_value("id").unwrap().parse().unwrap();
    let cap = r.header_value("cap").unwrap().to_string();

    // A hostile tenant cannot rewrite the stored hash to one they chose,
    // delete it to deny the legitimate reveal, or read hashes out.
    for stmt in [
        "UPDATE _edna_caps SET cap_hash = 'mine'",
        "DELETE FROM _edna_caps",
        "SELECT cap_hash FROM _edna_caps",
        "DROP TABLE _edna_caps",
    ] {
        let r = c.sql(stmt).unwrap();
        assert!(!r.ok, "{stmt} must be refused");
        assert_eq!(r.code.as_deref(), Some(code::DENIED), "{stmt}: {}", r.body);
    }

    // The legitimate capability still reveals.
    let r = c.reveal(id, &cap).unwrap();
    assert!(r.ok, "{}", r.body);

    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn second_server_on_same_state_is_refused_by_the_lock() {
    let (handle, state) = start_server("lock", ServerConfig::default());
    let err = match Workspace::open(&state, None) {
        Ok(_) => panic!("state lock should refuse a second opener"),
        Err(e) => e.to_string(),
    };
    assert!(err.contains("locked by running process"), "got: {err}");
    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn admission_control_answers_busy_instead_of_queueing_forever() {
    // One worker, no spare queue slot beyond it: with the worker pinned
    // on a slow statement and one connection queued, the next connection
    // must get an immediate `err busy`.
    let config = ServerConfig {
        max_conns: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let (handle, state) = start_server("busy", config);
    let addr = handle.addr();

    let mut pinned = Client::connect(addr).unwrap();
    assert!(pinned.health().unwrap().ok); // worker now owns this connection
    let _queued = Client::connect(addr).unwrap(); // fills the queue slot
    std::thread::sleep(Duration::from_millis(100));

    // The rejected connection gets the busy frame as the response to
    // whatever it sends first. The client retries `busy` with bounded
    // backoff (reconnecting each attempt, since the server closes after
    // the refusal); with the worker still pinned, every retry is also
    // refused and the exhaustion surfaces as an error naming the code.
    let t0 = Instant::now();
    let mut rejected = Client::connect(addr).unwrap();
    let err = rejected
        .health()
        .expect_err("busy past every retry must surface");
    assert!(err.to_string().contains("busy"), "{err}");
    assert_eq!(rejected.retry_count(), 4, "MAX_ATTEMPTS-1 bounded retries");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "busy must be immediate (and backoff bounded), not queued"
    );

    drop(pinned);
    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn slow_apply_does_not_block_health_probes() {
    let config = ServerConfig {
        max_conns: 4,
        ..ServerConfig::default()
    };
    let (handle, state) = start_server("liveness", config);
    let addr = handle.addr();

    // Slow each statement so the apply holds the door a while.
    {
        let mut c = Client::connect(addr).unwrap();
        // Injected latency is a test knob on the engine, reachable only
        // in-process — but the apply path issues many statements, so a
        // big INSERT workload keeps the writer busy instead.
        for _ in 0..3 {
            let values: Vec<String> = (0..400).map(|i| format!("('bulk{i}')")).collect();
            let stmt = format!("INSERT INTO users (name) VALUES {}", values.join(", "));
            assert!(c.sql(&stmt).unwrap().ok);
        }
    }

    let applier = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let r = c.apply("Gdpr", Some("2")).unwrap();
        assert!(r.ok, "{}", r.body);
    });
    // While the apply runs, health (lock-free) answers with bounded
    // latency from a separate connection.
    let mut prober = Client::connect(addr).unwrap();
    for _ in 0..10 {
        let t0 = Instant::now();
        assert!(prober.health().unwrap().ok);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "health must not wait on the apply"
        );
    }
    applier.join().unwrap();
    handle.stop_and_wait().unwrap();
    cleanup(&state);
}

#[test]
fn drain_refuses_new_connections_and_finishes_in_flight_work() {
    let (handle, state) = start_server("drain", ServerConfig::default());
    let addr = handle.addr();

    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    assert!(a.health().unwrap().ok);
    assert!(b.health().unwrap().ok);

    assert!(a.shutdown(handle.shutdown_token()).unwrap().ok);

    // The other persistent connection is told the server is draining on
    // its next request (or sees a clean close), and new connections
    // cannot get work done.
    // An Err means the connection was already closed by the drain,
    // which is also an acceptable refusal.
    if let Ok(r) = b.health() {
        assert_eq!(r.code.as_deref(), Some(code::SHUTTING_DOWN));
    }
    handle.wait().unwrap();
    if let Ok(mut c) = Client::connect(addr) {
        if let Ok(r) = c.health() {
            assert_eq!(r.code.as_deref(), Some(code::SHUTTING_DOWN));
        }
    }
    cleanup(&state);
}

#[test]
fn concurrent_mixed_clients_keep_state_consistent() {
    let (handle, state) = start_server(
        "mixed",
        ServerConfig {
            max_conns: 8,
            queue_depth: 16,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    std::thread::scope(|s| {
        for t in 0..8 {
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..10 {
                    if t % 2 == 0 {
                        let r = c
                            .sql(&format!("INSERT INTO users (name) VALUES ('t{t}i{i}')"))
                            .unwrap();
                        assert!(r.ok, "{}", r.body);
                    } else {
                        let r = c.sql("SELECT COUNT(*) FROM users").unwrap();
                        assert!(r.ok, "{}", r.body);
                    }
                }
            });
        }
    });

    let mut c = Client::connect(addr).unwrap();
    let r = c.sql("SELECT COUNT(*) FROM users").unwrap();
    assert!(r.body.contains("43"), "3 seed + 40 inserted: {}", r.body);
    assert!(c.shutdown(handle.shutdown_token()).unwrap().ok);
    handle.wait().unwrap();

    // Everything survived into the checkpointed state.
    let ws = Workspace::open(&state, None).unwrap();
    assert_eq!(ws.db.row_count("users").unwrap(), 43);
    assert_eq!(ws.db.verify_integrity(), Vec::<String>::new());
    drop(ws);
    cleanup(&state);
}

#[test]
fn background_checkpointer_bounds_the_wal() {
    let (handle, state) = start_server(
        "ckpt",
        ServerConfig {
            checkpoint_every: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let mut c = Client::connect(addr).unwrap();
    for i in 0..20 {
        assert!(
            c.sql(&format!("INSERT INTO users (name) VALUES ('w{i}')"))
                .unwrap()
                .ok
        );
    }
    let wal = edna_core::workspace::sidecar(&state, ".wal");
    let grown = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
    assert!(grown > 0, "writes land in the WAL first");
    // Within a few checkpoint intervals the WAL is truncated without any
    // client asking for it.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let len = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        if len == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "background checkpoint never truncated the WAL (still {len} bytes)"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    // The checkpoint is a real snapshot: metrics sidecar refreshed too.
    assert!(edna_core::workspace::sidecar(&state, ".metrics").exists());
    assert!(c.shutdown(handle.shutdown_token()).unwrap().ok);
    handle.wait().unwrap();
    cleanup(&state);
}

#[test]
fn apply_many_disguises_a_cohort_over_the_wire() {
    let (handle, state) = start_server("apply_many", ServerConfig::default());
    let addr = handle.addr();
    let mut c = Client::connect(addr).unwrap();

    // Grow the population past the three seed users.
    for i in 0..20 {
        let r = c
            .sql(&format!("INSERT INTO users (name) VALUES ('u{i}')"))
            .unwrap();
        assert!(r.ok, "{}", r.body);
    }

    // Disguise users 1..=20 in one request, leaving 21..=23.
    let ids: String = (1..=20).map(|i| format!("{i}\n")).collect();
    let r = c
        .request(
            &Request::new("apply_many")
                .arg("Gdpr")
                .header("shards", "4")
                .body(format!("# departing cohort\n{ids}")),
        )
        .unwrap();
    assert!(r.ok, "{}", r.body);
    assert_eq!(r.header_value("users"), Some("20"));
    assert_eq!(r.header_value("succeeded"), Some("20"));
    assert_eq!(r.header_value("failed"), Some("0"));
    assert_eq!(r.header_value("shards"), Some("4"));

    let r = c.sql("SELECT COUNT(*) FROM users").unwrap();
    assert!(r.body.contains('3'), "only the cohort is gone: {}", r.body);

    // Bad requests answer with usage errors, not hangs.
    let r = c.request(&Request::new("apply_many")).unwrap();
    assert_eq!(r.code.as_deref(), Some(code::USAGE));
    let r = c
        .request(
            &Request::new("apply_many")
                .arg("Gdpr")
                .body("\n# only comments\n"),
        )
        .unwrap();
    assert_eq!(r.code.as_deref(), Some(code::USAGE));
    let r = c
        .request(
            &Request::new("apply_many")
                .arg("Gdpr")
                .header("shards", "zap")
                .body("21\n"),
        )
        .unwrap();
    assert_eq!(r.code.as_deref(), Some(code::USAGE));

    handle.stop_and_wait().unwrap();
    cleanup(&state);
}
