//! Crash consistency of the vault pending-write journal and of
//! half-applied disguises: double crashes around a flush must neither
//! lose nor duplicate spooled vault entries, and recovery must resolve
//! WAL disguise intents against the committed history.

use std::path::PathBuf;

use edna_core::{ApplyOptions, Disguiser, VaultFailurePolicy};
use edna_relational::{Database, Value};
use edna_vault::{FaultPlan, FaultyStore, FileStore, TieredVault, Vault, VaultJournal};

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("edna_core_crash_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self, file: &str) -> PathBuf {
        self.0.join(file)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const SPEC: &str = r#"
disguise_name: "Gdpr"
user_to_disguise: $UID
tables: {
  users: { transformations: [ Remove(pred: "id = $UID") ] },
}
"#;

fn seed_db() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE users (id INT PRIMARY KEY, name TEXT);
         INSERT INTO users VALUES (1, 'bea'), (2, 'mel');",
    )
    .unwrap();
    db
}

fn healthy_vaults(dir: &TempDir) -> TieredVault {
    TieredVault::new(
        Vault::plain(FileStore::open(dir.path("global")).unwrap()),
        Vault::plain(FileStore::open(dir.path("user")).unwrap()),
    )
}

fn down_vaults(dir: &TempDir) -> TieredVault {
    let plan = || FaultPlan::new(1).error_rate(1.0).transient();
    TieredVault::new(
        Vault::plain(FaultyStore::new(
            FileStore::open(dir.path("global")).unwrap(),
            plan(),
        )),
        Vault::plain(FaultyStore::new(
            FileStore::open(dir.path("user")).unwrap(),
            plan(),
        )),
    )
}

#[test]
fn double_crash_around_flush_loses_and_duplicates_nothing() {
    let dir = TempDir::new("double");
    let journal_path = dir.path("pending.journal");
    let db = seed_db();

    // Phase 1: the vault backend is down; two applications under the
    // Buffer policy spool their reveal functions into the journal.
    let (id1, id2) = {
        let edna = Disguiser::with_vaults(db.clone(), down_vaults(&dir));
        edna.set_vault_journal(VaultJournal::open(&journal_path).unwrap());
        edna.register_dsl(SPEC).unwrap();
        let opts = ApplyOptions {
            vault_failure_policy: VaultFailurePolicy::Buffer,
            ..ApplyOptions::default()
        };
        let r1 = edna
            .apply_with_options("Gdpr", Some(&Value::Int(1)), opts)
            .unwrap();
        let r2 = edna
            .apply_with_options("Gdpr", Some(&Value::Int(2)), opts)
            .unwrap();
        assert!(r1.vault_buffered && r2.vault_buffered);
        assert_eq!(edna.pending_vault_writes().unwrap(), 2);
        (r1.disguise_id, r2.disguise_id)
    };

    // Crash #1: the backend recovers and a flush starts; the first
    // entry's put lands, then the process dies before the journal is
    // compacted. The entry now exists in BOTH the vault and the journal.
    {
        let journal = VaultJournal::open(&journal_path).unwrap();
        let pending = journal.pending().unwrap();
        assert_eq!(pending.len(), 2);
        let (tier, entry) = &pending[0];
        healthy_vaults(&dir).put(*tier, entry).unwrap();
    }

    // Crash #2: the restarted flush skips the duplicate, puts the second
    // entry — and dies again before compaction. Now BOTH entries are in
    // the vault and the journal, and the crash mid-append also tore a
    // partial record onto the journal tail.
    {
        let journal = VaultJournal::open(&journal_path).unwrap();
        let pending = journal.pending().unwrap();
        let (tier, entry) = &pending[1];
        healthy_vaults(&dir).put(*tier, entry).unwrap();
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .unwrap();
        f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
    }

    // Reboot: the torn tail is truncated at open, the flush finds every
    // entry already present and only compacts. Nothing lost, nothing
    // duplicated.
    let edna = Disguiser::with_vaults(db.clone(), healthy_vaults(&dir));
    edna.set_vault_journal(VaultJournal::open(&journal_path).unwrap());
    assert_eq!(edna.flush_pending_vault_writes().unwrap(), 2);
    assert_eq!(edna.pending_vault_writes().unwrap(), 0);
    let vaults = healthy_vaults(&dir);
    for (id, user) in [(id1, 1), (id2, 2)] {
        let entries = vaults.entries_for_disguise(&Value::Int(user), id).unwrap();
        assert_eq!(entries.len(), 1, "disguise {id}: exactly one vault entry");
    }
    // The flushed entries actually work: both disguises reveal.
    edna.reveal(id1).unwrap();
    edna.reveal(id2).unwrap();
    assert_eq!(db.row_count("users").unwrap(), 2);
}

#[test]
fn flush_is_idempotent_when_interrupted_repeatedly() {
    // Same window hit N times in a row: the vault entry count must stay
    // pinned at one however often the put-then-die cycle repeats.
    let dir = TempDir::new("repeat");
    let journal_path = dir.path("pending.journal");
    let db = seed_db();
    let id = {
        let edna = Disguiser::with_vaults(db.clone(), down_vaults(&dir));
        edna.set_vault_journal(VaultJournal::open(&journal_path).unwrap());
        edna.register_dsl(SPEC).unwrap();
        let opts = ApplyOptions {
            vault_failure_policy: VaultFailurePolicy::Buffer,
            ..ApplyOptions::default()
        };
        edna.apply_with_options("Gdpr", Some(&Value::Int(1)), opts)
            .unwrap()
            .disguise_id
    };
    for _ in 0..3 {
        let journal = VaultJournal::open(&journal_path).unwrap();
        let pending = journal.pending().unwrap();
        assert_eq!(pending.len(), 1, "entry must never be lost");
        let (tier, entry) = pending[0].clone();
        let edna = Disguiser::with_vaults(db.clone(), healthy_vaults(&dir));
        edna.set_vault_journal(journal);
        assert_eq!(edna.flush_pending_vault_writes().unwrap(), 1);
        // "Crash" before compaction: the next reboot sees the entry
        // still journalled even though the vault already holds it.
        VaultJournal::open(&journal_path)
            .unwrap()
            .append(tier, &entry)
            .unwrap();
    }
    let edna = Disguiser::with_vaults(db.clone(), healthy_vaults(&dir));
    edna.set_vault_journal(VaultJournal::open(&journal_path).unwrap());
    assert_eq!(edna.flush_pending_vault_writes().unwrap(), 1);
    assert_eq!(
        healthy_vaults(&dir)
            .entries_for_disguise(&Value::Int(1), id)
            .unwrap()
            .len(),
        1,
        "repeated interrupted flushes must not duplicate the entry"
    );
}
