//! Differential tests: the audit's static verdicts must match what the
//! runtime actually does. Each case runs `audit_workspace` over a spec
//! set AND executes the same specs against real data, asserting that
//! predicted-stuck reveals really fail, predicted-safe ones really
//! succeed, and predicted-diverging decay ladders really keep rewriting.

use edna_core::{
    analyze::codes, audit_workspace, DecayPolicy, DecayStage, DisguiseSpec, DisguiseSpecBuilder,
    Disguiser, Error, Modifier, Policy,
};
use edna_relational::{Database, Value};

fn forum_db() -> Database {
    let db = Database::new();
    db.execute(
        "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, \
         last_login INT NOT NULL DEFAULT 0)",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE comments (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
         body TEXT, created_at INT NOT NULL DEFAULT 0, \
         FOREIGN KEY (user_id) REFERENCES users(id))",
    )
    .unwrap();
    db.execute("INSERT INTO users (name, last_login) VALUES ('bea', 100), ('mel', 9000)")
        .unwrap();
    db.execute(
        "INSERT INTO comments (user_id, body, created_at) VALUES \
         (1, 'first', 120), (1, 'again', 150), (2, 'hello', 9100)",
    )
    .unwrap();
    db
}

fn shelf() -> DisguiseSpec {
    DisguiseSpecBuilder::new("Shelf")
        .user_scoped()
        .remove("comments", Some("user_id = $UID"))
        .build()
        .unwrap()
}

fn purge(reversible: bool) -> DisguiseSpec {
    let b = DisguiseSpecBuilder::new("Purge")
        .user_scoped()
        .remove("comments", Some("user_id = $UID"))
        .remove("users", Some("id = $UID"));
    let b = if reversible { b } else { b.irreversible() };
    b.build().unwrap()
}

#[test]
fn predicted_orphaning_really_strands_the_reveal() {
    let db = forum_db();
    let specs = [shelf(), purge(false)];

    // Static verdict: the pair can orphan Shelf's vault entry.
    let diags = audit_workspace(&db, &specs, &[]);
    let codes_found: Vec<_> = diags.iter().map(|d| d.code).collect();
    assert!(
        codes_found.contains(&codes::REVEAL_UNREACHABLE),
        "{diags:?}"
    );
    assert!(codes_found.contains(&codes::VAULT_ORPHANED), "{diags:?}");

    // Runtime confirmation: apply in the flagged order, then try the
    // walk-back the audit says is impossible.
    let edna = Disguiser::new(db.clone());
    for s in specs {
        edna.register(s).unwrap();
    }
    let kept = edna.apply("Shelf", Some(&Value::Int(1))).unwrap();
    assert!(
        kept.rows_removed > 0,
        "Shelf really removed (and vaulted) rows"
    );
    edna.apply("Purge", Some(&Value::Int(1))).unwrap();
    let err = edna.reveal(kept.disguise_id).unwrap_err();
    match err {
        Error::NotReversible { reason, .. } => {
            assert!(reason.contains("missing parents"), "{reason}");
        }
        other => panic!("expected NotReversible, got {other:?}"),
    }
}

#[test]
fn predicted_safe_pair_really_walks_back_to_present() {
    let db = forum_db();
    let specs = [shelf(), purge(true)];

    // Static verdict: with Purge reversible, every interleaving can be
    // walked back (LIFO order).
    assert!(audit_workspace(&db, &specs, &[]).is_empty());

    // Runtime confirmation: same application order, reveal newest-first
    // (the order the audit's walk-back models) restores everything.
    let edna = Disguiser::new(db.clone());
    for s in specs {
        edna.register(s).unwrap();
    }
    let kept = edna.apply("Shelf", Some(&Value::Int(1))).unwrap();
    let purged = edna.apply("Purge", Some(&Value::Int(1))).unwrap();
    assert_eq!(db.row_count("users").unwrap(), 1);
    edna.reveal(purged.disguise_id).unwrap();
    edna.reveal(kept.disguise_id).unwrap();
    assert_eq!(db.row_count("users").unwrap(), 2, "account restored");
    assert_eq!(db.row_count("comments").unwrap(), 3, "comments restored");
}

#[test]
fn predicted_diverging_decay_really_rewrites_every_run() {
    let db = forum_db();
    let blur = DisguiseSpecBuilder::new("Blur")
        .irreversible()
        .modify(
            "comments",
            Some("created_at < NOW() - 300"),
            "body",
            Modifier::HashText,
        )
        .build()
        .unwrap();
    let policy = DecayPolicy {
        name: "aging".to_string(),
        stages: vec![DecayStage {
            disguise: "Blur".to_string(),
        }],
        cadence: 60,
    };

    // Static verdict: diverges.
    let diags = audit_workspace(
        &db,
        std::slice::from_ref(&blur),
        &[Policy::Decay(policy.clone())],
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, codes::POLICY_DIVERGES);

    // Runtime confirmation: the second and third runs keep rewriting the
    // same aged rows (hash of a hash is a fresh digest).
    let edna = Disguiser::new(db.clone());
    edna.register(blur).unwrap();
    let first: usize = policy
        .run(&edna, 1000)
        .unwrap()
        .iter()
        .map(|r| r.rows_modified)
        .sum();
    let second: usize = policy
        .run(&edna, 1060)
        .unwrap()
        .iter()
        .map(|r| r.rows_modified)
        .sum();
    assert!(first > 0, "decay did something on run one");
    assert_eq!(second, first, "every aged row rewritten again: divergence");
}

#[test]
fn predicted_converging_decay_really_settles() {
    let db = forum_db();
    let calm = DisguiseSpecBuilder::new("Calm")
        .irreversible()
        .modify(
            "comments",
            Some("created_at < NOW() - 300"),
            "body",
            Modifier::Redact,
        )
        .build()
        .unwrap();
    let policy = DecayPolicy {
        name: "calm-aging".to_string(),
        stages: vec![DecayStage {
            disguise: "Calm".to_string(),
        }],
        cadence: 60,
    };

    // Static verdict: converges (no diagnostics at all).
    let diags = audit_workspace(
        &db,
        std::slice::from_ref(&calm),
        &[Policy::Decay(policy.clone())],
    );
    assert!(diags.is_empty(), "{diags:?}");

    // Runtime confirmation: the second run over the same window is a
    // no-op (apply skips rows whose new value equals the current one).
    let edna = Disguiser::new(db.clone());
    edna.register(calm).unwrap();
    let first: usize = policy
        .run(&edna, 1000)
        .unwrap()
        .iter()
        .map(|r| r.rows_modified)
        .sum();
    let second: usize = policy
        .run(&edna, 1060)
        .unwrap()
        .iter()
        .map(|r| r.rows_modified)
        .sum();
    assert!(first > 0);
    assert_eq!(second, 0, "idempotent decay settles");
}
