//! Scenario tests for the disguising tool: application, reversal,
//! composition, assertions, expiry, and policies.

use edna_core::spec::{DisguiseSpecBuilder, Generator, Modifier};
use edna_core::{ApplyOptions, Disguiser, Error};
use edna_relational::{Database, Value};
use edna_vault::VaultTier;

/// A small forum-like schema: users, stories, comments (comments cascade
/// with their story).
fn forum_db() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, username TEXT NOT NULL, \
         email TEXT, karma INT DEFAULT 0, disabled BOOL NOT NULL DEFAULT FALSE, \
         last_login INT DEFAULT 0);
         CREATE TABLE stories (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
         title TEXT, created_at INT DEFAULT 0, \
         FOREIGN KEY (user_id) REFERENCES users(id));
         CREATE TABLE comments (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
         story_id INT NOT NULL, body TEXT, created_at INT DEFAULT 0, \
         FOREIGN KEY (user_id) REFERENCES users(id), \
         FOREIGN KEY (story_id) REFERENCES stories(id) ON DELETE CASCADE);
         CREATE INDEX comments_by_user ON comments (user_id);
         CREATE INDEX stories_by_user ON stories (user_id);",
    )
    .unwrap();
    // Two users; bea (1) has a story and two comments, axolotl (2) one comment.
    db.execute("INSERT INTO users (username, email) VALUES ('bea', 'bea@uni.edu')")
        .unwrap();
    db.execute("INSERT INTO users (username, email) VALUES ('axolotl', 'axo@zoo.org')")
        .unwrap();
    db.execute("INSERT INTO stories (user_id, title) VALUES (1, 'privacy heroes')")
        .unwrap();
    db.execute(
        "INSERT INTO comments (user_id, story_id, body) VALUES \
         (1, 1, 'first!'), (1, 1, 'more thoughts'), (2, 1, 'nice story')",
    )
    .unwrap();
    db
}

/// GDPR-style scrub: decorrelate contributions, delete the account.
fn scrub_spec() -> edna_core::DisguiseSpec {
    DisguiseSpecBuilder::new("Scrub")
        .user_scoped()
        .decorrelate("stories", Some("user_id = $UID"), "user_id", "users")
        .decorrelate("comments", Some("user_id = $UID"), "user_id", "users")
        .remove("users", Some("id = $UID"))
        .placeholder("users", "username", Generator::Random)
        .placeholder("users", "email", Generator::Default(Value::Null))
        .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
        .assert_empty("stories", "user_id = $UID", "no stories attributed to user")
        .assert_empty(
            "comments",
            "user_id = $UID",
            "no comments attributed to user",
        )
        .build()
        .unwrap()
}

fn disguiser(db: &Database) -> Disguiser {
    let edna = Disguiser::new(db.clone());
    edna.register(scrub_spec()).unwrap();
    edna
}

#[test]
fn scrub_decorrelates_and_removes() {
    let db = forum_db();
    let edna = disguiser(&db);
    let report = edna.apply("Scrub", Some(&Value::Int(1))).unwrap();

    assert_eq!(report.rows_removed, 1, "only the account row is removed");
    assert_eq!(report.rows_decorrelated, 3, "one story + two comments");
    assert_eq!(
        report.placeholders_created, 3,
        "one placeholder per row (Fig. 2)"
    );

    // Bea is gone; her contributions remain but point at distinct,
    // disabled placeholders.
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM users WHERE id = 1")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(0)
    );
    assert_eq!(db.row_count("stories").unwrap(), 1);
    assert_eq!(db.row_count("comments").unwrap(), 3);
    let owners = db
        .execute("SELECT DISTINCT user_id FROM comments WHERE body != 'nice story'")
        .unwrap()
        .rows;
    assert_eq!(owners.len(), 2, "each comment got its own placeholder");
    let placeholders = db
        .execute("SELECT disabled, email FROM users WHERE id != 2")
        .unwrap()
        .rows;
    assert_eq!(placeholders.len(), 3);
    for row in placeholders {
        assert_eq!(row[0], Value::Bool(true), "placeholders are disabled");
        assert_eq!(row[1], Value::Null, "placeholders have no email");
    }
    // Axolotl untouched.
    assert_eq!(
        db.execute("SELECT user_id FROM comments WHERE body = 'nice story'")
            .unwrap()
            .rows[0][0],
        Value::Int(2)
    );
}

#[test]
fn reveal_round_trips_exactly() {
    let db = forum_db();
    let edna = disguiser(&db);
    let before = db.dump();
    let report = edna.apply("Scrub", Some(&Value::Int(1))).unwrap();
    assert_ne!(db.dump(), before, "the disguise changed the database");

    let reveal = edna.reveal(report.disguise_id).unwrap();
    assert_eq!(reveal.rows_reinserted, 1);
    assert_eq!(reveal.rows_restored, 3);
    assert_eq!(reveal.placeholders_removed, 3);

    // Everything is back, except the history table grew (logical state of
    // application tables must match exactly).
    let mut after = db.dump();
    let mut expected = before.clone();
    after.remove(edna_core::HISTORY_TABLE);
    expected.remove(edna_core::HISTORY_TABLE);
    assert_eq!(after, expected);
    // History records the reversal.
    assert!(edna.history().get(report.disguise_id).unwrap().reverted);
    // Double reveal fails.
    assert!(matches!(
        edna.reveal(report.disguise_id),
        Err(Error::AlreadyReverted(_))
    ));
}

#[test]
fn remove_records_cascaded_children() {
    let db = forum_db();
    let edna = Disguiser::new(db.clone());
    // Deleting a story cascades to its comments; reveal must restore both.
    edna.register(
        DisguiseSpecBuilder::new("DropStories")
            .user_scoped()
            .remove("stories", Some("user_id = $UID"))
            .build()
            .unwrap(),
    )
    .unwrap();
    let report = edna.apply("DropStories", Some(&Value::Int(1))).unwrap();
    assert_eq!(report.rows_removed, 4, "1 story + 3 cascaded comments");
    assert_eq!(db.row_count("comments").unwrap(), 0);

    let reveal = edna.reveal(report.disguise_id).unwrap();
    assert_eq!(reveal.rows_reinserted, 4);
    assert_eq!(db.row_count("comments").unwrap(), 3);
    assert_eq!(db.row_count("stories").unwrap(), 1);
}

#[test]
fn modify_and_reveal_restores_values() {
    let db = forum_db();
    let edna = Disguiser::new(db.clone());
    edna.register(
        DisguiseSpecBuilder::new("RedactComments")
            .user_scoped()
            .modify("comments", Some("user_id = $UID"), "body", Modifier::Redact)
            .build()
            .unwrap(),
    )
    .unwrap();
    let report = edna.apply("RedactComments", Some(&Value::Int(1))).unwrap();
    assert_eq!(report.rows_modified, 2);
    let bodies = db
        .execute("SELECT body FROM comments WHERE user_id = 1")
        .unwrap()
        .rows;
    assert!(bodies
        .iter()
        .all(|r| r[0] == Value::Text("[deleted]".into())));

    edna.reveal(report.disguise_id).unwrap();
    let bodies = db
        .execute("SELECT body FROM comments WHERE user_id = 1 ORDER BY id")
        .unwrap()
        .rows;
    assert_eq!(bodies[0][0], Value::Text("first!".into()));
    assert_eq!(bodies[1][0], Value::Text("more thoughts".into()));
}

#[test]
fn reveal_respects_later_disguises() {
    // The paper's §4.2 example: reversal of a user disguise must not
    // reintroduce data a later global anonymization transformed.
    let db = forum_db();
    let edna = Disguiser::new(db.clone());
    edna.register(
        DisguiseSpecBuilder::new("RedactMine")
            .user_scoped()
            .modify("comments", Some("user_id = $UID"), "body", Modifier::Redact)
            .build()
            .unwrap(),
    )
    .unwrap();
    edna.register(
        DisguiseSpecBuilder::new("SiteWideRedact")
            .modify(
                "comments",
                None,
                "body",
                Modifier::Fixed(Value::Text("*".into())),
            )
            .build()
            .unwrap(),
    )
    .unwrap();

    // Bea redacts her comments, then the site redacts everything.
    let mine = edna.apply("RedactMine", Some(&Value::Int(1))).unwrap();
    edna.apply("SiteWideRedact", None).unwrap();

    // Bea reveals her redaction. Her original bodies must NOT reappear:
    // the later SiteWideRedact is re-applied to the revealed rows.
    let reveal = edna.reveal(mine.disguise_id).unwrap();
    assert_eq!(reveal.reapplied.len(), 1);
    assert_eq!(reveal.reapplied[0].1, "SiteWideRedact");
    let bodies = db.execute("SELECT body FROM comments").unwrap().rows;
    assert!(
        bodies.iter().all(|r| r[0] == Value::Text("*".into())),
        "revealed rows must still respect the later disguise, got {bodies:?}"
    );
}

#[test]
fn composition_finds_rows_a_prior_disguise_hid() {
    // Apply a global decorrelation first (ConfAnon-style), then a
    // user-scoped scrub. The scrub's predicates can't see Bea's rows
    // anymore; composition must consult the vault.
    let db = forum_db();
    let edna = Disguiser::new(db.clone());
    edna.register(scrub_spec()).unwrap();
    edna.register(
        DisguiseSpecBuilder::new("AnonAll")
            .decorrelate("comments", None, "user_id", "users")
            .placeholder("users", "username", Generator::Random)
            .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
            .build()
            .unwrap(),
    )
    .unwrap();

    edna.apply("AnonAll", None).unwrap();
    // All comments now point at placeholders.
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM comments WHERE user_id = 1")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(0)
    );

    // Naive composition (no optimization): recorrelate, scrub, redo.
    let opts = ApplyOptions {
        compose: true,
        optimize: false,
        use_transaction: true,
        ..ApplyOptions::default()
    };
    let report = edna
        .apply_with_options("Scrub", Some(&Value::Int(1)), opts)
        .unwrap();
    assert_eq!(
        report.rows_recorrelated, 2,
        "bea's two comments came back briefly"
    );
    assert_eq!(report.rows_removed, 1, "account removed");
    // Assertions in the spec guarantee no rows are attributed to Bea.
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM comments WHERE user_id = 1")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(0)
    );
}

#[test]
fn optimized_composition_skips_redundant_decorrelation() {
    let db = forum_db();
    let edna = Disguiser::new(db.clone());
    edna.register(scrub_spec()).unwrap();
    edna.register(
        DisguiseSpecBuilder::new("AnonAll")
            .decorrelate("comments", None, "user_id", "users")
            .decorrelate("stories", None, "user_id", "users")
            .placeholder("users", "username", Generator::Random)
            .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
            .build()
            .unwrap(),
    )
    .unwrap();
    edna.apply("AnonAll", None).unwrap();

    let naive = ApplyOptions {
        compose: true,
        optimize: false,
        use_transaction: true,
        ..ApplyOptions::default()
    };
    let optimized = ApplyOptions {
        compose: true,
        optimize: true,
        use_transaction: true,
        ..ApplyOptions::default()
    };

    // Run the optimized variant (on a separate identical setup, run naive
    // to compare statement counts).
    let report_opt = edna
        .apply_with_options("Scrub", Some(&Value::Int(1)), optimized)
        .unwrap();
    assert!(
        report_opt.skipped_redundant > 0,
        "optimization must kick in"
    );
    assert_eq!(
        report_opt.rows_recorrelated, 0,
        "nothing to recorrelate when optimized"
    );

    // Fresh environment for the naive run.
    let db2 = forum_db();
    let edna2 = Disguiser::new(db2.clone());
    edna2.register(scrub_spec()).unwrap();
    edna2
        .register(
            DisguiseSpecBuilder::new("AnonAll")
                .decorrelate("comments", None, "user_id", "users")
                .decorrelate("stories", None, "user_id", "users")
                .placeholder("users", "username", Generator::Random)
                .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
                .build()
                .unwrap(),
        )
        .unwrap();
    edna2.apply("AnonAll", None).unwrap();
    let report_naive = edna2
        .apply_with_options("Scrub", Some(&Value::Int(1)), naive)
        .unwrap();
    assert!(report_naive.rows_recorrelated > 0);
    assert!(
        report_opt.stats.statements < report_naive.stats.statements,
        "optimized path must issue fewer statements ({} vs {})",
        report_opt.stats.statements,
        report_naive.stats.statements
    );

    // Both end states satisfy the privacy goal.
    for d in [&db, &db2] {
        assert_eq!(
            d.execute("SELECT COUNT(*) FROM comments WHERE user_id = 1")
                .unwrap()
                .scalar()
                .unwrap(),
            &Value::Int(0)
        );
    }
}

#[test]
fn assertion_failure_rolls_back_and_retry_mechanism_works() {
    let db = forum_db();
    let edna = Disguiser::new(db.clone());
    edna.register(scrub_spec()).unwrap();
    edna.register(
        DisguiseSpecBuilder::new("AnonAll")
            .decorrelate("comments", None, "user_id", "users")
            .placeholder("users", "username", Generator::Random)
            .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
            .build()
            .unwrap(),
    )
    .unwrap();
    edna.apply("AnonAll", None).unwrap();

    // With composition UNAVAILABLE the scrub can still satisfy its
    // assertions here (prior disguise already hid the rows), so force a
    // genuinely failing assertion instead: an impossible end state.
    edna.register(
        DisguiseSpecBuilder::new("Impossible")
            .user_scoped()
            .decorrelate("stories", Some("user_id = $UID"), "user_id", "users")
            .decorrelate("comments", Some("user_id = $UID"), "user_id", "users")
            .remove("users", Some("id = $UID"))
            .placeholder("users", "username", Generator::Random)
            .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
            .assert_empty("comments", "story_id = 1", "nothing references story 1")
            .build()
            .unwrap(),
    )
    .unwrap();
    let before = db.dump();
    let err = edna.apply("Impossible", Some(&Value::Int(2))).unwrap_err();
    assert!(matches!(err, Error::AssertionFailed { .. }), "got {err}");
    assert_eq!(db.dump(), before, "failed disguise must leave no trace");
}

#[test]
fn irreversible_disguise_records_nothing() {
    let db = forum_db();
    let edna = Disguiser::new(db.clone());
    edna.register(
        DisguiseSpecBuilder::new("HardDelete")
            .user_scoped()
            .irreversible()
            .remove("comments", Some("user_id = $UID"))
            .build()
            .unwrap(),
    )
    .unwrap();
    let report = edna.apply("HardDelete", Some(&Value::Int(2))).unwrap();
    assert_eq!(report.rows_removed, 1);
    assert_eq!(edna.vaults().entries_for(&Value::Int(2)).unwrap().len(), 0);
    assert!(matches!(
        edna.reveal(report.disguise_id),
        Err(Error::NotReversible { .. })
    ));
}

#[test]
fn expired_vault_entries_make_disguise_irreversible() {
    let db = forum_db();
    db.set_now(1000);
    let edna = Disguiser::new(db.clone());
    edna.register(
        DisguiseSpecBuilder::new("Expiring")
            .user_scoped()
            .expires_after(500)
            .modify("comments", Some("user_id = $UID"), "body", Modifier::Redact)
            .build()
            .unwrap(),
    )
    .unwrap();
    let report = edna.apply("Expiring", Some(&Value::Int(1))).unwrap();

    // Before expiry: reversible.
    assert_eq!(edna.purge_expired(1400).unwrap(), 0);
    // After expiry: purged, reveal refuses.
    assert_eq!(edna.purge_expired(1500).unwrap(), 1);
    assert!(matches!(
        edna.reveal(report.disguise_id),
        Err(Error::NotReversible { .. })
    ));
}

#[test]
fn vault_tiers_route_by_scope() {
    let db = forum_db();
    let edna = Disguiser::new(db.clone());
    edna.register(scrub_spec()).unwrap();
    edna.register(
        DisguiseSpecBuilder::new("AnonAll")
            .decorrelate("comments", None, "user_id", "users")
            .placeholder("users", "username", Generator::Random)
            .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
            .build()
            .unwrap(),
    )
    .unwrap();
    edna.apply("Scrub", Some(&Value::Int(1))).unwrap();
    edna.apply("AnonAll", None).unwrap();
    // User-scoped entries live in the per-user (encrypted) tier; the
    // global sweep's entries in the global tier.
    assert!(
        edna.vaults()
            .tier(VaultTier::PerUser)
            .entry_count()
            .unwrap()
            >= 1
    );
    assert!(edna.vaults().tier(VaultTier::Global).entry_count().unwrap() >= 1);
    assert!(edna.vaults().tier(VaultTier::PerUser).is_encrypted());
}

#[test]
fn missing_user_and_unknown_disguise_errors() {
    let db = forum_db();
    let edna = disguiser(&db);
    assert!(matches!(
        edna.apply("Scrub", None),
        Err(Error::MissingUser(_))
    ));
    assert!(matches!(
        edna.apply("Nope", None),
        Err(Error::NoSuchDisguise(_))
    ));
    assert!(matches!(
        edna.reveal(999),
        Err(Error::NoSuchApplication(999))
    ));
}

#[test]
fn dsl_round_trip_through_disguiser() {
    let db = forum_db();
    let edna = Disguiser::new(db.clone());
    let name = edna
        .register_dsl(
            r#"
disguise_name: "DslScrub"
user_to_disguise: $UID
tables: {
  users: {
    generate_placeholder: [
      (username, Random),
      (email, Default(NULL)),
      (disabled, Default(TRUE)),
    ],
  },
  comments: {
    transformations: [
      # Order matters: modify while the $UID predicate still matches,
      # then decorrelate.
      Modify(pred: "user_id = $UID", column: body, modifier: Redact),
      Decorrelate(pred: "user_id = $UID", foreign_key: (user_id, users)),
    ],
  },
}
assertions: [
  ("no attributed comments", comments, "user_id = $UID"),
]
"#,
        )
        .unwrap();
    let report = edna.apply(&name, Some(&Value::Int(1))).unwrap();
    assert_eq!(report.rows_decorrelated, 2);
    assert_eq!(report.rows_modified, 2);
    edna.reveal(report.disguise_id).unwrap();
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM comments WHERE user_id = 1")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(2)
    );
}

#[test]
fn policies_expire_and_decay() {
    use edna_core::policy::{DecayPolicy, DecayStage, ExpirationPolicy, Policy, Scheduler};

    let db = forum_db();
    db.execute("UPDATE users SET last_login = 100 WHERE id = 1")
        .unwrap();
    db.execute("UPDATE users SET last_login = 900 WHERE id = 2")
        .unwrap();
    let edna = Disguiser::new(db.clone());
    edna.register(
        DisguiseSpecBuilder::new("ExpireUser")
            .user_scoped()
            .modify("comments", Some("user_id = $UID"), "body", Modifier::Redact)
            .build()
            .unwrap(),
    )
    .unwrap();
    edna.register(
        DisguiseSpecBuilder::new("DecayOld")
            .modify(
                "comments",
                Some("created_at < NOW() - 500"),
                "body",
                Modifier::Truncate(3),
            )
            .build()
            .unwrap(),
    )
    .unwrap();

    let mut sched = Scheduler::new();
    sched.add(Policy::Expiration(ExpirationPolicy {
        name: "expire-inactive".to_string(),
        disguise: "ExpireUser".to_string(),
        inactive_after: 400,
        user_query: "SELECT id FROM users WHERE last_login < $CUTOFF".to_string(),
        cadence: 100,
    }));
    sched.add(Policy::Decay(DecayPolicy {
        name: "decay".to_string(),
        stages: vec![DecayStage {
            disguise: "DecayOld".to_string(),
        }],
        cadence: 100,
    }));

    // At t=1000: bea (last_login=100) is inactive past 400s; axolotl is not.
    let reports = sched.tick(&edna, 1000).unwrap();
    let expired: Vec<_> = reports.iter().filter(|r| r.name == "ExpireUser").collect();
    assert_eq!(expired.len(), 1);
    assert_eq!(expired[0].user_id, Value::Int(1));
    // Decay truncated every comment older than 500 (created_at = 0 here);
    // bea's were already redacted to "[deleted]" → truncated to "[de".
    let bodies = db.execute("SELECT body FROM comments").unwrap().rows;
    assert!(bodies
        .iter()
        .all(|r| matches!(&r[0], Value::Text(s) if s.chars().count() <= 3)));

    // Second tick within the cadence window applies nothing new.
    let again = sched.tick(&edna, 1050).unwrap();
    assert!(again.is_empty());

    // Expired users are not re-disguised on later ticks (idempotence).
    let later = sched.tick(&edna, 2000).unwrap();
    assert!(later
        .iter()
        .all(|r| r.name != "ExpireUser" || r.user_id != Value::Int(1)));
}

#[test]
fn stats_grow_linearly_with_objects() {
    // The paper's §6 observation: queries grow linearly with the number of
    // disguised objects.
    let mut counts = Vec::new();
    for n in [10usize, 20, 40] {
        let db = Database::new();
        db.execute(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
             disabled BOOL NOT NULL DEFAULT FALSE)",
        )
        .unwrap();
        db.execute(
            "CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id))",
        )
        .unwrap();
        db.execute("INSERT INTO users (name) VALUES ('bea')")
            .unwrap();
        for i in 0..n {
            db.execute(&format!(
                "INSERT INTO notes (user_id, body) VALUES (1, 'n{i}')"
            ))
            .unwrap();
        }
        let edna = Disguiser::new(db.clone());
        edna.register(
            DisguiseSpecBuilder::new("D")
                .user_scoped()
                .decorrelate("notes", Some("user_id = $UID"), "user_id", "users")
                .placeholder("users", "name", Generator::Random)
                .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
                .build()
                .unwrap(),
        )
        .unwrap();
        let report = edna.apply("D", Some(&Value::Int(1))).unwrap();
        assert_eq!(report.rows_decorrelated, n);
        counts.push((
            report.stats.rows_written as f64,
            report.stats.statements as f64,
        ));
    }
    // Doubling the object count should roughly double the rows written
    // (each note gets a placeholder insert plus an update)...
    let r1 = counts[1].0 / counts[0].0;
    let r2 = counts[2].0 / counts[1].0;
    assert!((1.6..=2.4).contains(&r1), "ratio {r1}");
    assert!((1.6..=2.4).contains(&r2), "ratio {r2}");
    // ...while batching keeps the *statement* count nearly flat: the
    // decorrelation issues one batched insert and one batched update
    // regardless of n.
    let s1 = counts[2].1 / counts[0].1;
    assert!(
        s1 < 1.5,
        "4x the objects must not cost 4x the statements under batching, got {s1}x"
    );
}

#[test]
fn tracer_emits_disguise_phase_spans() {
    let db = forum_db();
    let edna = Disguiser::new(db.clone());
    edna.register(scrub_spec()).unwrap();

    let tracer = edna_core::Tracer::new(4096);
    edna.set_tracer(Some(tracer.clone()));
    let report = edna.apply("Scrub", Some(&Value::Int(1))).unwrap();

    let spans = tracer.spans();
    let labels: Vec<&str> = spans.iter().map(|s| s.label.as_str()).collect();
    // The root phase span, with disguise/user attrs.
    let root = spans
        .iter()
        .find(|s| s.label == "disguise_apply")
        .expect("root span");
    assert!(root.parent.is_none());
    assert!(root
        .attrs
        .iter()
        .any(|(k, v)| k == "disguise" && v == "Scrub"));
    assert!(root.attrs.iter().any(|(k, v)| k == "user" && v == "1"));
    // Every disguise phase shows up.
    for phase in [
        "transform",
        "predicate_scan",
        "placeholder_gen",
        "transform_write",
        "assertions",
        "history_append",
        "vault_write",
    ] {
        assert!(labels.contains(&phase), "missing phase span {phase}");
    }
    // Transform spans carry table/kind attrs and nest under the root.
    let decorrelate = spans
        .iter()
        .find(|s| {
            s.label == "transform"
                && s.attrs
                    .iter()
                    .any(|(k, v)| k == "kind" && v == "decorrelate")
        })
        .expect("decorrelate transform span");
    assert_eq!(decorrelate.parent, Some(root.id));
    assert!(decorrelate.attrs.iter().any(|(k, _)| k == "table"));
    // The vault write nests storage spans (vault_put) beneath the phase.
    let vault_phase = spans.iter().find(|s| s.label == "vault_write").unwrap();
    let vault_put = spans
        .iter()
        .find(|s| s.label == "vault_put")
        .expect("vault_put span from the vault layer");
    assert_eq!(vault_put.parent, Some(vault_phase.id));
    // Engine statement spans appear under the root too.
    assert!(labels.contains(&"statement"));

    // Reveal emits its own phase spans.
    tracer.clear();
    edna.reveal(report.disguise_id).unwrap();
    let labels: Vec<String> = tracer.spans().iter().map(|s| s.label.clone()).collect();
    for phase in [
        "reveal",
        "reinsert",
        "restore_columns",
        "placeholder_gc",
        "reapply",
    ] {
        assert!(
            labels.iter().any(|l| l == phase),
            "missing reveal phase {phase}"
        );
    }

    // Detaching the tracer stops span collection everywhere.
    tracer.clear();
    edna.set_tracer(None);
    edna.apply("Scrub", Some(&Value::Int(2))).unwrap();
    assert!(tracer.spans().is_empty());
}

/// A forum database with `n` users, each owning one story and one comment
/// on it (enough structure that Scrub touches every table per user).
fn forum_db_with_users(n: usize) -> Database {
    let db = forum_db();
    // Users 1 and 2 exist already; grow the population.
    for i in 3..=n {
        db.execute(&format!(
            "INSERT INTO users (username, email) VALUES ('u{i}', 'u{i}@x.org')"
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO stories (user_id, title) VALUES ({i}, 'story {i}')"
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO comments (user_id, story_id, body) VALUES ({i}, 1, 'hi from {i}')"
        ))
        .unwrap();
    }
    db
}

#[test]
fn apply_many_disguises_every_user_in_parallel_shards() {
    let n = 40;
    let db = forum_db_with_users(n);
    let edna = disguiser(&db);
    let users: Vec<Value> = (1..=n as i64).map(Value::Int).collect();

    let report = edna.apply_many("Scrub", &users, 4).unwrap();
    assert_eq!(report.users, n);
    assert_eq!(report.succeeded, n, "failures: {:?}", report.failures);
    assert!(report.failures.is_empty());
    assert_eq!(report.shards, 4);
    assert_eq!(report.rows_removed, n, "one account row per user");
    assert_eq!(report.vault_entries, n, "one reveal entry per user");
    assert_eq!(report.degraded, 0);

    // Every account is gone; every contribution is decorrelated.
    for uid in 1..=n as i64 {
        assert!(db
            .execute(&format!("SELECT id FROM users WHERE id = {uid}"))
            .unwrap()
            .rows
            .is_empty());
        assert!(db
            .execute(&format!("SELECT id FROM stories WHERE user_id = {uid}"))
            .unwrap()
            .rows
            .is_empty());
    }
    // History recorded one application per user, and reveal still works.
    let event = edna
        .history()
        .latest("Scrub", &Value::Int(5))
        .unwrap()
        .expect("user 5 was disguised");
    assert!(event.reversible);
    edna.reveal(event.id).unwrap();
    assert_eq!(
        db.execute("SELECT username FROM users WHERE id = 5")
            .unwrap()
            .rows
            .len(),
        1,
        "revealed user 5 is back"
    );
}

#[test]
fn apply_many_matches_sequential_apply() {
    let n = 12;
    let seq_db = forum_db_with_users(n);
    let seq = disguiser(&seq_db);
    let par_db = forum_db_with_users(n);
    let par = disguiser(&par_db);
    let users: Vec<Value> = (1..=n as i64).map(Value::Int).collect();

    let mut seq_removed = 0;
    let mut seq_decorrelated = 0;
    let opts = ApplyOptions {
        use_transaction: false,
        ..ApplyOptions::default()
    };
    for u in &users {
        let r = seq.apply_with_options("Scrub", Some(u), opts).unwrap();
        seq_removed += r.rows_removed;
        seq_decorrelated += r.rows_decorrelated;
    }
    let many = par.apply_many("Scrub", &users, 3).unwrap();
    assert_eq!(many.rows_removed, seq_removed);
    assert_eq!(many.rows_decorrelated, seq_decorrelated);
    assert_eq!(
        seq_db.row_count("users").unwrap(),
        par_db.row_count("users").unwrap()
    );
    assert_eq!(
        seq_db.row_count("stories").unwrap(),
        par_db.row_count("stories").unwrap()
    );
}

#[test]
fn apply_many_reports_per_user_failures_and_continues() {
    let db = forum_db_with_users(6);
    // Only user 2 has zero karma; the karma-gated remove below leaves
    // everyone else's account behind, tripping their end-state assertion.
    db.execute("UPDATE users SET karma = 1 WHERE id <> 2")
        .unwrap();
    let edna = Disguiser::new(db.clone());
    edna.register(
        DisguiseSpecBuilder::new("Purge")
            .user_scoped()
            .decorrelate("stories", Some("user_id = $UID"), "user_id", "users")
            .decorrelate("comments", Some("user_id = $UID"), "user_id", "users")
            .remove("users", Some("id = $UID AND karma = 0"))
            .placeholder("users", "username", Generator::Random)
            .assert_empty("users", "id = $UID", "account removed")
            .build()
            .unwrap(),
    )
    .unwrap();
    let users: Vec<Value> = (1..=6).map(Value::Int).collect();
    let report = edna.apply_many("Purge", &users, 2).unwrap();
    assert_eq!(report.succeeded, 1, "only the zero-karma user purges");
    assert_eq!(report.failures.len(), 5);
    assert!(report
        .failures
        .iter()
        .all(|(_, msg)| msg.contains("account removed")));
    assert!(report.failures.iter().all(|(u, _)| *u != Value::Int(2)));
}

#[test]
fn apply_many_rejects_global_disguises() {
    let db = forum_db();
    let edna = Disguiser::new(db.clone());
    edna.register(
        DisguiseSpecBuilder::new("Decay")
            .remove("comments", Some("created_at < 100"))
            .build()
            .unwrap(),
    )
    .unwrap();
    let err = edna.apply_many("Decay", &[Value::Int(1)], 2).unwrap_err();
    assert!(matches!(err, Error::SpecInvalid { .. }), "got {err:?}");
}

#[test]
fn apply_many_clamps_shards_to_user_count() {
    let db = forum_db_with_users(3);
    let edna = disguiser(&db);
    let users = vec![Value::Int(3)];
    let report = edna.apply_many("Scrub", &users, 64).unwrap();
    assert_eq!(report.shards, 1);
    assert_eq!(report.succeeded, 1);
}
