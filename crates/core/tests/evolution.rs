//! Schema evolution scenarios (paper §7: "more research is required to
//! handle updates to the application schema or disguise specifications in
//! a system that has already applied disguises").

use edna_core::spec::{DisguiseSpecBuilder, Generator, Modifier};
use edna_core::Disguiser;
use edna_relational::{Database, Value};

fn db() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
         disabled BOOL NOT NULL DEFAULT FALSE);
         CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
         body TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
    )
    .unwrap();
    db.execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")
        .unwrap();
    db.execute("INSERT INTO posts (user_id, body) VALUES (1, 'a'), (1, 'b'), (2, 'c')")
        .unwrap();
    db
}

fn scrub() -> edna_core::DisguiseSpec {
    DisguiseSpecBuilder::new("Scrub")
        .user_scoped()
        .decorrelate("posts", Some("user_id = $UID"), "user_id", "users")
        .remove("users", Some("id = $UID"))
        .placeholder("users", "name", Generator::Random)
        .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
        .build()
        .unwrap()
}

#[test]
fn reveal_after_add_column_adapts_rows() {
    let db = db();
    let edna = Disguiser::new(db.clone());
    edna.register(scrub()).unwrap();
    let report = edna.apply("Scrub", Some(&Value::Int(1))).unwrap();

    // The application evolves: users gain a karma column.
    db.execute("ALTER TABLE users ADD COLUMN karma INT NOT NULL DEFAULT 7")
        .unwrap();

    let reveal = edna.reveal(report.disguise_id).unwrap();
    assert!(
        reveal.rows_schema_adapted > 0,
        "the reinserted user row was adapted"
    );
    let r = db
        .execute("SELECT name, karma FROM users WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Text("bea".into()));
    assert_eq!(
        r.rows[0][1],
        Value::Int(7),
        "added column takes its default"
    );
    // Her posts point back at her.
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM posts WHERE user_id = 1")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(2)
    );
}

#[test]
fn reveal_after_drop_column_discards_stale_values() {
    let db = db();
    let edna = Disguiser::new(db.clone());
    edna.register(
        DisguiseSpecBuilder::new("RedactAndDelete")
            .user_scoped()
            .modify("posts", Some("user_id = $UID"), "body", Modifier::Redact)
            .decorrelate("posts", Some("user_id = $UID"), "user_id", "users")
            .remove("users", Some("id = $UID"))
            .placeholder("users", "name", Generator::Random)
            .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
            .build()
            .unwrap(),
    )
    .unwrap();
    // Give mel's post to bea first, so removing user 2 touches no posts
    // and the decorrelation matches zero rows.
    db.execute("UPDATE posts SET user_id = 1 WHERE user_id = 2")
        .unwrap();
    let report = edna.apply("RedactAndDelete", Some(&Value::Int(2))).unwrap();
    assert_eq!(report.rows_removed, 1);

    // The schema evolves: posts lose the body column entirely.
    db.execute("ALTER TABLE posts DROP COLUMN body").unwrap();

    let reveal = edna.reveal(report.disguise_id).unwrap();
    // The user row comes back; the recorded body restores are dropped.
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM users WHERE id = 2")
            .unwrap()
            .scalar()
            .unwrap(),
        &Value::Int(1)
    );
    assert_eq!(reveal.rows_reinserted, 1);
}

#[test]
fn revalidate_flags_broken_specs_after_evolution() {
    let db = db();
    let edna = Disguiser::new(db.clone());
    edna.register(scrub()).unwrap();
    assert!(edna.revalidate().is_empty(), "fresh schema validates");

    // Renaming the predicate column breaks the registered spec.
    db.execute("ALTER TABLE posts RENAME COLUMN user_id TO author_id")
        .unwrap();
    let failures = edna.revalidate();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].0, "Scrub");
    let msg = failures[0].1.to_string();
    assert!(
        msg.contains("user_id"),
        "failure names the missing column: {msg}"
    );

    // Applying the stale spec fails cleanly rather than corrupting data.
    let before = db.dump();
    assert!(edna.apply("Scrub", Some(&Value::Int(1))).is_err());
    assert_eq!(db.dump(), before);

    // Re-registering an updated spec fixes it.
    let updated = DisguiseSpecBuilder::new("Scrub")
        .user_scoped()
        .decorrelate("posts", Some("author_id = $UID"), "author_id", "users")
        .remove("users", Some("id = $UID"))
        .placeholder("users", "name", Generator::Random)
        .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
        .build()
        .unwrap();
    edna.register(updated).unwrap();
    assert!(edna.revalidate().is_empty());
    edna.apply("Scrub", Some(&Value::Int(1))).unwrap();
}

#[test]
fn disguise_after_schema_growth_covers_new_column() {
    // A disguise registered *after* evolution naturally covers new
    // columns; reveal round-trips through them.
    let db = db();
    db.execute("ALTER TABLE users ADD COLUMN email TEXT")
        .unwrap();
    db.execute("UPDATE users SET email = 'bea@uni.edu' WHERE id = 1")
        .unwrap();
    let edna = Disguiser::new(db.clone());
    edna.register(
        DisguiseSpecBuilder::new("ScrubEmail")
            .user_scoped()
            .modify("users", Some("id = $UID"), "email", Modifier::SetNull)
            .build()
            .unwrap(),
    )
    .unwrap();
    let report = edna.apply("ScrubEmail", Some(&Value::Int(1))).unwrap();
    assert_eq!(report.rows_modified, 1);
    assert!(db
        .execute("SELECT email FROM users WHERE id = 1")
        .unwrap()
        .rows[0][0]
        .is_null());
    edna.reveal(report.disguise_id).unwrap();
    assert_eq!(
        db.execute("SELECT email FROM users WHERE id = 1")
            .unwrap()
            .rows[0][0],
        Value::Text("bea@uni.edu".into())
    );
}
