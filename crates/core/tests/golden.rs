//! Golden-file tests for diagnostic rendering: the exact rustc-style
//! text and the exact JSON report for representative findings from every
//! analyze pass. A rendering change must come with an intentional golden
//! update (`UPDATE_GOLDENS=1 cargo test -p edna-core --test golden`),
//! which makes accidental diagnostic drift show up in review.

use std::path::PathBuf;

use edna_core::{
    analyze::{analyze_spec, codes},
    audit_workspace, render_json_report, render_report, DisguiseSpec, DisguiseSpecBuilder,
    ExpirationPolicy, Modifier, Policy, Severity,
};
use edna_relational::Database;

fn golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "rendering drifted from tests/golden/{name}; if intentional, \
         regenerate with UPDATE_GOLDENS=1"
    );
}

fn forum_db() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT PII, \
           age INT, last_login INT NOT NULL DEFAULT 0);
         CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
           body TEXT PII, created INT NOT NULL DEFAULT 0, \
           FOREIGN KEY (user_id) REFERENCES users(id));",
    )
    .unwrap();
    db
}

/// Asserts the report has at least one error and one warning — every
/// golden exercises both renderer shapes.
fn assert_mixed(diags: &[edna_core::Diagnostic]) {
    assert!(
        diags.iter().any(|d| d.severity == Severity::Error),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.severity == Severity::Warning),
        "{diags:?}"
    );
}

#[test]
fn typeck_findings_render_stably() {
    // E001 (INT column compared with TEXT) + W001 (constant-false guard).
    let db = forum_db();
    let spec = DisguiseSpecBuilder::new("Sloppy")
        .modify("users", Some("age = 'old'"), "age", Modifier::SetNull)
        .modify("users", Some("1 = 0"), "name", Modifier::Redact)
        .build()
        .unwrap();
    let diags = analyze_spec(&spec, &db, &[]);
    assert_mixed(&diags);
    assert!(diags.iter().any(|d| d.code == codes::TYPE_MISMATCH));
    assert!(diags.iter().any(|d| d.code == codes::ALWAYS_FALSE));
    golden("typeck.txt", &render_report(&diags));
}

#[test]
fn refsafety_and_pii_findings_render_stably() {
    // E010 (removing users orphans posts) + W040 (posts.body PII left
    // untouched by a spec that transforms posts).
    let db = forum_db();
    let spec = DisguiseSpecBuilder::new("Heavy")
        .user_scoped()
        .remove("users", Some("id = $UID"))
        .modify(
            "posts",
            Some("user_id = $UID"),
            "created",
            Modifier::SetNull,
        )
        .build()
        .unwrap();
    let diags = analyze_spec(&spec, &db, &[]);
    assert_mixed(&diags);
    assert!(diags.iter().any(|d| d.code == codes::ORPHANING_REMOVE));
    assert!(diags.iter().any(|d| d.code == codes::PII_GAP));
    golden("refsafety_pii.txt", &render_report(&diags));
}

#[test]
fn composition_findings_render_stably() {
    // W020 (Remove after a prior Decorrelate is lossy) + E001 from the
    // same spec, so the report mixes severities.
    let db = forum_db();
    let prior = DisguiseSpecBuilder::new("First")
        .user_scoped()
        .irreversible()
        .decorrelate("posts", Some("user_id = $UID"), "user_id", "users")
        .build()
        .unwrap();
    let spec = DisguiseSpecBuilder::new("Second")
        .user_scoped()
        .remove("posts", Some("user_id = $UID"))
        .modify("users", Some("age = 'old'"), "age", Modifier::SetNull)
        .build()
        .unwrap();
    let diags = analyze_spec(&spec, &db, &[&prior]);
    assert_mixed(&diags);
    assert!(diags
        .iter()
        .any(|d| d.code == codes::LOSSY_REMOVE_AFTER_DECORRELATE));
    golden("composition.txt", &render_report(&diags));
}

fn audit_fixture() -> (Database, Vec<DisguiseSpec>, Vec<Policy>) {
    let db = forum_db();
    let keep = DisguiseSpecBuilder::new("Vault-Trap-Keep")
        .user_scoped()
        .remove("posts", Some("user_id = $UID"))
        .build()
        .unwrap();
    let purge = DisguiseSpecBuilder::new("Vault-Trap-Purge")
        .user_scoped()
        .irreversible()
        .remove("posts", Some("user_id = $UID"))
        .remove("users", Some("id = $UID"))
        .build()
        .unwrap();
    let policy = Policy::Expiration(ExpirationPolicy {
        name: "reap-inactive".to_string(),
        disguise: "Vault-Trap-Purge".to_string(),
        inactive_after: 3600,
        user_query: "SELECT id FROM users WHERE last_login < $CUTOFF".to_string(),
        cadence: 600,
    });
    (db, vec![keep, purge], vec![policy])
}

#[test]
fn audit_findings_render_stably() {
    // E050/E051 (orphaned vault entry in one interleaving) + W053 (an
    // expiration policy driving an irreversible disguise).
    let (db, specs, policies) = audit_fixture();
    let diags = audit_workspace(&db, &specs, &policies);
    assert_mixed(&diags);
    assert!(diags.iter().any(|d| d.code == codes::REVEAL_UNREACHABLE));
    assert!(diags.iter().any(|d| d.code == codes::VAULT_ORPHANED));
    assert!(diags
        .iter()
        .any(|d| d.code == codes::IRREVERSIBLE_EXPIRATION));
    golden("audit.txt", &render_report(&diags));
}

#[test]
fn audit_json_report_is_stable_and_round_trips() {
    let (db, specs, policies) = audit_fixture();
    let diags = audit_workspace(&db, &specs, &policies);
    let reports = vec![("workspace".to_string(), diags.clone())];
    let json = render_json_report("edna audit", &reports);
    golden("audit.json", &json);

    // Round trip: the rendered JSON parses, and every diagnostic object
    // deserializes back to exactly the original Diagnostic.
    let parsed = edna_obs::json::parse(&json).expect("report is valid JSON");
    let obj = parsed.as_obj().unwrap();
    assert_eq!(obj.get("tool").and_then(|v| v.as_str()), Some("edna audit"));
    let rendered = obj.get("reports").unwrap().as_arr().unwrap();
    assert_eq!(rendered.len(), 1);
    let body = rendered[0].as_obj().unwrap();
    assert_eq!(
        body.get("subject").and_then(|v| v.as_str()),
        Some("workspace")
    );
    let arr = body.get("diagnostics").unwrap().as_arr().unwrap();
    assert_eq!(arr.len(), diags.len());
    for (json_diag, original) in arr.iter().zip(&diags) {
        let back =
            edna_core::Diagnostic::from_json(json_diag).expect("diagnostic object deserializes");
        assert_eq!(&back, original);
    }
    let summary = obj.get("summary").unwrap().as_obj().unwrap();
    let errors = summary.get("errors").and_then(|v| v.as_num()).unwrap() as usize;
    assert_eq!(
        errors,
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    );
}
