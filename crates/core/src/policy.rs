//! Automatic privacy policies: expiration and data decay (paper §2).
//!
//! - **Expiration**: "Data expiration policies could proactively anonymize
//!   or sanitize user contributions for long-inactive users." An
//!   [`ExpirationPolicy`] finds inactive users with a developer-provided
//!   query and applies a (reversible, so returning users can undo it)
//!   user-scoped disguise to each.
//! - **Data decay**: "Gradual data decay policies could apply increasingly
//!   strict privacy transformations over time, aging out sensitive but
//!   outdated user data." A [`DecayPolicy`] is a ladder of global disguises
//!   whose predicates reference `NOW()`; re-running them advances the decay
//!   frontier as the (logical) clock moves.
//!
//! The [`Scheduler`] drives policies from the database's logical clock, so
//! tests and benchmarks can fast-forward time deterministically — and,
//! under `edna serve`, the decay daemon drives the same scheduler from the
//! wall clock while foreground traffic flows. Three properties make that
//! safe:
//!
//! - **Scoped clock**: a run evaluates its `NOW()` predicates under a
//!   thread-local [`edna_relational::clock::scoped`] override instead of
//!   mutating the engine's global clock, so concurrent statements on other
//!   threads never observe the daemon's timestamp.
//! - **Interior mutability**: `tick` takes `&self` (`last_run` sits behind
//!   a mutex), so one `Scheduler` can be shared by a `Send + Sync`
//!   service.
//! - **Durable progress**: each run is bracketed in WAL
//!   policy-start/policy-end markers, and a policy's last-run stamp is
//!   persisted to `_edna_policy_registry` only when its run *completes* —
//!   a crash (or an exhausted row budget) leaves the policy due, so it
//!   re-fires and resumes on the next tick instead of being silently
//!   skipped (or, before this existed, re-fired from scratch on every
//!   restart).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use edna_relational::Value;
use edna_util::sync::lock_unpoisoned;

use crate::apply::{ApplyOptions, DisguiseReport, Disguiser};
use crate::error::{Error, Result};

/// Applies a user-scoped disguise to users inactive for too long.
#[derive(Debug, Clone)]
pub struct ExpirationPolicy {
    /// Policy name (for scheduling and reports).
    pub name: String,
    /// The user-scoped disguise to apply (must be registered).
    pub disguise: String,
    /// Inactivity threshold in logical seconds.
    pub inactive_after: i64,
    /// Query returning the ids of users inactive since `$CUTOFF`, e.g.
    /// `SELECT id FROM users WHERE last_login < $CUTOFF`.
    pub user_query: String,
    /// How often (logical seconds) the policy runs.
    pub cadence: i64,
}

impl ExpirationPolicy {
    /// Runs the policy at logical time `now`: disguises every inactive user
    /// without an active application of the disguise. Returns one report
    /// per newly disguised user.
    pub fn run(&self, edna: &Disguiser, now: i64) -> Result<Vec<DisguiseReport>> {
        self.run_budgeted(edna, now, None)
            .map(|(reports, _)| reports)
    }

    /// Like [`ExpirationPolicy::run`], but stops once roughly `budget`
    /// rows have been transformed. Each user is disguised atomically (a
    /// user is never left half-expired), so the bound is on *users whose
    /// rows fit the remaining budget*, charging at least one row per
    /// user. Returns the reports and whether the run completed; skipped
    /// users stay eligible (the history idempotence check is what makes
    /// the resume correct) and are picked up by the next run.
    pub fn run_budgeted(
        &self,
        edna: &Disguiser,
        now: i64,
        budget: Option<usize>,
    ) -> Result<(Vec<DisguiseReport>, bool)> {
        // Evaluate this run's statements at the tick's timestamp without
        // touching the engine's global clock (other threads keep their
        // own view of NOW()).
        let _clock = edna_relational::clock::scoped(now);
        let mut params = HashMap::new();
        params.insert("CUTOFF".to_string(), Value::Int(now - self.inactive_after));
        let result = edna
            .database()
            .execute_with_params(&self.user_query, &params)
            .map_err(Error::Relational)?;
        let mut reports = Vec::new();
        let mut remaining = budget;
        let mut complete = true;
        for row in result.rows {
            let user = row.first().cloned().unwrap_or(Value::Null);
            if user.is_null() {
                continue;
            }
            // Idempotence: skip users already under this disguise.
            if edna.history().latest(&self.disguise, &user)?.is_some() {
                continue;
            }
            if remaining == Some(0) {
                complete = false;
                break;
            }
            let report = edna.apply(&self.disguise, Some(&user))?;
            if let Some(b) = remaining.as_mut() {
                *b = b.saturating_sub(rows_touched(&report).max(1));
            }
            reports.push(report);
        }
        Ok((reports, complete))
    }
}

/// One rung of a decay ladder.
#[derive(Debug, Clone)]
pub struct DecayStage {
    /// The global disguise to apply (its predicates should reference
    /// `NOW()` so the affected window advances with the clock).
    pub disguise: String,
}

/// Applies increasingly strict global disguises as data ages.
#[derive(Debug, Clone)]
pub struct DecayPolicy {
    /// Policy name.
    pub name: String,
    /// Stages, applied in order on every run.
    pub stages: Vec<DecayStage>,
    /// How often (logical seconds) the policy runs.
    pub cadence: i64,
}

impl DecayPolicy {
    /// Runs every stage at logical time `now`. `NOW()` predicates see
    /// `now` through a thread-scoped clock override — the engine's global
    /// clock (and every other thread's view of it) is untouched.
    pub fn run(&self, edna: &Disguiser, now: i64) -> Result<Vec<DisguiseReport>> {
        self.run_budgeted(edna, now, None)
            .map(|(reports, _)| reports)
    }

    /// Like [`DecayPolicy::run`], but transforms at most roughly `budget`
    /// rows, pausing mid-ladder when it runs out (later stages — and the
    /// paused stage's untouched rows — are picked up when the policy
    /// re-fires). Returns the reports and whether the run completed.
    pub fn run_budgeted(
        &self,
        edna: &Disguiser,
        now: i64,
        budget: Option<usize>,
    ) -> Result<(Vec<DisguiseReport>, bool)> {
        let _clock = edna_relational::clock::scoped(now);
        let mut reports = Vec::new();
        let mut remaining = budget;
        for stage in &self.stages {
            if remaining == Some(0) {
                return Ok((reports, false));
            }
            let opts = ApplyOptions {
                row_budget: remaining,
                ..ApplyOptions::default()
            };
            let report = edna.apply_with_options(&stage.disguise, None, opts)?;
            let exhausted = report.budget_exhausted;
            if let Some(b) = remaining.as_mut() {
                *b = b.saturating_sub(rows_touched(&report));
            }
            reports.push(report);
            if exhausted {
                return Ok((reports, false));
            }
        }
        Ok((reports, true))
    }
}

/// Database rows a report says the application transformed (the unit the
/// scheduler's row budget is charged in).
fn rows_touched(report: &DisguiseReport) -> usize {
    report.rows_removed + report.rows_decorrelated + report.rows_modified
}

/// A scheduled privacy policy.
#[derive(Debug, Clone)]
pub enum Policy {
    /// Expiration of inactive users.
    Expiration(ExpirationPolicy),
    /// Data decay ladder.
    Decay(DecayPolicy),
}

impl Policy {
    /// The policy's name.
    pub fn name(&self) -> &str {
        match self {
            Policy::Expiration(p) => &p.name,
            Policy::Decay(p) => &p.name,
        }
    }

    /// The policy's cadence in logical seconds.
    pub fn cadence(&self) -> i64 {
        match self {
            Policy::Expiration(p) => p.cadence,
            Policy::Decay(p) => p.cadence,
        }
    }
}

/// What one policy run inside a tick did.
#[derive(Debug)]
pub struct PolicyRun {
    /// The policy's name.
    pub policy: String,
    /// Reports of the disguises the run applied.
    pub reports: Vec<DisguiseReport>,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Whether the run completed. An incomplete (budget-paused) run does
    /// *not* advance the policy's last-run stamp: the policy stays due
    /// and resumes on the next tick.
    pub complete: bool,
}

/// What one [`Scheduler::tick_budgeted`] call did.
#[derive(Debug, Default)]
pub struct TickOutcome {
    /// One entry per policy that fired, in registration order.
    pub runs: Vec<PolicyRun>,
    /// Expired vault entries purged at the tick's timestamp.
    pub purged: usize,
}

impl TickOutcome {
    /// Flattens the tick into the disguise reports it produced.
    pub fn into_reports(self) -> Vec<DisguiseReport> {
        self.runs.into_iter().flat_map(|r| r.reports).collect()
    }
}

/// Drives policies from the logical clock. Shareable across threads
/// (`tick` takes `&self`); the decay daemon and a foreground caller can
/// hold the same scheduler, with external serialization (the server's
/// door lock) deciding who ticks.
pub struct Scheduler {
    policies: Vec<Policy>,
    last_run: Mutex<HashMap<String, i64>>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler {
            policies: Vec::new(),
            last_run: Mutex::new(HashMap::new()),
        }
    }

    /// Adds a policy.
    pub fn add(&mut self, policy: Policy) {
        self.policies.push(policy);
    }

    /// The scheduled policies, in registration order (the audit walks
    /// these).
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// Seeds a policy's last-run stamp (from the persisted registry
    /// column) without running anything — how a restarted server avoids
    /// re-firing every policy immediately.
    pub fn seed_last_run(&self, policy: &str, last: i64) {
        lock_unpoisoned(&self.last_run).insert(policy.to_string(), last);
    }

    /// A snapshot of the per-policy last-run stamps (policies that never
    /// completed a run are absent).
    pub fn last_runs(&self) -> HashMap<String, i64> {
        lock_unpoisoned(&self.last_run).clone()
    }

    /// Runs every policy whose cadence has elapsed at logical time `now`
    /// and purges expired vault entries. Returns the reports of all
    /// disguises applied. Equivalent to [`Scheduler::tick_budgeted`] with
    /// no row budget.
    pub fn tick(&self, edna: &Disguiser, now: i64) -> Result<Vec<DisguiseReport>> {
        self.tick_budgeted(edna, now, None)
            .map(TickOutcome::into_reports)
    }

    /// Runs every due policy at logical time `now`, transforming at most
    /// roughly `budget` rows across the whole tick, then purges expired
    /// vault entries.
    ///
    /// Each policy run is bracketed in WAL policy-start/policy-end
    /// markers, so a crash mid-run is visible to `recover --verify` (and
    /// benign: the disguises inside the run carry their own intent/commit
    /// brackets). A policy's last-run stamp — in memory and, when the
    /// workspace registry table exists, persisted in
    /// `_edna_policy_registry` — advances only when its run completes, so
    /// both budget-paused and crash-interrupted runs re-fire and resume
    /// on the next tick.
    pub fn tick_budgeted(
        &self,
        edna: &Disguiser,
        now: i64,
        budget: Option<usize>,
    ) -> Result<TickOutcome> {
        let mut outcome = TickOutcome::default();
        let mut remaining = budget;
        let db = edna.database();
        for policy in &self.policies {
            let due = match lock_unpoisoned(&self.last_run).get(policy.name()) {
                Some(last) => now - last >= policy.cadence(),
                None => true,
            };
            if !due {
                continue;
            }
            if remaining == Some(0) {
                // Tick budget spent: later due policies wait for the next
                // tick (their last-run stamps are untouched, so they stay
                // due).
                break;
            }
            db.wal_policy_start(policy.name(), now)
                .map_err(Error::Relational)?;
            let started = Instant::now();
            let (reports, complete) = match policy {
                Policy::Expiration(p) => p.run_budgeted(edna, now, remaining)?,
                Policy::Decay(p) => p.run_budgeted(edna, now, remaining)?,
            };
            db.wal_policy_end(policy.name())
                .map_err(Error::Relational)?;
            if let Some(b) = remaining.as_mut() {
                let used: usize = reports.iter().map(rows_touched).sum();
                *b = b.saturating_sub(used);
            }
            if complete {
                lock_unpoisoned(&self.last_run).insert(policy.name().to_string(), now);
                self.persist_last_run(edna, policy.name(), now)?;
            }
            outcome.runs.push(PolicyRun {
                policy: policy.name().to_string(),
                reports,
                duration: started.elapsed(),
                complete,
            });
        }
        outcome.purged = edna.purge_expired(now)?;
        Ok(outcome)
    }

    /// Writes a completed run's stamp to the workspace's policy registry
    /// (no-op outside a workspace: ad-hoc schedulers in tests and library
    /// use have no registry table, and a registered name that does not
    /// match any row updates nothing).
    fn persist_last_run(&self, edna: &Disguiser, policy: &str, now: i64) -> Result<()> {
        let db = edna.database();
        if !db.has_table(crate::workspace::POLICY_REGISTRY_TABLE) {
            return Ok(());
        }
        let mut params = HashMap::new();
        params.insert("LAST".to_string(), Value::Int(now));
        params.insert("NAME".to_string(), Value::Text(policy.to_string()));
        db.execute_with_params(
            &format!(
                "UPDATE {} SET last_run = $LAST WHERE name = $NAME",
                crate::workspace::POLICY_REGISTRY_TABLE
            ),
            &params,
        )
        .map_err(Error::Relational)?;
        Ok(())
    }
}

/// Parses the policy text DSL, the scheduling counterpart of the spec
/// DSL (same `key: value` surface; `#` starts a line comment):
///
/// ```text
/// policy_name: "aging"
/// kind: decay
/// cadence: 60
/// stages: [ "CommentBlur", "CommentScrub" ]
/// ```
///
/// ```text
/// policy_name: "expire-idle"
/// kind: expiration
/// cadence: 120
/// disguise: "Expire"
/// inactive_after: 500
/// user_query: "SELECT id FROM users WHERE last_login < $CUTOFF"
/// ```
///
/// Syntax problems report [`Error::SpecParse`] with the line; semantic
/// problems (missing keys, bad kind) report [`Error::SpecInvalid`].
/// Whether the referenced disguises exist and have the right scope is
/// *not* checked here — that is the audit's `E053`.
pub fn parse_policy(src: &str) -> Result<Policy> {
    let mut name = None;
    let mut kind = None;
    let mut cadence = None;
    let mut stages: Option<Vec<DecayStage>> = None;
    let mut disguise = None;
    let mut inactive_after = None;
    let mut user_query = None;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_policy_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line.split_once(':').ok_or(Error::SpecParse {
            line: line_no,
            message: format!("expected `key: value`, got `{line}`"),
        })?;
        let key = key.trim();
        let value = value.trim().trim_end_matches(',');
        let parse_err = |message: String| Error::SpecParse {
            line: line_no,
            message,
        };
        match key {
            "policy_name" => {
                name = Some(unquote(value).ok_or_else(|| {
                    parse_err(format!(
                        "policy_name must be a quoted string, got `{value}`"
                    ))
                })?)
            }
            "kind" => kind = Some(value.to_string()),
            "cadence" => {
                cadence =
                    Some(value.parse::<i64>().map_err(|_| {
                        parse_err(format!("cadence must be an integer, got `{value}`"))
                    })?)
            }
            "stages" => {
                let inner = value
                    .strip_prefix('[')
                    .and_then(|v| v.strip_suffix(']'))
                    .ok_or_else(|| {
                        parse_err(format!("stages must be `[ \"A\", \"B\" ]`, got `{value}`"))
                    })?;
                let mut list = Vec::new();
                for part in inner.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    let disguise = unquote(part).ok_or_else(|| {
                        parse_err(format!("stage names must be quoted, got `{part}`"))
                    })?;
                    list.push(DecayStage { disguise });
                }
                stages = Some(list);
            }
            "disguise" => {
                disguise = Some(unquote(value).ok_or_else(|| {
                    parse_err(format!("disguise must be a quoted string, got `{value}`"))
                })?)
            }
            "inactive_after" => {
                inactive_after = Some(value.parse::<i64>().map_err(|_| {
                    parse_err(format!("inactive_after must be an integer, got `{value}`"))
                })?)
            }
            "user_query" => {
                user_query = Some(unquote(value).ok_or_else(|| {
                    parse_err(format!("user_query must be a quoted string, got `{value}`"))
                })?)
            }
            other => {
                return Err(parse_err(format!("unknown policy key `{other}`")));
            }
        }
    }
    let name = name.ok_or_else(|| invalid("<policy>", "missing `policy_name:`"))?;
    let invalid_here = |message: &str| invalid(&name, message);
    let cadence = cadence.ok_or_else(|| invalid_here("missing `cadence:`"))?;
    if cadence <= 0 {
        return Err(invalid_here("cadence must be positive"));
    }
    match kind.as_deref() {
        Some("decay") => {
            let stages = stages.ok_or_else(|| invalid_here("decay policies need `stages:`"))?;
            if stages.is_empty() {
                return Err(invalid_here("decay policies need at least one stage"));
            }
            Ok(Policy::Decay(DecayPolicy {
                name,
                stages,
                cadence,
            }))
        }
        Some("expiration") => {
            let disguise =
                disguise.ok_or_else(|| invalid_here("expiration policies need `disguise:`"))?;
            let inactive_after = inactive_after
                .ok_or_else(|| invalid_here("expiration policies need `inactive_after:`"))?;
            let user_query =
                user_query.ok_or_else(|| invalid_here("expiration policies need `user_query:`"))?;
            if !user_query.contains("$CUTOFF") {
                return Err(invalid_here("user_query must reference $CUTOFF"));
            }
            Ok(Policy::Expiration(ExpirationPolicy {
                name,
                disguise,
                inactive_after,
                user_query,
                cadence,
            }))
        }
        Some(other) => Err(invalid_here(&format!(
            "kind must be `decay` or `expiration`, got `{other}`"
        ))),
        None => Err(invalid_here("missing `kind:`")),
    }
}

/// Whether `src` looks like the policy DSL rather than the spec DSL
/// (used by `edna register` to route a file to the right parser).
pub fn is_policy_source(src: &str) -> bool {
    src.lines()
        .map(strip_policy_comment)
        .find(|l| !l.trim().is_empty())
        .map(|l| l.trim_start().starts_with("policy_name"))
        .unwrap_or(false)
}

fn invalid(name: &str, message: &str) -> Error {
    Error::SpecInvalid {
        disguise: name.to_string(),
        message: message.to_string(),
    }
}

/// Strips a `#` comment, respecting double- and single-quoted strings.
fn strip_policy_comment(line: &str) -> String {
    let mut out = String::new();
    let mut quote: Option<char> = None;
    for c in line.chars() {
        match (c, quote) {
            ('#', None) => break,
            ('"', None) | ('\'', None) => quote = Some(c),
            (c, Some(q)) if c == q => quote = None,
            _ => {}
        }
        out.push(c);
    }
    out
}

/// Removes matching surrounding quotes, if any.
fn unquote(s: &str) -> Option<String> {
    let s = s.trim();
    for q in ['"', '\''] {
        if let Some(inner) = s.strip_prefix(q).and_then(|v| v.strip_suffix(q)) {
            return Some(inner.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DisguiseSpecBuilder, Modifier};
    use edna_relational::Database;

    fn setup() -> (Database, Disguiser) {
        let db = Database::new();
        db.execute(
            "CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, body TEXT, \
             created_at INT NOT NULL DEFAULT 0)",
        )
        .unwrap();
        db.execute("INSERT INTO notes (body, created_at) VALUES ('old', 0), ('new', 900)")
            .unwrap();
        let edna = Disguiser::new(db.clone());
        edna.register(
            DisguiseSpecBuilder::new("TruncOld")
                .irreversible()
                .modify(
                    "notes",
                    Some("created_at < NOW() - 500"),
                    "body",
                    Modifier::Truncate(1),
                )
                .build()
                .unwrap(),
        )
        .unwrap();
        (db, edna)
    }

    #[test]
    fn policy_dsl_parses_decay() {
        let p = parse_policy(
            "# age out comment bodies\n\
             policy_name: \"aging\"\n\
             kind: decay\n\
             cadence: 60\n\
             stages: [ \"CommentBlur\", \"CommentScrub\" ]\n",
        )
        .unwrap();
        match p {
            Policy::Decay(d) => {
                assert_eq!(d.name, "aging");
                assert_eq!(d.cadence, 60);
                let names: Vec<_> = d.stages.iter().map(|s| s.disguise.as_str()).collect();
                assert_eq!(names, vec!["CommentBlur", "CommentScrub"]);
            }
            other => panic!("not decay: {other:?}"),
        }
    }

    #[test]
    fn policy_dsl_parses_expiration() {
        let p = parse_policy(
            "policy_name: \"expire-idle\"\n\
             kind: expiration\n\
             cadence: 120\n\
             disguise: \"Expire\"\n\
             inactive_after: 500\n\
             user_query: \"SELECT id FROM users WHERE last_login < $CUTOFF\"\n",
        )
        .unwrap();
        match p {
            Policy::Expiration(e) => {
                assert_eq!(e.disguise, "Expire");
                assert_eq!(e.inactive_after, 500);
                assert!(e.user_query.contains("$CUTOFF"));
            }
            other => panic!("not expiration: {other:?}"),
        }
    }

    #[test]
    fn policy_dsl_rejects_malformed_input() {
        // Syntax: line numbers on parse errors.
        let err = parse_policy("policy_name: aging\n").unwrap_err();
        assert!(matches!(err, Error::SpecParse { line: 1, .. }), "{err:?}");
        // Semantics: missing keys, bad kind, dead cadence.
        for (src, needle) in [
            ("kind: decay\ncadence: 1\nstages: [\"A\"]", "policy_name"),
            ("policy_name: \"p\"\ncadence: 1", "kind"),
            ("policy_name: \"p\"\nkind: decay\ncadence: 1", "stages"),
            (
                "policy_name: \"p\"\nkind: decay\ncadence: 0\nstages: [\"A\"]",
                "positive",
            ),
            (
                "policy_name: \"p\"\nkind: expiration\ncadence: 1\ndisguise: \"D\"\n\
                 inactive_after: 5\nuser_query: \"SELECT id FROM users\"",
                "$CUTOFF",
            ),
            ("policy_name: \"p\"\nkind: seesaw\ncadence: 1", "decay"),
        ] {
            let err = parse_policy(src).unwrap_err();
            assert!(err.to_string().contains(needle), "{src}: {err}");
        }
    }

    #[test]
    fn policy_sources_are_recognized() {
        assert!(is_policy_source("# c\npolicy_name: \"p\"\n"));
        assert!(!is_policy_source("disguise_name: \"d\"\n"));
        assert!(!is_policy_source(""));
    }

    #[test]
    fn scheduler_respects_cadence() {
        let (_db, edna) = setup();
        let mut sched = Scheduler::new();
        sched.add(Policy::Decay(DecayPolicy {
            name: "d".to_string(),
            stages: vec![DecayStage {
                disguise: "TruncOld".to_string(),
            }],
            cadence: 100,
        }));
        // First tick always fires.
        assert_eq!(sched.tick(&edna, 1000).unwrap().len(), 1);
        // Within the cadence window: nothing.
        assert!(sched.tick(&edna, 1050).unwrap().is_empty());
        // Past it: fires again.
        assert_eq!(sched.tick(&edna, 1101).unwrap().len(), 1);
    }

    #[test]
    fn decay_window_advances_with_the_clock() {
        let (db, edna) = setup();
        let policy = DecayPolicy {
            name: "d".to_string(),
            stages: vec![DecayStage {
                disguise: "TruncOld".to_string(),
            }],
            cadence: 1,
        };
        // At t=600 only the t=0 note is older than 500.
        policy.run(&edna, 600).unwrap();
        let rows = db
            .execute("SELECT body FROM notes ORDER BY id")
            .unwrap()
            .rows;
        assert_eq!(rows[0][0].to_string(), "o");
        assert_eq!(rows[1][0].to_string(), "new");
        // At t=1500 the second note ages into the window.
        policy.run(&edna, 1500).unwrap();
        let rows = db
            .execute("SELECT body FROM notes ORDER BY id")
            .unwrap()
            .rows;
        assert_eq!(rows[1][0].to_string(), "n");
    }

    #[test]
    fn budgeted_tick_pauses_and_resumes_without_advancing_the_stamp() {
        let (db, edna) = setup();
        // Four decayable notes; a budget of 2 rows per tick needs two
        // ticks to drain them.
        db.execute(
            "INSERT INTO notes (body, created_at) VALUES ('oldc', 0), ('oldd', 0), ('olde', 0)",
        )
        .unwrap();
        let mut sched = Scheduler::new();
        sched.add(Policy::Decay(DecayPolicy {
            name: "d".to_string(),
            stages: vec![DecayStage {
                disguise: "TruncOld".to_string(),
            }],
            cadence: 100,
        }));
        let out = sched.tick_budgeted(&edna, 1000, Some(2)).unwrap();
        assert_eq!(out.runs.len(), 1);
        assert!(!out.runs[0].complete, "budget of 2 cannot finish 4 rows");
        // An incomplete run does not advance the stamp: the policy is
        // still due at the very next tick, which finishes the backlog.
        assert!(sched.last_runs().is_empty());
        let out = sched.tick_budgeted(&edna, 1001, Some(10)).unwrap();
        assert_eq!(out.runs.len(), 1);
        assert!(out.runs[0].complete);
        assert_eq!(sched.last_runs().get("d"), Some(&1001));
        let decayed = db
            .execute("SELECT COUNT(*) FROM notes WHERE body = 'o'")
            .unwrap()
            .rows[0][0]
            .to_string();
        assert_eq!(decayed, "4", "both ticks together drain the backlog");
        // Within the cadence window nothing fires, budget or not.
        assert!(sched
            .tick_budgeted(&edna, 1050, Some(10))
            .unwrap()
            .runs
            .is_empty());
    }

    #[test]
    fn policy_run_does_not_disturb_the_global_clock() {
        let (db, edna) = setup();
        db.set_now(42);
        let policy = DecayPolicy {
            name: "d".to_string(),
            stages: vec![DecayStage {
                disguise: "TruncOld".to_string(),
            }],
            cadence: 1,
        };
        // The run evaluates NOW() = 600 under its scoped clock...
        policy.run(&edna, 600).unwrap();
        let rows = db
            .execute("SELECT body FROM notes ORDER BY id")
            .unwrap()
            .rows;
        assert_eq!(rows[0][0].to_string(), "o", "cutoff saw the scoped now");
        // ...but a foreground session still sees the global clock.
        assert_eq!(db.global_now(), 42);
        assert_eq!(
            db.execute("SELECT NOW() FROM notes").unwrap().rows[0][0],
            Value::Int(42)
        );
    }

    #[test]
    fn expiration_skips_already_disguised_users() {
        let db = Database::new();
        db.execute(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, \
             last_login INT NOT NULL DEFAULT 0)",
        )
        .unwrap();
        db.execute("INSERT INTO users (name, last_login) VALUES ('a', 0), ('b', 950)")
            .unwrap();
        let edna = Disguiser::new(db.clone());
        edna.register(
            DisguiseSpecBuilder::new("Expire")
                .user_scoped()
                .modify("users", Some("id = $UID"), "name", Modifier::Redact)
                .build()
                .unwrap(),
        )
        .unwrap();
        let policy = ExpirationPolicy {
            name: "e".to_string(),
            disguise: "Expire".to_string(),
            inactive_after: 500,
            user_query: "SELECT id FROM users WHERE last_login < $CUTOFF".to_string(),
            cadence: 1,
        };
        let first = policy.run(&edna, 1000).unwrap();
        assert_eq!(first.len(), 1, "only user 1 is inactive");
        // Running again must not re-disguise user 1.
        let second = policy.run(&edna, 1001).unwrap();
        assert!(second.is_empty());
        // Once user 1 is revealed (returns), they become eligible again.
        edna.reveal(first[0].disguise_id).unwrap();
        let third = policy.run(&edna, 1002).unwrap();
        assert_eq!(third.len(), 1);
    }
}
