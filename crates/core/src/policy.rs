//! Automatic privacy policies: expiration and data decay (paper §2).
//!
//! - **Expiration**: "Data expiration policies could proactively anonymize
//!   or sanitize user contributions for long-inactive users." An
//!   [`ExpirationPolicy`] finds inactive users with a developer-provided
//!   query and applies a (reversible, so returning users can undo it)
//!   user-scoped disguise to each.
//! - **Data decay**: "Gradual data decay policies could apply increasingly
//!   strict privacy transformations over time, aging out sensitive but
//!   outdated user data." A [`DecayPolicy`] is a ladder of global disguises
//!   whose predicates reference `NOW()`; re-running them advances the decay
//!   frontier as the (logical) clock moves.
//!
//! The [`Scheduler`] drives policies from the database's logical clock, so
//! tests and benchmarks can fast-forward time deterministically.

use std::collections::HashMap;

use edna_relational::Value;

use crate::apply::{DisguiseReport, Disguiser};
use crate::error::{Error, Result};

/// Applies a user-scoped disguise to users inactive for too long.
#[derive(Debug, Clone)]
pub struct ExpirationPolicy {
    /// Policy name (for scheduling and reports).
    pub name: String,
    /// The user-scoped disguise to apply (must be registered).
    pub disguise: String,
    /// Inactivity threshold in logical seconds.
    pub inactive_after: i64,
    /// Query returning the ids of users inactive since `$CUTOFF`, e.g.
    /// `SELECT id FROM users WHERE last_login < $CUTOFF`.
    pub user_query: String,
    /// How often (logical seconds) the policy runs.
    pub cadence: i64,
}

impl ExpirationPolicy {
    /// Runs the policy at logical time `now`: disguises every inactive user
    /// without an active application of the disguise. Returns one report
    /// per newly disguised user.
    pub fn run(&self, edna: &Disguiser, now: i64) -> Result<Vec<DisguiseReport>> {
        let mut params = HashMap::new();
        params.insert("CUTOFF".to_string(), Value::Int(now - self.inactive_after));
        let result = edna
            .database()
            .execute_with_params(&self.user_query, &params)
            .map_err(crate::error::Error::Relational)?;
        let mut reports = Vec::new();
        for row in result.rows {
            let user = row.first().cloned().unwrap_or(Value::Null);
            if user.is_null() {
                continue;
            }
            // Idempotence: skip users already under this disguise.
            if edna.history().latest(&self.disguise, &user)?.is_some() {
                continue;
            }
            reports.push(edna.apply(&self.disguise, Some(&user))?);
        }
        Ok(reports)
    }
}

/// One rung of a decay ladder.
#[derive(Debug, Clone)]
pub struct DecayStage {
    /// The global disguise to apply (its predicates should reference
    /// `NOW()` so the affected window advances with the clock).
    pub disguise: String,
}

/// Applies increasingly strict global disguises as data ages.
#[derive(Debug, Clone)]
pub struct DecayPolicy {
    /// Policy name.
    pub name: String,
    /// Stages, applied in order on every run.
    pub stages: Vec<DecayStage>,
    /// How often (logical seconds) the policy runs.
    pub cadence: i64,
}

impl DecayPolicy {
    /// Runs every stage at logical time `now` (the database clock is set to
    /// `now` first so `NOW()` predicates see it).
    pub fn run(&self, edna: &Disguiser, now: i64) -> Result<Vec<DisguiseReport>> {
        edna.database().set_now(now);
        let mut reports = Vec::new();
        for stage in &self.stages {
            reports.push(edna.apply(&stage.disguise, None)?);
        }
        Ok(reports)
    }
}

/// A scheduled privacy policy.
#[derive(Debug, Clone)]
pub enum Policy {
    /// Expiration of inactive users.
    Expiration(ExpirationPolicy),
    /// Data decay ladder.
    Decay(DecayPolicy),
}

impl Policy {
    /// The policy's name.
    pub fn name(&self) -> &str {
        match self {
            Policy::Expiration(p) => &p.name,
            Policy::Decay(p) => &p.name,
        }
    }

    /// The policy's cadence in logical seconds.
    pub fn cadence(&self) -> i64 {
        match self {
            Policy::Expiration(p) => p.cadence,
            Policy::Decay(p) => p.cadence,
        }
    }
}

/// Drives policies from the logical clock.
pub struct Scheduler {
    policies: Vec<Policy>,
    last_run: HashMap<String, i64>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler {
            policies: Vec::new(),
            last_run: HashMap::new(),
        }
    }

    /// Adds a policy.
    pub fn add(&mut self, policy: Policy) {
        self.policies.push(policy);
    }

    /// The scheduled policies, in registration order (the audit walks
    /// these).
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// Advances the clock to `now` and runs every policy whose cadence has
    /// elapsed. Also purges expired vault entries at `now`. Returns the
    /// reports of all disguises applied.
    pub fn tick(&mut self, edna: &Disguiser, now: i64) -> Result<Vec<DisguiseReport>> {
        edna.database().set_now(now);
        let mut reports = Vec::new();
        for policy in &self.policies {
            let due = match self.last_run.get(policy.name()) {
                Some(last) => now - last >= policy.cadence(),
                None => true,
            };
            if !due {
                continue;
            }
            let mut out = match policy {
                Policy::Expiration(p) => p.run(edna, now)?,
                Policy::Decay(p) => p.run(edna, now)?,
            };
            reports.append(&mut out);
            self.last_run.insert(policy.name().to_string(), now);
        }
        edna.purge_expired(now)?;
        Ok(reports)
    }
}

/// Parses the policy text DSL, the scheduling counterpart of the spec
/// DSL (same `key: value` surface; `#` starts a line comment):
///
/// ```text
/// policy_name: "aging"
/// kind: decay
/// cadence: 60
/// stages: [ "CommentBlur", "CommentScrub" ]
/// ```
///
/// ```text
/// policy_name: "expire-idle"
/// kind: expiration
/// cadence: 120
/// disguise: "Expire"
/// inactive_after: 500
/// user_query: "SELECT id FROM users WHERE last_login < $CUTOFF"
/// ```
///
/// Syntax problems report [`Error::SpecParse`] with the line; semantic
/// problems (missing keys, bad kind) report [`Error::SpecInvalid`].
/// Whether the referenced disguises exist and have the right scope is
/// *not* checked here — that is the audit's `E053`.
pub fn parse_policy(src: &str) -> Result<Policy> {
    let mut name = None;
    let mut kind = None;
    let mut cadence = None;
    let mut stages: Option<Vec<DecayStage>> = None;
    let mut disguise = None;
    let mut inactive_after = None;
    let mut user_query = None;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_policy_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line.split_once(':').ok_or(Error::SpecParse {
            line: line_no,
            message: format!("expected `key: value`, got `{line}`"),
        })?;
        let key = key.trim();
        let value = value.trim().trim_end_matches(',');
        let parse_err = |message: String| Error::SpecParse {
            line: line_no,
            message,
        };
        match key {
            "policy_name" => {
                name = Some(unquote(value).ok_or_else(|| {
                    parse_err(format!(
                        "policy_name must be a quoted string, got `{value}`"
                    ))
                })?)
            }
            "kind" => kind = Some(value.to_string()),
            "cadence" => {
                cadence =
                    Some(value.parse::<i64>().map_err(|_| {
                        parse_err(format!("cadence must be an integer, got `{value}`"))
                    })?)
            }
            "stages" => {
                let inner = value
                    .strip_prefix('[')
                    .and_then(|v| v.strip_suffix(']'))
                    .ok_or_else(|| {
                        parse_err(format!("stages must be `[ \"A\", \"B\" ]`, got `{value}`"))
                    })?;
                let mut list = Vec::new();
                for part in inner.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    let disguise = unquote(part).ok_or_else(|| {
                        parse_err(format!("stage names must be quoted, got `{part}`"))
                    })?;
                    list.push(DecayStage { disguise });
                }
                stages = Some(list);
            }
            "disguise" => {
                disguise = Some(unquote(value).ok_or_else(|| {
                    parse_err(format!("disguise must be a quoted string, got `{value}`"))
                })?)
            }
            "inactive_after" => {
                inactive_after = Some(value.parse::<i64>().map_err(|_| {
                    parse_err(format!("inactive_after must be an integer, got `{value}`"))
                })?)
            }
            "user_query" => {
                user_query = Some(unquote(value).ok_or_else(|| {
                    parse_err(format!("user_query must be a quoted string, got `{value}`"))
                })?)
            }
            other => {
                return Err(parse_err(format!("unknown policy key `{other}`")));
            }
        }
    }
    let name = name.ok_or_else(|| invalid("<policy>", "missing `policy_name:`"))?;
    let invalid_here = |message: &str| invalid(&name, message);
    let cadence = cadence.ok_or_else(|| invalid_here("missing `cadence:`"))?;
    if cadence <= 0 {
        return Err(invalid_here("cadence must be positive"));
    }
    match kind.as_deref() {
        Some("decay") => {
            let stages = stages.ok_or_else(|| invalid_here("decay policies need `stages:`"))?;
            if stages.is_empty() {
                return Err(invalid_here("decay policies need at least one stage"));
            }
            Ok(Policy::Decay(DecayPolicy {
                name,
                stages,
                cadence,
            }))
        }
        Some("expiration") => {
            let disguise =
                disguise.ok_or_else(|| invalid_here("expiration policies need `disguise:`"))?;
            let inactive_after = inactive_after
                .ok_or_else(|| invalid_here("expiration policies need `inactive_after:`"))?;
            let user_query =
                user_query.ok_or_else(|| invalid_here("expiration policies need `user_query:`"))?;
            if !user_query.contains("$CUTOFF") {
                return Err(invalid_here("user_query must reference $CUTOFF"));
            }
            Ok(Policy::Expiration(ExpirationPolicy {
                name,
                disguise,
                inactive_after,
                user_query,
                cadence,
            }))
        }
        Some(other) => Err(invalid_here(&format!(
            "kind must be `decay` or `expiration`, got `{other}`"
        ))),
        None => Err(invalid_here("missing `kind:`")),
    }
}

/// Whether `src` looks like the policy DSL rather than the spec DSL
/// (used by `edna register` to route a file to the right parser).
pub fn is_policy_source(src: &str) -> bool {
    src.lines()
        .map(strip_policy_comment)
        .find(|l| !l.trim().is_empty())
        .map(|l| l.trim_start().starts_with("policy_name"))
        .unwrap_or(false)
}

fn invalid(name: &str, message: &str) -> Error {
    Error::SpecInvalid {
        disguise: name.to_string(),
        message: message.to_string(),
    }
}

/// Strips a `#` comment, respecting double- and single-quoted strings.
fn strip_policy_comment(line: &str) -> String {
    let mut out = String::new();
    let mut quote: Option<char> = None;
    for c in line.chars() {
        match (c, quote) {
            ('#', None) => break,
            ('"', None) | ('\'', None) => quote = Some(c),
            (c, Some(q)) if c == q => quote = None,
            _ => {}
        }
        out.push(c);
    }
    out
}

/// Removes matching surrounding quotes, if any.
fn unquote(s: &str) -> Option<String> {
    let s = s.trim();
    for q in ['"', '\''] {
        if let Some(inner) = s.strip_prefix(q).and_then(|v| v.strip_suffix(q)) {
            return Some(inner.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DisguiseSpecBuilder, Modifier};
    use edna_relational::Database;

    fn setup() -> (Database, Disguiser) {
        let db = Database::new();
        db.execute(
            "CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, body TEXT, \
             created_at INT NOT NULL DEFAULT 0)",
        )
        .unwrap();
        db.execute("INSERT INTO notes (body, created_at) VALUES ('old', 0), ('new', 900)")
            .unwrap();
        let edna = Disguiser::new(db.clone());
        edna.register(
            DisguiseSpecBuilder::new("TruncOld")
                .irreversible()
                .modify(
                    "notes",
                    Some("created_at < NOW() - 500"),
                    "body",
                    Modifier::Truncate(1),
                )
                .build()
                .unwrap(),
        )
        .unwrap();
        (db, edna)
    }

    #[test]
    fn policy_dsl_parses_decay() {
        let p = parse_policy(
            "# age out comment bodies\n\
             policy_name: \"aging\"\n\
             kind: decay\n\
             cadence: 60\n\
             stages: [ \"CommentBlur\", \"CommentScrub\" ]\n",
        )
        .unwrap();
        match p {
            Policy::Decay(d) => {
                assert_eq!(d.name, "aging");
                assert_eq!(d.cadence, 60);
                let names: Vec<_> = d.stages.iter().map(|s| s.disguise.as_str()).collect();
                assert_eq!(names, vec!["CommentBlur", "CommentScrub"]);
            }
            other => panic!("not decay: {other:?}"),
        }
    }

    #[test]
    fn policy_dsl_parses_expiration() {
        let p = parse_policy(
            "policy_name: \"expire-idle\"\n\
             kind: expiration\n\
             cadence: 120\n\
             disguise: \"Expire\"\n\
             inactive_after: 500\n\
             user_query: \"SELECT id FROM users WHERE last_login < $CUTOFF\"\n",
        )
        .unwrap();
        match p {
            Policy::Expiration(e) => {
                assert_eq!(e.disguise, "Expire");
                assert_eq!(e.inactive_after, 500);
                assert!(e.user_query.contains("$CUTOFF"));
            }
            other => panic!("not expiration: {other:?}"),
        }
    }

    #[test]
    fn policy_dsl_rejects_malformed_input() {
        // Syntax: line numbers on parse errors.
        let err = parse_policy("policy_name: aging\n").unwrap_err();
        assert!(matches!(err, Error::SpecParse { line: 1, .. }), "{err:?}");
        // Semantics: missing keys, bad kind, dead cadence.
        for (src, needle) in [
            ("kind: decay\ncadence: 1\nstages: [\"A\"]", "policy_name"),
            ("policy_name: \"p\"\ncadence: 1", "kind"),
            ("policy_name: \"p\"\nkind: decay\ncadence: 1", "stages"),
            (
                "policy_name: \"p\"\nkind: decay\ncadence: 0\nstages: [\"A\"]",
                "positive",
            ),
            (
                "policy_name: \"p\"\nkind: expiration\ncadence: 1\ndisguise: \"D\"\n\
                 inactive_after: 5\nuser_query: \"SELECT id FROM users\"",
                "$CUTOFF",
            ),
            ("policy_name: \"p\"\nkind: seesaw\ncadence: 1", "decay"),
        ] {
            let err = parse_policy(src).unwrap_err();
            assert!(err.to_string().contains(needle), "{src}: {err}");
        }
    }

    #[test]
    fn policy_sources_are_recognized() {
        assert!(is_policy_source("# c\npolicy_name: \"p\"\n"));
        assert!(!is_policy_source("disguise_name: \"d\"\n"));
        assert!(!is_policy_source(""));
    }

    #[test]
    fn scheduler_respects_cadence() {
        let (_db, edna) = setup();
        let mut sched = Scheduler::new();
        sched.add(Policy::Decay(DecayPolicy {
            name: "d".to_string(),
            stages: vec![DecayStage {
                disguise: "TruncOld".to_string(),
            }],
            cadence: 100,
        }));
        // First tick always fires.
        assert_eq!(sched.tick(&edna, 1000).unwrap().len(), 1);
        // Within the cadence window: nothing.
        assert!(sched.tick(&edna, 1050).unwrap().is_empty());
        // Past it: fires again.
        assert_eq!(sched.tick(&edna, 1101).unwrap().len(), 1);
    }

    #[test]
    fn decay_window_advances_with_the_clock() {
        let (db, edna) = setup();
        let policy = DecayPolicy {
            name: "d".to_string(),
            stages: vec![DecayStage {
                disguise: "TruncOld".to_string(),
            }],
            cadence: 1,
        };
        // At t=600 only the t=0 note is older than 500.
        policy.run(&edna, 600).unwrap();
        let rows = db
            .execute("SELECT body FROM notes ORDER BY id")
            .unwrap()
            .rows;
        assert_eq!(rows[0][0].to_string(), "o");
        assert_eq!(rows[1][0].to_string(), "new");
        // At t=1500 the second note ages into the window.
        policy.run(&edna, 1500).unwrap();
        let rows = db
            .execute("SELECT body FROM notes ORDER BY id")
            .unwrap()
            .rows;
        assert_eq!(rows[1][0].to_string(), "n");
    }

    #[test]
    fn expiration_skips_already_disguised_users() {
        let db = Database::new();
        db.execute(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, \
             last_login INT NOT NULL DEFAULT 0)",
        )
        .unwrap();
        db.execute("INSERT INTO users (name, last_login) VALUES ('a', 0), ('b', 950)")
            .unwrap();
        let edna = Disguiser::new(db.clone());
        edna.register(
            DisguiseSpecBuilder::new("Expire")
                .user_scoped()
                .modify("users", Some("id = $UID"), "name", Modifier::Redact)
                .build()
                .unwrap(),
        )
        .unwrap();
        let policy = ExpirationPolicy {
            name: "e".to_string(),
            disguise: "Expire".to_string(),
            inactive_after: 500,
            user_query: "SELECT id FROM users WHERE last_login < $CUTOFF".to_string(),
            cadence: 1,
        };
        let first = policy.run(&edna, 1000).unwrap();
        assert_eq!(first.len(), 1, "only user 1 is inactive");
        // Running again must not re-disguise user 1.
        let second = policy.run(&edna, 1001).unwrap();
        assert!(second.is_empty());
        // Once user 1 is revealed (returns), they become eligible again.
        edna.reveal(first[0].disguise_id).unwrap();
        let third = policy.run(&edna, 1002).unwrap();
        assert_eq!(third.len(), 1);
    }
}
