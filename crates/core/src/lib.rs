//! `edna-core`: the data disguising tool.
//!
//! This crate implements the paper's primary contribution: *data
//! disguising*, "a systematic approach to privacy transformations that
//! separates them from application code" (§4). The pieces:
//!
//! - [`spec`] — structured disguise specifications built on the three
//!   fundamental transformation operations (removal, modification,
//!   decorrelation), with a text DSL mirroring the paper's Figure 3 and a
//!   programmatic builder;
//! - [`Disguiser`] — the external disguising tool of Figure 1: it
//!   interprets a specification, applies the physical changes in one
//!   transaction while preserving referential integrity, and records
//!   reveal functions in vaults for reversible disguises;
//! - [`reveal`] — reversal with history-log re-application, so a reveal
//!   never undoes a later disguise (§4.2);
//! - [`analysis`] — static analysis of disguise interactions automating
//!   the paper's §6 composition optimization;
//! - [`analyze`] — schema-aware static analysis producing rustc-style
//!   diagnostics (typed predicates, referential/reveal safety, PII
//!   coverage), enforced at registration and exposed as `edna check`,
//!   plus the whole-workspace abstract interpreter behind `edna audit`
//!   (reveal-reachability, vault-orphaning, policy convergence);
//! - assertions over the end state (§7), checked post-apply with rollback
//!   and mechanism-retry on failure;
//! - [`policy`] — expiration and data-decay policies over a logical clock
//!   (§2).
//!
//! See the crate examples (`examples/quickstart.rs` and friends at the
//! workspace root) for end-to-end usage.

#![warn(missing_docs)]

pub mod analysis;
pub mod analyze;
pub mod apply;
pub mod error;
pub mod guard;
pub mod history;
pub mod placeholder;
pub mod policy;
pub mod reveal;
pub mod spec;
pub mod workspace;

pub use analysis::{plan_composition, CompositionPlan};
pub use analyze::{
    analyze_spec, audit_workspace, render_json_report, render_report, sort_diagnostics, Diagnostic,
    Location, Severity,
};
pub use apply::{
    ApplyManyReport, ApplyOptions, DisguiseReport, Disguiser, IntentResolution, VaultFailurePolicy,
};
pub use edna_obs::{SpanRecord, Tracer};
pub use error::{Error, Result};
pub use guard::DisguisedRows;
pub use history::{DisguiseEvent, HistoryLog, HISTORY_TABLE};
pub use policy::{
    is_policy_source, parse_policy, DecayPolicy, DecayStage, ExpirationPolicy, Policy, PolicyRun,
    Scheduler, TickOutcome,
};
pub use reveal::RevealReport;
pub use spec::{
    parse_spec, spec_loc, Assertion, DisguiseSpec, DisguiseSpecBuilder, Generator, Modifier,
    PredicatedTransform, TableDisguise, Transformation,
};
pub use workspace::{parse_user, Workspace, POLICY_REGISTRY_TABLE, SPEC_REGISTRY_TABLE};
