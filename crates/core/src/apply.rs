//! The disguising tool: applying disguises.
//!
//! [`Disguiser`] is the external tool of paper Figure 1: applications
//! invoke its API with a disguise name (and user id for user-scoped
//! disguises); it interprets the registered specification and applies the
//! necessary physical changes to the database in one transaction,
//! recording reveal functions in vaults for reversible disguises and
//! logging the application in the disguise history.
//!
//! Apply-time composition (paper §4.2, §6): when a prior reversible
//! disguise has transformed rows this disguise's predicates need to see,
//! the tool reads reveal functions from vaults, *temporarily recorrelates*
//! the affected rows, applies the disguise, and re-disguises whatever
//! survives untouched. With [`ApplyOptions::optimize`] set, the static
//! analysis of [`crate::analysis`] skips recorrelation for decorrelations
//! a prior disguise already performed.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use edna_obs::{SpanGuard, Tracer};
use edna_util::rng::Prng;
use edna_util::sync::{lock_unpoisoned, read_unpoisoned, write_unpoisoned};
use std::sync::{Mutex, RwLock};

use edna_relational::{
    eval_predicate, Database, EvalContext, Expr, OpenIntent, StatsSnapshot, TableSchema, Value,
};
use edna_vault::{MemoryStore, RevealOp, TieredVault, Vault, VaultEntry, VaultJournal, VaultTier};

use crate::analysis::{plan_composition, CompositionPlan};
use crate::analyze::{self, Diagnostic};
use crate::error::{Error, Result};
use crate::history::HistoryLog;
use crate::placeholder::create_placeholders;
use crate::spec::{validate_spec, DisguiseSpec, PredicatedTransform, Transformation};

/// One batch of pk-keyed updates, as `Database::update_rows_by_pk` takes
/// them: `(pk, [(column index, new value)])` per row.
type PkUpdates = Vec<(Value, Vec<(usize, Value)>)>;

/// What to do when the vault write at the end of an application fails
/// (after retries, if the backend has a [`edna_vault::RetryPolicy`]).
///
/// The disguise's physical changes and its history row are already staged
/// in the transaction at that point; the policy decides whether losing the
/// reveal functions aborts the disguise or degrades it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VaultFailurePolicy {
    /// Abort: roll the whole application back and surface the vault
    /// error. Nothing is disguised, nothing is lost.
    #[default]
    Require,
    /// Proceed irreversibly: commit the disguise, mark the history row
    /// not reversible, and record the vault error as its note. Privacy
    /// wins over reversibility.
    Degrade,
    /// Proceed reversibly: commit the disguise and spool the vault entry
    /// to the configured [`VaultJournal`], to be pushed into the vault by
    /// [`Disguiser::flush_pending_vault_writes`] once the backend is
    /// healthy. Requires [`Disguiser::set_vault_journal`].
    Buffer,
}

/// Knobs controlling disguise application.
#[derive(Debug, Clone, Copy)]
pub struct ApplyOptions {
    /// Consult vaults of prior disguises and recorrelate conflicting rows
    /// (paper §4.2). Off = pretend prior disguises don't exist; assertions
    /// will catch missed rows.
    pub compose: bool,
    /// Use static analysis to skip decorrelations a prior disguise already
    /// performed (the paper's §6 optimization).
    pub optimize: bool,
    /// Wrap the whole application in one transaction ("Edna currently
    /// applies these changes in one large SQL transaction", §6).
    pub use_transaction: bool,
    /// What to do when the vault write fails after retries.
    pub vault_failure_policy: VaultFailurePolicy,
    /// Upper bound on rows transformed by this application (`None` =
    /// unbounded). The decay daemon uses this to run incrementally: when
    /// the budget runs out mid-application the report comes back with
    /// `budget_exhausted` set, end-state assertions are skipped (the
    /// state is partial by design), and re-applying the same disguise
    /// later picks up the untouched rows. `Remove` transforms are gated
    /// at transform granularity — cascade deletes make exact row bounds
    /// impractical — so a single Remove may overshoot the budget but the
    /// next transform then stops.
    pub row_budget: Option<usize>,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        ApplyOptions {
            compose: true,
            optimize: true,
            use_transaction: true,
            vault_failure_policy: VaultFailurePolicy::Require,
            row_budget: None,
        }
    }
}

/// What one disguise application did.
#[derive(Debug, Clone)]
pub struct DisguiseReport {
    /// History id of this application (0 if the disguise recorded nothing).
    pub disguise_id: u64,
    /// Disguise name.
    pub name: String,
    /// Disguised user (NULL for global).
    pub user_id: Value,
    /// Rows deleted (including cascades).
    pub rows_removed: usize,
    /// Rows whose foreign key was re-pointed at a placeholder.
    pub rows_decorrelated: usize,
    /// Rows with a modified column.
    pub rows_modified: usize,
    /// Placeholder rows created.
    pub placeholders_created: usize,
    /// Rows temporarily recorrelated from vaults (composition).
    pub rows_recorrelated: usize,
    /// Recorrelated rows re-disguised afterwards.
    pub rows_redone: usize,
    /// Vault ops skipped by the static-analysis optimization.
    pub skipped_redundant: usize,
    /// Wall-clock duration of the application.
    pub duration: Duration,
    /// Engine statement/row counters consumed by this application.
    pub stats: StatsSnapshot,
    /// Vault-store retries absorbed during this application.
    pub vault_retries: u64,
    /// Why this application degraded to irreversible
    /// ([`VaultFailurePolicy::Degrade`]), if it did.
    pub vault_degraded: Option<String>,
    /// Whether the vault entry was spooled to the journal
    /// ([`VaultFailurePolicy::Buffer`]) instead of reaching the vault.
    pub vault_buffered: bool,
    /// Whether a WAL intent marker brackets this application's vault-side
    /// writes (set when the database has a WAL attached and the disguise
    /// recorded reveal functions).
    pub(crate) wal_intent: bool,
    /// Whether [`ApplyOptions::row_budget`] ran out before every matching
    /// row was transformed: the application is partial and should be
    /// re-run (the scheduler does so on its next tick).
    pub budget_exhausted: bool,
    /// Rows of budget left while the application runs (`None` =
    /// unbounded). Seeded from [`ApplyOptions::row_budget`].
    pub(crate) remaining_budget: Option<usize>,
}

impl Default for DisguiseReport {
    fn default() -> Self {
        DisguiseReport {
            disguise_id: 0,
            name: String::new(),
            user_id: Value::Null,
            rows_removed: 0,
            rows_decorrelated: 0,
            rows_modified: 0,
            placeholders_created: 0,
            rows_recorrelated: 0,
            rows_redone: 0,
            skipped_redundant: 0,
            duration: Duration::ZERO,
            stats: StatsSnapshot::default(),
            vault_retries: 0,
            vault_degraded: None,
            vault_buffered: false,
            wal_intent: false,
            budget_exhausted: false,
            remaining_budget: None,
        }
    }
}

/// A vault write deferred by `apply_many` so a shard can flush a whole
/// chunk of users' entries in one batched backend round trip.
pub(crate) struct PendingVaultPut {
    pub(crate) tier: VaultTier,
    pub(crate) entry: VaultEntry,
    pub(crate) disguise_id: u64,
}

/// What one mass disguise application ([`Disguiser::apply_many`]) did.
#[derive(Debug, Clone)]
pub struct ApplyManyReport {
    /// Disguise name.
    pub name: String,
    /// Users requested.
    pub users: usize,
    /// Users disguised successfully.
    pub succeeded: usize,
    /// Users whose application failed, with the error rendered. A failed
    /// user may be partially disguised: `apply_many` runs without a
    /// wrapping transaction (shards commit statement-by-statement through
    /// the group-commit WAL), so there is nothing to roll back.
    pub failures: Vec<(Value, String)>,
    /// Shards the users were hash-partitioned into.
    pub shards: usize,
    /// Rows deleted across all users.
    pub rows_removed: usize,
    /// Rows decorrelated across all users.
    pub rows_decorrelated: usize,
    /// Rows modified across all users.
    pub rows_modified: usize,
    /// Placeholder rows created across all users.
    pub placeholders_created: usize,
    /// Reveal-function entries written to vaults (batched per chunk).
    pub vault_entries: usize,
    /// Users whose disguise degraded to irreversible because the vault
    /// write failed after the database changes were already committed.
    pub degraded: usize,
    /// Wall-clock duration of the whole mass application.
    pub duration: Duration,
}

/// What one shard worker accumulated; merged into [`ApplyManyReport`].
#[derive(Default)]
struct ShardOutcome {
    succeeded: usize,
    failures: Vec<(Value, String)>,
    rows_removed: usize,
    rows_decorrelated: usize,
    rows_modified: usize,
    placeholders_created: usize,
    vault_entries: usize,
    degraded: usize,
}

/// A row temporarily recorrelated from a vault during composition.
pub(crate) struct Recorrelated {
    pub table: String,
    pub pk_column: String,
    pub pk: Value,
    /// `(column, original value, disguised value)` triples.
    pub cols: Vec<(String, Value, Value)>,
}

/// The data disguising tool.
///
/// # Examples
///
/// ```
/// use edna_core::{Disguiser, spec::DisguiseSpecBuilder};
/// use edna_relational::{Database, Value};
///
/// let db = Database::new();
/// db.execute("CREATE TABLE users (id INT PRIMARY KEY, email TEXT)").unwrap();
/// db.execute("INSERT INTO users VALUES (19, 'bea@uni.edu')").unwrap();
///
/// let edna = Disguiser::new(db.clone());
/// edna.register(
///     DisguiseSpecBuilder::new("GDPR")
///         .user_scoped()
///         .remove("users", Some("id = $UID"))
///         .build()
///         .unwrap(),
/// ).unwrap();
/// let report = edna.apply("GDPR", Some(&Value::Int(19))).unwrap();
/// assert_eq!(report.rows_removed, 1);
/// assert_eq!(db.row_count("users").unwrap(), 0);
///
/// // The user returns: reverse the disguise.
/// edna.reveal(report.disguise_id).unwrap();
/// assert_eq!(db.row_count("users").unwrap(), 1);
/// ```
pub struct Disguiser {
    pub(crate) db: Database,
    pub(crate) vaults: TieredVault,
    pub(crate) history: HistoryLog,
    /// Registered specs, behind interior locking so registration is a
    /// `&self` operation and the disguiser can be shared across server
    /// worker threads (`Send + Sync` service shape).
    pub(crate) specs: RwLock<HashMap<String, DisguiseSpec>>,
    /// Warnings the static analyzer recorded when each spec registered.
    pub(crate) warnings: RwLock<HashMap<String, Vec<Diagnostic>>>,
    pub(crate) rng: Mutex<Prng>,
    pub(crate) journal: Mutex<Option<VaultJournal>>,
    /// Options used by [`Disguiser::apply`].
    pub options: ApplyOptions,
}

impl Disguiser {
    /// Creates a disguiser over `db` with default in-memory vaults
    /// (plain global tier, encrypted per-user tier) and a fixed RNG seed.
    pub fn new(db: Database) -> Disguiser {
        let vaults = TieredVault::new(
            Vault::plain(MemoryStore::new()),
            Vault::encrypted(MemoryStore::new(), 0xED4A),
        );
        Self::with_vaults(db, vaults)
    }

    /// Creates a disguiser with explicit vault tiers.
    pub fn with_vaults(db: Database, vaults: TieredVault) -> Disguiser {
        let history = HistoryLog::open(db.clone()).expect("history table creation");
        Disguiser {
            db,
            vaults,
            history,
            specs: RwLock::new(HashMap::new()),
            warnings: RwLock::new(HashMap::new()),
            rng: Mutex::new(Prng::seed_from_u64(0xED4A)),
            journal: Mutex::new(None),
            options: ApplyOptions::default(),
        }
    }

    /// Reseeds the RNG (placeholder values become reproducible).
    pub fn set_seed(&self, seed: u64) {
        *lock_unpoisoned(&self.rng) = Prng::seed_from_u64(seed);
    }

    /// Installs (or with `None` removes) a tracer across every layer this
    /// disguiser touches: the engine emits per-statement spans, the vaults
    /// and journal emit storage spans, and the disguiser itself emits
    /// disguise-phase spans (`disguise_apply`, `recorrelate`, `transform`,
    /// `predicate_scan`, `placeholder_gen`, `transform_write`,
    /// `redo_pass`, `assertions`, `history_append`, `vault_write`,
    /// `reveal`, ...), all sharing one span buffer.
    pub fn set_tracer(&self, tracer: Option<Tracer>) {
        self.db.set_tracer(tracer.clone());
        self.vaults.set_tracer(tracer.clone());
        if let Some(j) = lock_unpoisoned(&self.journal).as_ref() {
            j.set_tracer(tracer);
        }
    }

    /// Opens a disguise-phase span if a tracer is installed.
    pub(crate) fn span(&self, label: &str) -> Option<SpanGuard> {
        self.db.tracer().map(|t| t.begin(label))
    }

    /// The underlying database handle.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The vault tiers.
    pub fn vaults(&self) -> &TieredVault {
        &self.vaults
    }

    /// The history log.
    pub fn history(&self) -> &HistoryLog {
        &self.history
    }

    /// Configures the journal that [`VaultFailurePolicy::Buffer`] spools
    /// vault writes to when the backend is down.
    pub fn set_vault_journal(&self, journal: VaultJournal) {
        // Inherit whatever tracer is currently installed.
        journal.set_tracer(self.db.tracer());
        *lock_unpoisoned(&self.journal) = Some(journal);
    }

    /// Vault entries spooled by [`VaultFailurePolicy::Buffer`] and not yet
    /// flushed (0 if no journal is configured).
    pub fn pending_vault_writes(&self) -> Result<usize> {
        match lock_unpoisoned(&self.journal).as_ref() {
            Some(j) => Ok(j.len()?),
            None => Ok(0),
        }
    }

    /// Pushes journalled vault entries into the vaults, oldest first;
    /// returns how many were flushed. On a vault failure mid-flush the
    /// unflushed suffix (including the entry that failed) stays in the
    /// journal and the error surfaces — calling again once the backend
    /// recovers resumes where it stopped.
    pub fn flush_pending_vault_writes(&self) -> Result<usize> {
        let _span = self.span("vault_flush");
        let guard = lock_unpoisoned(&self.journal);
        let Some(journal) = guard.as_ref() else {
            return Ok(0);
        };
        let pending = journal.pending()?;
        let mut flushed = 0;
        for (i, (tier, entry)) in pending.iter().enumerate() {
            // Idempotent flush: a crash after the put but before the
            // journal compaction below leaves the entry both in the vault
            // and in the journal; re-flushing must not store it twice
            // (file-backed stores append blindly).
            let already = self
                .vaults
                .entries_for_disguise(&entry.user_id, entry.disguise_id)?
                .iter()
                .any(|e| e == entry);
            if already {
                flushed += 1;
                continue;
            }
            if let Err(e) = self.vaults.put(*tier, entry) {
                journal.rewrite(&pending[i..])?;
                return Err(Error::Vault(e));
            }
            flushed += 1;
        }
        journal.rewrite(&[])?;
        Ok(flushed)
    }

    /// Resolves disguise intents that recovery found open in the WAL
    /// (intent marker with no commit marker): for each one, the database's
    /// own history table is the commit arbiter.
    ///
    /// - History row **present** — the disguise's transaction committed;
    ///   its vault writes are legitimate. The intent is closed with a
    ///   commit marker (the original one was lost to the crash).
    /// - History row **absent** — the transaction never committed; the
    ///   vault entry (and any journal-spooled copy) is an orphan carrying
    ///   reveal functions for a disguise that never happened. Both are
    ///   removed, then the intent is closed.
    ///
    /// Idempotent: re-resolving an already-resolved intent removes nothing
    /// and re-stamps the marker. Called by `Workspace::open` after WAL
    /// replay; safe to call with an empty slice.
    pub fn resolve_recovered_intents(&self, intents: &[OpenIntent]) -> Result<IntentResolution> {
        let mut resolution = IntentResolution::default();
        for intent in intents {
            let committed = self.history.get(intent.disguise_id).is_ok();
            if committed {
                resolution.completed.push(intent.disguise_id);
            } else {
                self.vaults.remove(&intent.user, intent.disguise_id)?;
                if let Some(j) = lock_unpoisoned(&self.journal).as_ref() {
                    j.purge_disguise(intent.disguise_id)?;
                }
                resolution.undone.push(intent.disguise_id);
            }
            // Close the bracket either way so the next recovery does not
            // re-resolve it (a commit marker here means "resolved", not
            // necessarily "applied" — the history row is the arbiter).
            self.db.wal_disguise_commit(intent.disguise_id)?;
        }
        Ok(resolution)
    }

    /// Registers a disguise specification: validates it against the
    /// schema, then runs the static analyzer ([`crate::analyze`]) with
    /// every already-registered spec as composition context.
    /// Registration fails on analyzer errors ([`Error::AnalysisFailed`]);
    /// warnings are recorded and readable via
    /// [`Disguiser::registration_warnings`].
    pub fn register(&self, spec: DisguiseSpec) -> Result<()> {
        validate_spec(&spec, &self.db)?;
        let priors = self.prior_specs(&spec.name);
        let prior_refs: Vec<&DisguiseSpec> = priors.iter().collect();
        let diags = analyze::analyze_spec(&spec, &self.db, &prior_refs);
        if analyze::has_errors(&diags) {
            return Err(Error::AnalysisFailed {
                disguise: spec.name.clone(),
                report: analyze::render_report(&diags),
            });
        }
        write_unpoisoned(&self.warnings).insert(spec.name.clone(), diags);
        write_unpoisoned(&self.specs).insert(spec.name.clone(), spec);
        Ok(())
    }

    /// Every registered spec except `excluding`, sorted by name so
    /// analyzer output is deterministic.
    fn prior_specs(&self, excluding: &str) -> Vec<DisguiseSpec> {
        let specs = read_unpoisoned(&self.specs);
        let mut priors: Vec<DisguiseSpec> = specs
            .values()
            .filter(|s| s.name != excluding)
            .cloned()
            .collect();
        priors.sort_by(|a, b| a.name.cmp(&b.name));
        priors
    }

    /// Re-runs the static analyzer on a registered spec against the
    /// current schema and the other registered specs.
    pub fn check(&self, name: &str) -> Result<Vec<Diagnostic>> {
        let spec = self.spec(name)?;
        let priors = self.prior_specs(name);
        let prior_refs: Vec<&DisguiseSpec> = priors.iter().collect();
        Ok(analyze::analyze_spec(&spec, &self.db, &prior_refs))
    }

    /// Runs [`Disguiser::check`] over every registered spec, sorted by
    /// name.
    pub fn check_all(&self) -> Vec<(String, Vec<Diagnostic>)> {
        let mut names: Vec<String> = read_unpoisoned(&self.specs).keys().cloned().collect();
        names.sort();
        names
            .into_iter()
            .map(|n| {
                let diags = self.check(&n).expect("registered spec");
                (n, diags)
            })
            .collect()
    }

    /// Audits the whole registered disguise graph (all interleavings)
    /// plus the given scheduled `policies`; see
    /// [`analyze::audit_workspace`]. Specs are passed sorted by name so
    /// the exploration and its diagnostics are deterministic.
    pub fn audit(&self, policies: &[crate::policy::Policy]) -> Vec<Diagnostic> {
        let mut specs: Vec<DisguiseSpec> = read_unpoisoned(&self.specs).values().cloned().collect();
        specs.sort_by(|a, b| a.name.cmp(&b.name));
        analyze::audit_workspace(&self.db, &specs, policies)
    }

    /// The warnings the analyzer recorded when `name` registered (empty
    /// if none, or if the spec is unknown).
    pub fn registration_warnings(&self, name: &str) -> Vec<Diagnostic> {
        read_unpoisoned(&self.warnings)
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Parses, validates, and registers a DSL spec; returns its name.
    pub fn register_dsl(&self, dsl: &str) -> Result<String> {
        let spec = crate::spec::parse_spec(dsl)?;
        let name = spec.name.clone();
        self.register(spec)?;
        Ok(name)
    }

    /// Re-validates every registered disguise against the (possibly
    /// evolved) schema, returning the names of specs that no longer
    /// validate and the reason (paper §7: schema updates in a system that
    /// has already applied disguises).
    pub fn revalidate(&self) -> Vec<(String, Error)> {
        let specs = read_unpoisoned(&self.specs);
        let mut failures = Vec::new();
        let mut names: Vec<&String> = specs.keys().collect();
        names.sort();
        for name in names {
            if let Err(e) = validate_spec(&specs[name], &self.db) {
                failures.push((name.clone(), e));
            }
        }
        failures
    }

    /// The registered spec with the given name (cloned out of the
    /// interior-locked registry).
    pub fn spec(&self, name: &str) -> Result<DisguiseSpec> {
        read_unpoisoned(&self.specs)
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NoSuchDisguise(name.to_string()))
    }

    /// Purges expired vault entries at logical time `now`, making their
    /// disguises irreversible; returns how many entries were dropped.
    pub fn purge_expired(&self, now: i64) -> Result<usize> {
        Ok(self.vaults.purge_expired(now)?)
    }

    /// Applies a registered disguise with [`Disguiser::options`].
    ///
    /// If an end-state assertion fails with composition disabled, the
    /// application is rolled back and retried once with composition
    /// enabled (the paper's §7 "revert ... and try again with a different
    /// mechanism").
    pub fn apply(&self, name: &str, user: Option<&Value>) -> Result<DisguiseReport> {
        let opts = self.options;
        match self.apply_with_options(name, user, opts) {
            Err(Error::AssertionFailed { .. }) if !opts.compose => {
                let retry = ApplyOptions {
                    compose: true,
                    ..opts
                };
                self.apply_with_options(name, user, retry)
            }
            other => other,
        }
    }

    /// Applies a registered disguise with explicit options.
    pub fn apply_with_options(
        &self,
        name: &str,
        user: Option<&Value>,
        opts: ApplyOptions,
    ) -> Result<DisguiseReport> {
        let spec = self.spec(name)?;
        let user_value = match (spec.user_scoped, user) {
            (true, Some(u)) if !u.is_null() => u.clone(),
            (true, _) => return Err(Error::MissingUser(name.to_string())),
            (false, _) => Value::Null,
        };
        let mut params = HashMap::new();
        if !user_value.is_null() {
            params.insert("UID".to_string(), user_value.clone());
        }

        let mut root = self.span("disguise_apply");
        if let Some(g) = root.as_mut() {
            g.attr("disguise", name);
            g.attr("user", user_value.to_sql_literal());
        }
        let started = Instant::now();
        let stats_before = self.db.stats();
        let vault_stats_before = self.vaults.store_stats();
        if opts.use_transaction {
            self.db.begin()?;
        }
        let result = self.apply_inner(&spec, &user_value, &params, opts, None);
        match result {
            Ok(mut report) => {
                if opts.use_transaction {
                    if let Err(commit_err) = self.db.commit() {
                        // A failed commit (e.g. the WAL append died) rolled
                        // the transaction back inside the engine, but the
                        // vault write already happened outside it — and
                        // the commit is AMBIGUOUS: the frame may or may
                        // not have reached disk before the append
                        // reported failure. Do NOT undo the vault entry
                        // here; the intent marker stays open and the next
                        // recovery resolves it against what actually
                        // persisted (history row present → entry is
                        // legitimate; absent → entry is removed).
                        return Err(Error::Relational(commit_err));
                    }
                }
                // The disguise is durable: close the intent bracket.
                // Losing this marker is benign — recovery re-resolves the
                // intent against the committed history row.
                if report.wal_intent {
                    let _ = self.db.wal_disguise_commit(report.disguise_id);
                }
                report.duration = started.elapsed();
                report.stats = self.db.stats().since(&stats_before);
                report.vault_retries = self
                    .vaults
                    .store_stats()
                    .retries
                    .saturating_sub(vault_stats_before.retries);
                Ok(report)
            }
            Err(e) => {
                if opts.use_transaction {
                    // A failed rollback is a double fault: the database may
                    // hold a partial application. Surface both causes.
                    if let Err(rollback) = self.db.rollback() {
                        return Err(Error::RollbackFailed {
                            apply: Box::new(e),
                            rollback,
                        });
                    }
                }
                Err(e)
            }
        }
    }

    /// Applies a user-scoped disguise to many users at once, sharded by
    /// owner hash across a scoped thread pool (ROADMAP: mass disguising —
    /// "10k departing users in one request").
    ///
    /// Each shard owns a disjoint set of users (owner-column predicates
    /// make their row sets disjoint too, which is what makes the shards
    /// independent), applies the disguise per user *without* a wrapping
    /// transaction — every statement commits through the engine, so
    /// concurrent shards share fsyncs via the group-commit WAL — and
    /// batches its vault puts and intent-close markers per chunk of
    /// [`Disguiser::VAULT_PUT_BATCH`] users.
    ///
    /// Failure semantics: a user whose application errors is reported in
    /// [`ApplyManyReport::failures`] and does not stop the rest. If a
    /// batched vault put fails, the affected users' database changes are
    /// already committed and cannot be rolled back; the failure policy
    /// decides between marking them degraded (irreversible, the *require*
    /// and *degrade* policies) or spooling to the journal (*buffer*).
    /// Open WAL intents from a crash mid-`apply_many` are resolved by the
    /// next recovery exactly as for single applications.
    pub fn apply_many(
        &self,
        name: &str,
        users: &[Value],
        shards: usize,
    ) -> Result<ApplyManyReport> {
        let spec = self.spec(name)?;
        if !spec.user_scoped {
            return Err(Error::SpecInvalid {
                disguise: name.to_string(),
                message: "apply_many requires a user-scoped disguise".to_string(),
            });
        }
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let shard_count = if shards == 0 { hw } else { shards }
            .min(users.len())
            .max(1);

        let mut root = self.span("disguise_apply_many");
        if let Some(g) = root.as_mut() {
            g.attr("disguise", name);
            g.attr("users", users.len().to_string());
            g.attr("shards", shard_count.to_string());
        }
        let started = Instant::now();

        // Owner-hash partition: every occurrence of the same user id lands
        // in the same shard, so per-user application order is preserved.
        let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); shard_count];
        for user in users {
            buckets[owner_shard(user, shard_count)].push(user.clone());
        }

        let opts = ApplyOptions {
            use_transaction: false,
            ..self.options
        };
        let spec = &spec;
        let outcomes: Vec<ShardOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .iter()
                .filter(|b| !b.is_empty())
                .map(|bucket| s.spawn(move || self.apply_shard(spec, bucket, opts)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(outcome) => outcome,
                    Err(_) => ShardOutcome {
                        failures: vec![(Value::Null, "shard worker panicked".to_string())],
                        ..ShardOutcome::default()
                    },
                })
                .collect()
        });

        let mut report = ApplyManyReport {
            name: name.to_string(),
            users: users.len(),
            succeeded: 0,
            failures: Vec::new(),
            shards: shard_count,
            rows_removed: 0,
            rows_decorrelated: 0,
            rows_modified: 0,
            placeholders_created: 0,
            vault_entries: 0,
            degraded: 0,
            duration: Duration::ZERO,
        };
        for o in outcomes {
            report.succeeded += o.succeeded;
            report.failures.extend(o.failures);
            report.rows_removed += o.rows_removed;
            report.rows_decorrelated += o.rows_decorrelated;
            report.rows_modified += o.rows_modified;
            report.placeholders_created += o.placeholders_created;
            report.vault_entries += o.vault_entries;
            report.degraded += o.degraded;
        }
        report.duration = started.elapsed();
        Ok(report)
    }

    /// Users per batched vault flush inside one `apply_many` shard.
    pub const VAULT_PUT_BATCH: usize = 32;

    /// One shard of [`Disguiser::apply_many`]: applies the disguise to its
    /// users chunk by chunk, flushing each chunk's vault entries in one
    /// batched put and then closing their WAL intent brackets.
    fn apply_shard(
        &self,
        spec: &DisguiseSpec,
        users: &[Value],
        opts: ApplyOptions,
    ) -> ShardOutcome {
        let mut out = ShardOutcome::default();
        for chunk in users.chunks(Self::VAULT_PUT_BATCH) {
            let mut pending: Vec<PendingVaultPut> = Vec::new();
            let mut applied: Vec<(Value, DisguiseReport)> = Vec::new();
            for user in chunk {
                let mut params = HashMap::new();
                params.insert("UID".to_string(), user.clone());
                match self.apply_inner(spec, user, &params, opts, Some(&mut pending)) {
                    Ok(report) => applied.push((user.clone(), report)),
                    Err(e) => out.failures.push((user.clone(), e.to_string())),
                }
            }
            for (_, r) in &applied {
                out.rows_removed += r.rows_removed;
                out.rows_decorrelated += r.rows_decorrelated;
                out.rows_modified += r.rows_modified;
                out.placeholders_created += r.placeholders_created;
            }
            let flush_failures = self.flush_pending_puts(pending, opts, &mut out);
            // Close every intent bracket the chunk opened — including
            // degraded ones, whose history rows now say "irreversible"
            // (recovery treats a present history row as committed either
            // way). Losing a marker here is benign: see apply_with_options.
            for (_, r) in &applied {
                if r.wal_intent {
                    let _ = self.db.wal_disguise_commit(r.disguise_id);
                }
            }
            for (user, reason) in flush_failures {
                match applied.iter().position(|(u, _)| *u == user) {
                    Some(i) => {
                        applied.remove(i);
                        out.failures.push((user, reason));
                    }
                    None => out.failures.push((user, reason)),
                }
            }
            out.succeeded += applied.len();
        }
        out
    }

    /// Flushes one chunk's deferred vault puts: the fast path is a single
    /// batched `put_all` per tier. If a batch fails, falls back to
    /// idempotent per-entry puts (a prefix of the batch may already be
    /// stored) and applies the vault failure policy to each entry that
    /// still cannot be stored. Returns the users to be marked failed.
    fn flush_pending_puts(
        &self,
        pending: Vec<PendingVaultPut>,
        opts: ApplyOptions,
        out: &mut ShardOutcome,
    ) -> Vec<(Value, String)> {
        if pending.is_empty() {
            return Vec::new();
        }
        let mut failures = Vec::new();
        for tier in [VaultTier::Global, VaultTier::PerUser] {
            let batch: Vec<&PendingVaultPut> = pending.iter().filter(|p| p.tier == tier).collect();
            if batch.is_empty() {
                continue;
            }
            let entries: Vec<VaultEntry> = batch.iter().map(|p| p.entry.clone()).collect();
            if self.vaults.put_all(tier, &entries).is_ok() {
                out.vault_entries += entries.len();
                continue;
            }
            // Batch failed partway: settle each entry individually.
            for p in &batch {
                let already = self
                    .vaults
                    .entries_for_disguise(&p.entry.user_id, p.disguise_id)
                    .map(|es| es.contains(&p.entry))
                    .unwrap_or(false);
                if already {
                    out.vault_entries += 1;
                    continue;
                }
                let vault_err = match self.vaults.put(tier, &p.entry) {
                    Ok(()) => {
                        out.vault_entries += 1;
                        continue;
                    }
                    Err(e) => e,
                };
                // The database changes are committed; nothing to roll
                // back. Degrade (or spool) instead, so the history row
                // never offers a reveal it cannot honor.
                match opts.vault_failure_policy {
                    VaultFailurePolicy::Require | VaultFailurePolicy::Degrade => {
                        let reason = format!("vault write failed: {vault_err}");
                        let _ = self.history.mark_degraded(p.disguise_id, &reason);
                        out.degraded += 1;
                        if opts.vault_failure_policy == VaultFailurePolicy::Require {
                            failures.push((p.entry.user_id.clone(), reason));
                        }
                    }
                    VaultFailurePolicy::Buffer => match lock_unpoisoned(&self.journal).as_ref() {
                        Some(journal) => {
                            if let Err(e) = journal.append(tier, &p.entry) {
                                failures.push((p.entry.user_id.clone(), e.to_string()));
                            } else {
                                out.vault_entries += 1;
                            }
                        }
                        None => {
                            failures.push((p.entry.user_id.clone(), Error::NoJournal.to_string()))
                        }
                    },
                }
            }
        }
        failures
    }

    fn apply_inner(
        &self,
        spec: &DisguiseSpec,
        user_value: &Value,
        params: &HashMap<String, Value>,
        opts: ApplyOptions,
        mut vault_sink: Option<&mut Vec<PendingVaultPut>>,
    ) -> Result<DisguiseReport> {
        let mut report = DisguiseReport {
            name: spec.name.clone(),
            user_id: user_value.clone(),
            remaining_budget: opts.row_budget,
            ..DisguiseReport::default()
        };
        let now = self.db.now();

        // Composition pre-pass: temporarily recorrelate rows that prior
        // disguises transformed and this disguise needs to see (§4.2).
        let recorrelated = if opts.compose {
            let _phase = self.span("recorrelate");
            self.recorrelate_for(spec, user_value, params, opts.optimize, &mut report)?
        } else {
            Vec::new()
        };

        // Main pass: the spec's predicated transformations, in order.
        let mut ops: Vec<RevealOp> = Vec::new();
        for section in &spec.tables {
            for pt in &section.transformations {
                self.apply_transform(
                    spec,
                    &section.table,
                    pt,
                    None,
                    params,
                    &mut ops,
                    &mut report,
                )?;
            }
        }

        // Redo pass: re-disguise recorrelated rows the main pass left
        // untouched, restoring the prior disguise's protection. Writes are
        // collected per table and flushed in one batch each.
        let redo_span = self.span("redo_pass");
        let mut redo: Vec<(String, PkUpdates)> = Vec::new();
        for r in &recorrelated {
            let schema = self.db.schema(&r.table)?;
            let pred = pk_pred(&r.pk_column, &r.pk);
            let rows = self
                .db
                .select_rows(&r.table, Some(&pred), &HashMap::new())?;
            let Some(row) = rows.first() else { continue };
            let mut to_redo: Vec<(usize, Value)> = Vec::new();
            for (col, original, disguised) in &r.cols {
                let idx = schema.require_column(col)?;
                if row[idx] == *original {
                    to_redo.push((idx, disguised.clone()));
                }
            }
            if to_redo.is_empty() {
                continue;
            }
            match redo.iter_mut().find(|(t, _)| t == &r.table) {
                Some((_, batch)) => batch.push((r.pk.clone(), to_redo)),
                None => redo.push((r.table.clone(), vec![(r.pk.clone(), to_redo)])),
            }
        }
        for (table, updates) in &redo {
            report.rows_redone += self.db.update_rows_by_pk(table, updates)?;
        }
        drop(redo_span);

        // End-state assertions (§7): zero rows may match. A budget-paused
        // application skips them — rows the budget left untouched would
        // fail them by design; the eventual complete run enforces them.
        if !report.budget_exhausted {
            let assert_span = self.span("assertions");
            for assertion in &spec.assertions {
                let matching =
                    self.db
                        .select_rows(&assertion.table, Some(&assertion.pred), params)?;
                if !matching.is_empty() {
                    return Err(Error::AssertionFailed {
                        disguise: spec.name.clone(),
                        assertion: assertion.description.clone(),
                        matching_rows: matching.len(),
                    });
                }
            }
            drop(assert_span);
        }

        // Record history and reveal functions.
        let id = {
            let _phase = self.span("history_append");
            self.history
                .record(&spec.name, user_value, now, spec.reversible)?
        };
        report.disguise_id = id;
        if spec.reversible && !ops.is_empty() {
            let _phase = self.span("vault_write");
            // Durable intent marker *before* any vault-side write: if the
            // process dies between the vault put below and the database
            // commit, recovery finds this intent with no committed history
            // row and undoes the orphaned vault entry (see
            // [`Disguiser::resolve_recovered_intents`]). No-op without a
            // WAL attached.
            if self.db.wal().is_some() {
                self.db.wal_disguise_intent(id, user_value)?;
                report.wal_intent = true;
            }
            let entry = VaultEntry {
                disguise_id: id,
                disguise_name: spec.name.clone(),
                user_id: user_value.clone(),
                ops,
                created_at: now,
                expires_at: spec.expires_after.map(|d| now + d),
            };
            // Deferred mode (`apply_many`): the caller batches vault puts
            // across users, so just hand the entry over. The intent marker
            // above is already durable, bracketing the deferred put.
            if let Some(sink) = vault_sink.as_mut() {
                sink.push(PendingVaultPut {
                    tier: spec.vault_tier,
                    entry,
                    disguise_id: id,
                });
                return Ok(report);
            }
            if let Err(vault_err) = self.vaults.put(spec.vault_tier, &entry) {
                match opts.vault_failure_policy {
                    // Abort: the caller rolls the transaction back; the
                    // history row above vanishes with it.
                    VaultFailurePolicy::Require => return Err(Error::Vault(vault_err)),
                    // Proceed irreversibly: the reveal functions are lost,
                    // so the history row must never offer a reveal.
                    VaultFailurePolicy::Degrade => {
                        let reason = format!("vault write failed: {vault_err}");
                        self.history.mark_degraded(id, &reason)?;
                        report.vault_degraded = Some(reason);
                    }
                    // Proceed reversibly: spool the entry durably; if even
                    // the journal fails, abort as under Require.
                    VaultFailurePolicy::Buffer => {
                        match lock_unpoisoned(&self.journal).as_ref() {
                            Some(journal) => journal.append(spec.vault_tier, &entry)?,
                            None => return Err(Error::NoJournal),
                        }
                        report.vault_buffered = true;
                    }
                }
            }
        }
        Ok(report)
    }

    /// Applies one predicated transformation, optionally restricted by an
    /// extra predicate (used by reveal re-application). Appends reveal ops.
    #[allow(clippy::too_many_arguments)] // Internal plumbing shared with reveal.
    pub(crate) fn apply_transform(
        &self,
        spec: &DisguiseSpec,
        table: &str,
        pt: &PredicatedTransform,
        extra_pred: Option<&Expr>,
        params: &HashMap<String, Value>,
        ops: &mut Vec<RevealOp>,
        report: &mut DisguiseReport,
    ) -> Result<()> {
        let pred = combine_preds(pt.pred.as_ref(), extra_pred);
        // Budget gate: a spent budget skips the transform entirely (and
        // every later one) — the re-run picks them up.
        if report.remaining_budget == Some(0) {
            report.budget_exhausted = true;
            return Ok(());
        }
        let mut phase = self.span("transform");
        if let Some(g) = phase.as_mut() {
            g.attr("table", table);
            g.attr(
                "kind",
                match &pt.transform {
                    Transformation::Remove => "remove",
                    Transformation::Decorrelate { .. } => "decorrelate",
                    Transformation::Modify { .. } => "modify",
                },
            );
        }
        match &pt.transform {
            Transformation::Remove => {
                // The delete both scans the predicate and writes, so it
                // counts as the transform's write phase.
                let removed = {
                    let _w = self.span("transform_write");
                    self.db.delete_where_returning(table, &pred, params)?
                };
                report.rows_removed += removed.len();
                if let Some(b) = report.remaining_budget.as_mut() {
                    *b = b.saturating_sub(removed.len());
                }
                // Column names are recorded so reveal can adapt rows if
                // the schema evolves in between (paper §7).
                let mut name_cache: HashMap<String, Vec<String>> = HashMap::new();
                for (t, row) in removed {
                    let columns = match name_cache.get(&t) {
                        Some(c) => c.clone(),
                        None => {
                            let schema = self.db.schema(&t)?;
                            let names: Vec<String> =
                                schema.columns.iter().map(|c| c.name.clone()).collect();
                            name_cache.insert(t.clone(), names.clone());
                            names
                        }
                    };
                    ops.push(RevealOp::ReinsertRow {
                        table: t,
                        columns,
                        row,
                    });
                }
            }
            Transformation::Decorrelate {
                fk_column,
                parent_table,
            } => {
                let schema = self.db.schema(table)?;
                let (pk_idx, pk_col) = pk_of(&schema, "decorrelation")?;
                let fk_idx = schema.require_column(fk_column)?;
                let parent_schema = self.db.schema(parent_table)?;
                let (_, parent_pk_col) = pk_of(&parent_schema, "placeholder creation")?;
                let rows = {
                    let _scan = self.span("predicate_scan");
                    self.db.select_rows(table, Some(&pred), params)?
                };
                // Batched apply: one placeholder insert batch, then all
                // fk rewrites in one engine round trip (instead of two
                // statements per row).
                let mut targets: Vec<&edna_relational::Row> =
                    rows.iter().filter(|r| !r[fk_idx].is_null()).collect();
                if let Some(b) = report.remaining_budget.as_mut() {
                    if targets.len() > *b {
                        targets.truncate(*b);
                        report.budget_exhausted = true;
                    }
                    *b -= targets.len();
                }
                let originals: Vec<Value> = targets.iter().map(|r| r[fk_idx].clone()).collect();
                let placeholder_pks = {
                    let _gen = self.span("placeholder_gen");
                    let mut rng = lock_unpoisoned(&self.rng);
                    create_placeholders(&self.db, spec, parent_table, &originals, &mut *rng)?
                };
                report.placeholders_created += placeholder_pks.len();
                let updates: Vec<(Value, Vec<(usize, Value)>)> = targets
                    .iter()
                    .zip(&placeholder_pks)
                    .map(|(row, ppk)| (row[pk_idx].clone(), vec![(fk_idx, ppk.clone())]))
                    .collect();
                report.rows_decorrelated += {
                    let _w = self.span("transform_write");
                    self.db.update_rows_by_pk(table, &updates)?
                };
                for ((row, original), placeholder_pk) in
                    targets.iter().zip(originals).zip(placeholder_pks)
                {
                    ops.push(RevealOp::RestoreColumns {
                        table: table.to_string(),
                        pk_column: pk_col.clone(),
                        pk: row[pk_idx].clone(),
                        columns: vec![(fk_column.clone(), original)],
                    });
                    ops.push(RevealOp::RemovePlaceholder {
                        table: parent_table.clone(),
                        pk_column: parent_pk_col.clone(),
                        pk: placeholder_pk,
                    });
                }
            }
            Transformation::Modify { column, modifier } => {
                let schema = self.db.schema(table)?;
                let (pk_idx, pk_col) = pk_of(&schema, "modification")?;
                let col_idx = schema.require_column(column)?;
                let rows = {
                    let _scan = self.span("predicate_scan");
                    self.db.select_rows(table, Some(&pred), params)?
                };
                // Batched apply: compute every new value first (RNG draws
                // stay in row order, so seeded runs are unchanged), then
                // flush all column writes in one engine round trip.
                let mut updates: Vec<(Value, Vec<(usize, Value)>)> = Vec::new();
                {
                    let mut rng = lock_unpoisoned(&self.rng);
                    for row in &rows {
                        let original = row[col_idx].clone();
                        let new_value = modifier.apply(&original, &mut *rng);
                        // Already-settled rows (a converging modifier
                        // re-run over its own output) consume no budget,
                        // so a paused run resumes past them cleanly.
                        if new_value == original {
                            continue;
                        }
                        if report.remaining_budget == Some(updates.len()) {
                            report.budget_exhausted = true;
                            break;
                        }
                        updates.push((row[pk_idx].clone(), vec![(col_idx, new_value)]));
                        ops.push(RevealOp::RestoreColumns {
                            table: table.to_string(),
                            pk_column: pk_col.clone(),
                            pk: row[pk_idx].clone(),
                            columns: vec![(column.clone(), original)],
                        });
                    }
                }
                if let Some(b) = report.remaining_budget.as_mut() {
                    *b -= updates.len();
                }
                report.rows_modified += {
                    let _w = self.span("transform_write");
                    self.db.update_rows_by_pk(table, &updates)?
                };
            }
        }
        Ok(())
    }

    /// The composition pre-pass: reads reveal functions of prior active
    /// disguises and temporarily restores original values for rows this
    /// disguise's predicates need to see.
    fn recorrelate_for(
        &self,
        spec: &DisguiseSpec,
        user_value: &Value,
        params: &HashMap<String, Value>,
        optimize: bool,
        report: &mut DisguiseReport,
    ) -> Result<Vec<Recorrelated>> {
        let events = self.history.events()?;
        let priors: Vec<_> = events
            .into_iter()
            .filter(|e| !e.reverted && e.reversible)
            .filter(|e| e.user_id.is_null() || e.user_id == *user_value)
            .collect();
        if priors.is_empty() {
            return Ok(Vec::new());
        }
        let plan = if optimize {
            let specs = read_unpoisoned(&self.specs);
            let prior_specs: Vec<&DisguiseSpec> =
                priors.iter().filter_map(|e| specs.get(&e.name)).collect();
            plan_composition(spec, &prior_specs)
        } else {
            CompositionPlan::default()
        };

        let mut out: Vec<Recorrelated> = Vec::new();
        for event in &priors {
            let entries = self.vaults.entries_for_disguise(&event.user_id, event.id)?;
            for entry in entries {
                for op in &entry.ops {
                    let RevealOp::RestoreColumns {
                        table,
                        pk_column,
                        pk,
                        columns,
                    } = op
                    else {
                        // Rows a prior disguise removed need no
                        // decorrelation (§4.2: disguises compose naturally
                        // there); placeholders carry no user data.
                        continue;
                    };
                    let affected = self.affected_transforms(spec, table, columns, &plan);
                    if affected.skipped > 0 {
                        report.skipped_redundant += affected.skipped;
                    }
                    if affected.transforms.is_empty() {
                        continue;
                    }
                    let schema = self.db.schema(table)?;
                    let pred = pk_pred(pk_column, pk);
                    // Membership check: would the row match one of the
                    // affected predicates with its original values back?
                    // When every predicate column is covered by the vault
                    // op (plus the pk), membership is decidable from the
                    // reveal function alone — the "selective
                    // reintroduction" of §6 — without touching the DB.
                    let op_decides = affected.transforms.iter().all(|pt| {
                        pt.pred.as_ref().is_some_and(|p| {
                            p.referenced_columns().iter().all(|c| {
                                c.eq_ignore_ascii_case(pk_column)
                                    || columns.iter().any(|(oc, _)| oc.eq_ignore_ascii_case(c))
                            })
                        })
                    });
                    let current: Option<Vec<Value>>;
                    let overlay_cols: Vec<String>;
                    let overlay: Vec<Value>;
                    if op_decides {
                        current = None;
                        overlay_cols = std::iter::once(pk_column.clone())
                            .chain(columns.iter().map(|(c, _)| c.clone()))
                            .collect();
                        overlay = std::iter::once(pk.clone())
                            .chain(columns.iter().map(|(_, v)| v.clone()))
                            .collect();
                    } else {
                        let rows = self.db.select_rows(table, Some(&pred), &HashMap::new())?;
                        let Some(row) = rows.into_iter().next() else {
                            continue;
                        };
                        let mut o = row.clone();
                        for (col, original) in columns {
                            let idx = schema.require_column(col)?;
                            o[idx] = original.clone();
                        }
                        current = Some(row);
                        overlay_cols = schema.columns.iter().map(|c| c.name.clone()).collect();
                        overlay = o;
                    }
                    let ctx = EvalContext {
                        columns: &overlay_cols,
                        row: &overlay,
                        params,
                        now: self.db.now(),
                    };
                    let matched = affected
                        .transforms
                        .iter()
                        .filter_map(|pt| pt.pred.as_ref())
                        .map(|p| eval_predicate(p, &ctx))
                        .collect::<edna_relational::Result<Vec<bool>>>()
                        .map_err(Error::Relational)?
                        .into_iter()
                        .any(|m| m)
                        || affected.transforms.iter().any(|pt| pt.pred.is_none());
                    if !matched {
                        continue;
                    }
                    // Fetch the row (if the fast path skipped it) to record
                    // the disguised values for the redo pass.
                    let current = match current {
                        Some(row) => row,
                        None => {
                            let rows = self.db.select_rows(table, Some(&pred), &HashMap::new())?;
                            match rows.into_iter().next() {
                                Some(row) => row,
                                None => continue, // Row removed meanwhile.
                            }
                        }
                    };
                    let mut cols: Vec<(String, Value, Value)> = Vec::new();
                    for (col, original) in columns {
                        let idx = schema.require_column(col)?;
                        cols.push((col.clone(), original.clone(), current[idx].clone()));
                    }
                    // Recorrelate: write the original values back.
                    let restores: Vec<(usize, Value)> = cols
                        .iter()
                        .map(|(col, original, _)| {
                            Ok((schema.require_column(col)?, original.clone()))
                        })
                        .collect::<Result<_>>()?;
                    self.db
                        .update_with(table, Some(&pred), &HashMap::new(), |_, r| {
                            for (idx, v) in &restores {
                                r[*idx] = v.clone();
                            }
                            Ok(())
                        })?;
                    report.rows_recorrelated += 1;
                    out.push(Recorrelated {
                        table: table.clone(),
                        pk_column: pk_column.clone(),
                        pk: pk.clone(),
                        cols,
                    });
                }
            }
        }
        Ok(out)
    }

    /// The current spec's transforms on `table` whose predicates reference
    /// any of the vault op's columns (and would therefore mis-evaluate on
    /// disguised data), minus those the plan marks redundant.
    fn affected_transforms<'s>(
        &self,
        spec: &'s DisguiseSpec,
        table: &str,
        op_columns: &[(String, Value)],
        plan: &CompositionPlan,
    ) -> AffectedTransforms<'s> {
        let mut result = AffectedTransforms {
            transforms: Vec::new(),
            skipped: 0,
        };
        let Some(section) = spec.table(table) else {
            return result;
        };
        for pt in &section.transformations {
            let references_op_column = match &pt.pred {
                None => true,
                Some(pred) => {
                    let cols = pred.referenced_columns();
                    op_columns
                        .iter()
                        .any(|(c, _)| cols.iter().any(|pc| pc.eq_ignore_ascii_case(c)))
                }
            };
            if !references_op_column {
                continue;
            }
            match &pt.transform {
                Transformation::Decorrelate { fk_column, .. }
                    if plan.is_redundant(table, fk_column) =>
                {
                    result.skipped += 1;
                    continue;
                }
                Transformation::Modify { column, .. }
                    if plan.is_redundant_modify(table, column) =>
                {
                    result.skipped += 1;
                    continue;
                }
                _ => {}
            }
            result.transforms.push(pt);
        }
        result
    }
}

/// What [`Disguiser::resolve_recovered_intents`] did with each open
/// intent.
#[derive(Debug, Clone, Default)]
pub struct IntentResolution {
    /// Disguise ids whose transaction had committed: vault state kept.
    pub completed: Vec<u64>,
    /// Disguise ids whose transaction never committed: orphaned vault
    /// entries and journal spools removed.
    pub undone: Vec<u64>,
}

impl IntentResolution {
    /// Whether any intent needed resolving.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty() && self.undone.is_empty()
    }
}

struct AffectedTransforms<'s> {
    transforms: Vec<&'s PredicatedTransform>,
    skipped: usize,
}

/// `pk_column = pk` as an expression.
/// Owner-hash partitioning for [`Disguiser::apply_many`]: hashes the
/// user id's SQL-literal rendering (the same key vaults and history use)
/// so every representation of an id lands in the same shard.
fn owner_shard(user: &Value, shards: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    user.to_sql_literal().hash(&mut h);
    (h.finish() % shards as u64) as usize
}

pub(crate) fn pk_pred(pk_column: &str, pk: &Value) -> Expr {
    Expr::eq(Expr::col(pk_column), Expr::lit(pk.clone()))
}

/// The primary-key index and column name of `schema`.
pub(crate) fn pk_of(schema: &TableSchema, context: &str) -> Result<(usize, String)> {
    match schema.primary_key {
        Some(i) => Ok((i, schema.columns[i].name.clone())),
        None => Err(Error::NeedsPrimaryKey {
            table: schema.name.clone(),
            context: context.to_string(),
        }),
    }
}

/// Conjoins an optional transform predicate with an optional restriction;
/// `TRUE` if both are absent.
pub(crate) fn combine_preds(pred: Option<&Expr>, extra: Option<&Expr>) -> Expr {
    match (pred, extra) {
        (Some(p), Some(e)) => Expr::and(p.clone(), e.clone()),
        (Some(p), None) => p.clone(),
        (None, Some(e)) => e.clone(),
        (None, None) => Expr::lit(true),
    }
}
