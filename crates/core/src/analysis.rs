//! Static analysis of disguise interactions.
//!
//! Paper §6 describes "a (manual) optimization that avoids unnecessarily
//! redoing decorrelation actions that have already been taken by
//! HotCRP-ConfAnon" and adds: "We imagine that we will be able to use
//! static analysis of the disguise and schema to automate this optimization
//! in the future." This module is that automation: given the current
//! disguise and the prior active disguises, it computes which of the
//! current disguise's decorrelations are *redundant* — already performed,
//! on a superset of rows, by a prior disguise — so application can skip the
//! recorrelate-then-redo round trip for them.

use std::collections::HashSet;

use crate::spec::{DisguiseSpec, Transformation};

/// The result of analyzing a disguise against its active predecessors.
#[derive(Debug, Default, Clone)]
pub struct CompositionPlan {
    /// `(lowercase table, lowercase fk column)` pairs whose decorrelation
    /// in the current spec is already covered by a prior disguise.
    pub redundant_decorrelations: HashSet<(String, String)>,
    /// `(lowercase table, lowercase column)` pairs whose deterministic
    /// modification is already covered by a prior disguise with the same
    /// effect.
    pub redundant_modifies: HashSet<(String, String)>,
}

impl CompositionPlan {
    /// Whether decorrelating `table.fk_column` again would be redundant.
    pub fn is_redundant(&self, table: &str, fk_column: &str) -> bool {
        self.redundant_decorrelations
            .contains(&(table.to_lowercase(), fk_column.to_lowercase()))
    }

    /// Whether re-modifying `table.column` would be redundant.
    pub fn is_redundant_modify(&self, table: &str, column: &str) -> bool {
        self.redundant_modifies
            .contains(&(table.to_lowercase(), column.to_lowercase()))
    }
}

/// Computes the composition plan for `current` given the specs of prior
/// active (reversible, non-reverted) disguises.
///
/// A decorrelation `current: Decorrelate(T.c -> P)` is redundant when some
/// prior spec decorrelates the same `T.c` over a *superset* of rows. We
/// establish the superset conservatively: the prior transform must be
/// unpredicated, or predicated without `$UID` while the current one is
/// `$UID`-scoped (a global sweep covers any single user's rows when the
/// predicates otherwise agree on the same column set).
pub fn plan_composition(current: &DisguiseSpec, priors: &[&DisguiseSpec]) -> CompositionPlan {
    let mut plan = CompositionPlan::default();
    for section in &current.tables {
        for pt in &section.transformations {
            match &pt.transform {
                Transformation::Decorrelate { fk_column, .. } => {
                    for prior in priors {
                        if covers(prior, &section.table, fk_column) {
                            plan.redundant_decorrelations
                                .insert((section.table.to_lowercase(), fk_column.to_lowercase()));
                        }
                    }
                }
                Transformation::Modify { column, modifier } => {
                    for prior in priors {
                        if covers_modify(prior, &section.table, column, modifier) {
                            plan.redundant_modifies
                                .insert((section.table.to_lowercase(), column.to_lowercase()));
                        }
                    }
                }
                Transformation::Remove => {}
            }
        }
    }
    plan
}

/// Whether `prior` already applies a modifier with the same deterministic
/// effect to `table.column`, over (conservatively) all rows a later
/// user-scoped disguise could target.
fn covers_modify(
    prior: &DisguiseSpec,
    table: &str,
    column: &str,
    modifier: &crate::spec::Modifier,
) -> bool {
    let Some(section) = prior.table(table) else {
        return false;
    };
    section.transformations.iter().any(|pt| {
        let Transformation::Modify {
            column: prior_col,
            modifier: prior_mod,
        } = &pt.transform
        else {
            return false;
        };
        if !prior_col.eq_ignore_ascii_case(column) || !prior_mod.same_effect(modifier) {
            return false;
        }
        match &pt.pred {
            None => true,
            Some(pred) => pred.referenced_params().is_empty(),
        }
    })
}

/// Whether `prior` decorrelates `table.fk_column` over (conservatively) all
/// rows a later user-scoped disguise could target.
fn covers(prior: &DisguiseSpec, table: &str, fk_column: &str) -> bool {
    let Some(section) = prior.table(table) else {
        return false;
    };
    section.transformations.iter().any(|pt| {
        let Transformation::Decorrelate {
            fk_column: prior_fk,
            ..
        } = &pt.transform
        else {
            return false;
        };
        if !prior_fk.eq_ignore_ascii_case(fk_column) {
            return false;
        }
        match &pt.pred {
            // Unpredicated: covers everything.
            None => true,
            // Predicated without $UID (a global sweep such as ConfAnon's
            // "all reviews"): treat as covering. Predicates with $UID are
            // another user's scope — not a superset.
            Some(pred) => pred.referenced_params().is_empty(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DisguiseSpecBuilder;

    fn gdpr_plus() -> DisguiseSpec {
        DisguiseSpecBuilder::new("HotCRP-GDPR+")
            .user_scoped()
            .remove("ReviewPreference", Some("contactId = $UID"))
            .decorrelate(
                "Review",
                Some("contactId = $UID"),
                "contactId",
                "ContactInfo",
            )
            .remove("ContactInfo", Some("contactId = $UID"))
            .build()
            .unwrap()
    }

    fn conf_anon() -> DisguiseSpec {
        DisguiseSpecBuilder::new("HotCRP-ConfAnon")
            .decorrelate("Review", None, "contactId", "ContactInfo")
            .decorrelate("PaperComment", None, "contactId", "ContactInfo")
            .build()
            .unwrap()
    }

    #[test]
    fn confanon_makes_gdpr_decorrelation_redundant() {
        let current = gdpr_plus();
        let prior = conf_anon();
        let plan = plan_composition(&current, &[&prior]);
        assert!(plan.is_redundant("Review", "contactId"));
        assert!(plan.is_redundant("review", "CONTACTID"), "case-insensitive");
        // GDPR+ has no decorrelation on PaperComment, so nothing to mark.
        assert!(!plan.is_redundant("PaperComment", "contactId"));
    }

    #[test]
    fn user_scoped_prior_does_not_cover() {
        let current = gdpr_plus();
        // A previous GDPR+ for a different user shares the decorrelation
        // but only over that user's rows: not a superset.
        let prior = gdpr_plus();
        let plan = plan_composition(&current, &[&prior]);
        assert!(!plan.is_redundant("Review", "contactId"));
    }

    #[test]
    fn different_column_does_not_cover() {
        let current = gdpr_plus();
        let prior = DisguiseSpecBuilder::new("other")
            .decorrelate("Review", None, "requestedBy", "ContactInfo")
            .build()
            .unwrap();
        let plan = plan_composition(&current, &[&prior]);
        assert!(!plan.is_redundant("Review", "contactId"));
    }

    #[test]
    fn no_priors_no_redundancy() {
        let plan = plan_composition(&gdpr_plus(), &[]);
        assert!(plan.redundant_decorrelations.is_empty());
    }

    #[test]
    fn global_predicated_prior_covers_amid_user_scoped_priors() {
        // Two priors: another user's GDPR+ (not a superset) and a global
        // sweep predicated without $UID (a superset). The mix must still
        // mark the decorrelation redundant — coverage is per-prior, not
        // all-priors.
        let current = gdpr_plus();
        let other_user = gdpr_plus();
        let sweep = DisguiseSpecBuilder::new("sweep")
            .decorrelate("Review", Some("reviewType = 1"), "contactId", "ContactInfo")
            .build()
            .unwrap();
        let plan = plan_composition(&current, &[&other_user, &sweep]);
        assert!(plan.is_redundant("Review", "contactId"));
        // The plan's sets are exact, lowercase pairs.
        assert_eq!(
            plan.redundant_decorrelations,
            [("review".to_string(), "contactid".to_string())]
                .into_iter()
                .collect(),
        );
        assert!(plan.redundant_modifies.is_empty());
    }

    #[test]
    fn redundant_modify_is_case_insensitive_and_effect_sensitive() {
        use crate::spec::Modifier;
        let current = DisguiseSpecBuilder::new("current")
            .user_scoped()
            .modify(
                "ActionLog",
                Some("contactId = $UID"),
                "ipaddr",
                Modifier::SetNull,
            )
            .build()
            .unwrap();
        // Global prior nulling the same column, spelled in another case.
        let prior = DisguiseSpecBuilder::new("prior")
            .modify("ACTIONLOG", None, "IPADDR", Modifier::SetNull)
            .build()
            .unwrap();
        let plan = plan_composition(&current, &[&prior]);
        assert!(plan.is_redundant_modify("actionlog", "IpAddr"));
        assert_eq!(
            plan.redundant_modifies,
            [("actionlog".to_string(), "ipaddr".to_string())]
                .into_iter()
                .collect(),
        );

        // A different deterministic effect is not a cover...
        let redacting = DisguiseSpecBuilder::new("prior2")
            .modify("ActionLog", None, "ipaddr", Modifier::Redact)
            .build()
            .unwrap();
        assert!(plan_composition(&current, &[&redacting])
            .redundant_modifies
            .is_empty());

        // ...and neither is another user's $UID-scoped modify.
        let scoped = DisguiseSpecBuilder::new("prior3")
            .user_scoped()
            .modify(
                "ActionLog",
                Some("contactId = $UID"),
                "ipaddr",
                Modifier::SetNull,
            )
            .build()
            .unwrap();
        assert!(plan_composition(&current, &[&scoped])
            .redundant_modifies
            .is_empty());
    }
}
