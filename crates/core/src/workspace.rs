//! On-disk workspace: database + disguiser wired to file vaults.
//!
//! Historically this lived in the CLI crate; it moved here so that both
//! the CLI and the network server (`edna-server`) can open the same
//! state layout, and so a `Workspace` is a `Send + Sync` service value
//! that can be shared across server worker threads behind an `Arc`.
//!
//! State layout for a workspace at path `STATE`:
//!
//! - `STATE` — database snapshot (see `edna_relational::snapshot`);
//! - `STATE.wal` — the write-ahead log: every committed statement is
//!   fsynced here before it returns, so work between `save`s survives a
//!   crash (replayed on the next open);
//! - `STATE.lock` — advisory PID lock file held for the lifetime of the
//!   workspace, so two processes cannot interleave WAL appends (stale
//!   locks from crashed processes are reclaimed, see
//!   [`edna_util::lockfile`]);
//! - `STATE.metrics` — Prometheus-text metrics sidecar;
//! - `STATE.vault/global/`, `STATE.vault/user/` — file-backed vault tiers;
//! - `STATE.vault/pending.journal` — spooled vault writes awaiting flush;
//! - registered disguise DSL texts live *in* the database, in the reserved
//!   `_edna_spec_registry` table, so every command sees the same specs.
//!
//! The per-user vault tier is encrypted when a passphrase is given
//! (per-user keys derived from it), matching the paper's §4.2 external
//! encrypted per-user vaults; without one it is plaintext, like the
//! prototype (§5).
//!
//! Every [`Workspace::open`] is a recovery pass: stale temp files are
//! swept (or, after a crash mid-save, a complete checksum-valid snapshot
//! temp is promoted), the WAL's torn tail is truncated, its tail beyond
//! the snapshot watermark is replayed, and half-applied disguises are
//! rolled forward or back against the history table (see
//! [`crate::Disguiser::resolve_recovered_intents`]). `edna recover
//! --verify` reports what such a pass did and self-checks integrity.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use edna_relational::{snapshot, Database, RecoveryReport, Value};
use edna_util::lockfile::LockFile;
use edna_vault::{FileStore, ShipFn, ShipSlot, TieredVault, Vault, VaultJournal};

use crate::apply::{Disguiser, IntentResolution};
use crate::error::{Error, Result};
use crate::Tracer;

/// Reserved table persisting registered disguise DSL texts.
pub const SPEC_REGISTRY_TABLE: &str = "_edna_spec_registry";

/// Reserved table persisting registered policy DSL texts.
pub const POLICY_REGISTRY_TABLE: &str = "_edna_policy_registry";

/// An open workspace: database + disguiser wired to on-disk vaults,
/// holding the state lock for its lifetime.
pub struct Workspace {
    /// Path of the snapshot file.
    pub path: PathBuf,
    /// The database (loaded from the snapshot, WAL tail replayed).
    pub db: Database,
    /// The disguising tool (vaults under `<path>.vault/`).
    pub edna: Disguiser,
    /// What open-time recovery did (snapshot promotion, WAL replay).
    pub last_recovery: RecoveryReport,
    /// How open disguise intents found in the WAL were resolved.
    pub last_resolution: IntentResolution,
    /// Replication taps of the vault-side files, keyed by the relative
    /// directory prefix a follower should mirror them under.
    ship_slots: Vec<(&'static str, ShipSlot)>,
    /// The `<state>.lock` advisory lock, released on drop.
    _lock: LockFile,
}

fn vault_dir(state: &Path, tier: &str) -> PathBuf {
    let mut os = state.as_os_str().to_os_string();
    os.push(".vault");
    PathBuf::from(os).join(tier)
}

/// `<state><suffix>` — the workspace sidecar naming convention.
pub fn sidecar(state: &Path, suffix: &str) -> PathBuf {
    let mut os = state.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

fn ws_err(msg: String) -> Error {
    Error::Workspace(msg)
}

/// Fsyncs the directory containing `path` so a rename into it is durable.
/// Best-effort: not every filesystem supports opening directories.
fn fsync_parent(path: &Path) {
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// If the authoritative snapshot is missing but a complete,
/// checksum-valid `.tmp` exists (crash after the temp was fully written
/// and fsynced, before the rename), promote the temp. A temp that fails
/// the checksum is swept; a temp beside a live snapshot is stale and
/// swept too.
fn resolve_snapshot_tmp(path: &Path) -> Result<bool> {
    let tmp = path.with_extension("tmp");
    if !tmp.exists() {
        return Ok(false);
    }
    if !path.exists() {
        if let Ok(bytes) = std::fs::read(&tmp) {
            if snapshot::decode_checked(&bytes).is_ok() {
                std::fs::rename(&tmp, path)
                    .map_err(|e| ws_err(format!("cannot promote {}: {e}", tmp.display())))?;
                fsync_parent(path);
                return Ok(true);
            }
        }
    }
    std::fs::remove_file(&tmp)
        .map_err(|e| ws_err(format!("cannot sweep stale {}: {e}", tmp.display())))?;
    Ok(false)
}

impl Workspace {
    /// Creates a fresh workspace at `path` (fails if it exists).
    pub fn init(path: impl AsRef<Path>, passphrase: Option<&str>) -> Result<Workspace> {
        let path = path.as_ref();
        if path.exists() {
            return Err(ws_err(format!("{} already exists", path.display())));
        }
        // Hold the lock across setup so a concurrent open cannot observe
        // the half-initialized state; open() then re-acquires it.
        {
            let _lock = Self::acquire_lock(path)?;
            // A stale log from a deleted workspace must not replay into
            // the fresh one.
            let wal = sidecar(path, ".wal");
            if wal.exists() {
                std::fs::remove_file(&wal)
                    .map_err(|e| ws_err(format!("cannot remove stale {}: {e}", wal.display())))?;
            }
            let db = Database::new();
            ensure_registry(&db)?;
            db.save(path)?;
        }
        Self::open(path, passphrase)
    }

    fn acquire_lock(path: &Path) -> Result<LockFile> {
        LockFile::acquire(sidecar(path, ".lock")).map_err(|e| ws_err(e.to_string()))
    }

    /// Opens an existing workspace, recovering whatever a crash left
    /// behind:
    ///
    /// - a complete checksum-valid snapshot `.tmp` with no authoritative
    ///   snapshot (crash between temp fsync and rename) is promoted;
    ///   stale temps (snapshot and metrics sidecar) are swept;
    /// - the WAL's torn tail is truncated and committed frames beyond the
    ///   snapshot watermark are replayed;
    /// - disguises that logged an intent but never committed are resolved
    ///   (rolled forward or fully undone) against the history table;
    /// - if recovery changed anything, the result is checkpointed so the
    ///   next open starts clean.
    ///
    /// The file-backed vault tiers likewise sweep their temp files and
    /// truncate torn record tails when opened.
    ///
    /// The `<state>.lock` file is taken first and held until the
    /// workspace drops; a second process opening the same state gets a
    /// [`Error::Workspace`] naming the holding PID.
    pub fn open(path: impl AsRef<Path>, passphrase: Option<&str>) -> Result<Workspace> {
        let path = path.as_ref().to_path_buf();
        let lock = Self::acquire_lock(&path)?;
        let promoted = resolve_snapshot_tmp(&path)?;
        let metrics_tmp = sidecar(&path, ".metrics.tmp");
        if metrics_tmp.exists() {
            std::fs::remove_file(&metrics_tmp).map_err(|e| {
                ws_err(format!("cannot sweep stale {}: {e}", metrics_tmp.display()))
            })?;
        }
        let (db, mut report) = Database::open_durable(Some(&path), &sidecar(&path, ".wal"))?;
        report.snapshot_promoted = promoted;
        ensure_registry(&db)?;
        let global_store = FileStore::open(vault_dir(&path, "global"))?;
        let user_store = FileStore::open(vault_dir(&path, "user"))?;
        // The stores move behind trait objects next; keep their
        // replication tap slots so `set_vault_ship_hook` can still reach
        // the live stores later.
        let mut ship_slots = vec![
            ("global", global_store.ship_slot()),
            ("user", user_store.ship_slot()),
        ];
        let global = Vault::plain(global_store);
        let per_user = match passphrase {
            Some(p) => Vault::encrypted_derived(user_store, p, 0xC11),
            None => Vault::plain(user_store),
        };
        let edna = Disguiser::with_vaults(db.clone(), TieredVault::new(global, per_user));
        let journal = VaultJournal::open(sidecar(&path, ".vault").join("pending.journal"))?;
        ship_slots.push(("journal", journal.ship_slot()));
        edna.set_vault_journal(journal);
        // Re-register persisted specs.
        let specs = db.execute(&format!(
            "SELECT dsl FROM {SPEC_REGISTRY_TABLE} ORDER BY id"
        ))?;
        for row in specs.rows {
            let dsl = row[0].as_text()?;
            edna.register_dsl(dsl)?;
        }
        let resolution = edna.resolve_recovered_intents(&report.open_intents)?;
        let ws = Workspace {
            path,
            db,
            edna,
            last_recovery: report,
            last_resolution: resolution,
            ship_slots,
            _lock: lock,
        };
        // Checkpoint what recovery rebuilt: fold the replayed tail into
        // the snapshot so the next open starts from a clean log.
        if ws.last_recovery.acted() || !ws.last_resolution.is_empty() {
            ws.save()?;
        }
        Ok(ws)
    }

    /// Persists the database snapshot (checkpointing — truncating — the
    /// WAL), plus a `<state>.metrics` sidecar with the Prometheus-text
    /// rendering of this process's metrics registry (readable later via
    /// `edna stats`). The sidecar is written with the same
    /// temp-write + fsync + atomic-rename discipline as the snapshot, so
    /// a crash mid-save never leaves a torn sidecar.
    pub fn save(&self) -> Result<()> {
        self.db.save(&self.path)?;
        let target = self.metrics_path();
        let tmp = sidecar(&self.path, ".metrics.tmp");
        (|| -> std::io::Result<()> {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.db.metrics().render_prometheus().as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, &target)?;
            fsync_parent(&target);
            Ok(())
        })()
        .map_err(|e| ws_err(format!("cannot write metrics sidecar: {e}")))?;
        Ok(())
    }

    /// Where the metrics sidecar of this workspace lives.
    pub fn metrics_path(&self) -> PathBuf {
        sidecar(&self.path, ".metrics")
    }

    /// Where the write-ahead log of this workspace lives.
    pub fn wal_path(&self) -> PathBuf {
        sidecar(&self.path, ".wal")
    }

    /// Installs (or with `None` removes) a replication tap over the
    /// vault-side files. The hook sees every durable mutation of the
    /// vault tiers and the pending-write journal as raw bytes (sealed
    /// payloads ship sealed), with the file name prefixed by where it
    /// lives relative to `<state>.vault/`: `global/<file>`,
    /// `user/<file>`, or `journal/pending.journal`. Hooks run inside the
    /// emitting store's lock — enqueue only, never block.
    pub fn set_vault_ship_hook(&self, hook: Option<Arc<ShipFn>>) {
        for (prefix, slot) in &self.ship_slots {
            match &hook {
                Some(h) => {
                    let h = Arc::clone(h);
                    let prefix = *prefix;
                    slot.install(Some(Arc::new(move |kind, name, bytes: &[u8]| {
                        h(kind, &format!("{prefix}/{name}"), bytes);
                    })));
                }
                None => slot.install(None),
            }
        }
    }

    /// The replication epoch recorded in the WAL (0 until the first
    /// promotion).
    pub fn epoch(&self) -> u64 {
        self.db.wal().map(|w| w.epoch()).unwrap_or(0)
    }

    /// Durably advances the replication epoch by one and returns the new
    /// value. Used by `edna promote` to fence a deposed primary: stream
    /// frames carry the epoch, and a follower refuses any peer whose
    /// epoch is behind its own.
    pub fn bump_epoch(&self) -> Result<u64> {
        let wal = self
            .db
            .wal()
            .ok_or_else(|| ws_err("workspace has no write-ahead log attached".to_string()))?;
        Ok(wal.bump_epoch()?)
    }

    /// Emits a retroactive `recovery` span (plus a child per resolved
    /// intent) describing what this open's recovery pass did, for
    /// `--trace-out` exports.
    pub fn record_recovery_span(&self, tracer: &Tracer) {
        let r = &self.last_recovery;
        let started = Instant::now()
            .checked_sub(r.duration)
            .unwrap_or_else(Instant::now);
        let id = tracer.record(
            None,
            "recovery",
            started,
            r.duration,
            vec![
                ("frames_scanned".into(), r.frames_scanned.to_string()),
                ("frames_replayed".into(), r.frames_replayed.to_string()),
                ("torn_bytes".into(), r.torn_bytes.to_string()),
                ("snapshot_promoted".into(), r.snapshot_promoted.to_string()),
            ],
        );
        for (label, ids) in [
            ("intent_completed", &self.last_resolution.completed),
            ("intent_undone", &self.last_resolution.undone),
        ] {
            for d in ids {
                tracer.record(
                    Some(id),
                    label,
                    started,
                    std::time::Duration::ZERO,
                    vec![("disguise_id".into(), d.to_string())],
                );
            }
        }
    }

    /// Registers a disguise from DSL text and persists it in the registry.
    pub fn register_spec(&self, dsl: &str) -> Result<String> {
        let name = self.edna.register_dsl(dsl)?;
        let quoted = name.replace('\'', "''");
        self.db.execute(&format!(
            "DELETE FROM {SPEC_REGISTRY_TABLE} WHERE name = '{quoted}'"
        ))?;
        self.db.insert_row(
            SPEC_REGISTRY_TABLE,
            &[
                ("name", Value::Text(name.clone())),
                ("dsl", Value::Text(dsl.to_string())),
            ],
        )?;
        self.save()?;
        Ok(name)
    }

    /// Names of registered disguises, sorted.
    pub fn spec_names(&self) -> Result<Vec<String>> {
        let r = self.db.execute(&format!(
            "SELECT name FROM {SPEC_REGISTRY_TABLE} ORDER BY name"
        ))?;
        r.rows
            .into_iter()
            .map(|row| Ok(row[0].as_text()?.to_string()))
            .collect()
    }

    /// Registers a policy from DSL text and persists it in the policy
    /// registry. Policies are validated syntactically here; whether the
    /// disguises they reference exist and have the right scope is the
    /// audit's job (`E053`), so a policy can be registered before its
    /// disguises.
    pub fn register_policy(&self, dsl: &str) -> Result<String> {
        let policy = crate::policy::parse_policy(dsl)?;
        let name = policy.name().to_string();
        let quoted = name.replace('\'', "''");
        // Re-registering keeps the persisted last-run stamp: updating a
        // policy's text must not make it re-fire out of cadence.
        let prev = self.db.execute(&format!(
            "SELECT last_run FROM {POLICY_REGISTRY_TABLE} WHERE name = '{quoted}'"
        ))?;
        let last_run = prev
            .rows
            .first()
            .map(|row| row[0].clone())
            .unwrap_or(Value::Null);
        self.db.execute(&format!(
            "DELETE FROM {POLICY_REGISTRY_TABLE} WHERE name = '{quoted}'"
        ))?;
        self.db.insert_row(
            POLICY_REGISTRY_TABLE,
            &[
                ("name", Value::Text(name.clone())),
                ("dsl", Value::Text(dsl.to_string())),
                ("last_run", last_run),
            ],
        )?;
        self.save()?;
        Ok(name)
    }

    /// Names of registered policies, sorted.
    pub fn policy_names(&self) -> Result<Vec<String>> {
        let r = self.db.execute(&format!(
            "SELECT name FROM {POLICY_REGISTRY_TABLE} ORDER BY name"
        ))?;
        r.rows
            .into_iter()
            .map(|row| Ok(row[0].as_text()?.to_string()))
            .collect()
    }

    /// The registered policies, parsed, in registration order.
    pub fn policies(&self) -> Result<Vec<crate::policy::Policy>> {
        let r = self.db.execute(&format!(
            "SELECT dsl FROM {POLICY_REGISTRY_TABLE} ORDER BY id"
        ))?;
        r.rows
            .into_iter()
            .map(|row| crate::policy::parse_policy(row[0].as_text()?))
            .collect()
    }

    /// A [`crate::policy::Scheduler`] over the registered policies, with
    /// each policy's last-run stamp seeded from the persisted registry
    /// column — a restarted server resumes the cadence where the previous
    /// process left it instead of re-firing every policy immediately.
    pub fn scheduler(&self) -> Result<crate::policy::Scheduler> {
        let r = self.db.execute(&format!(
            "SELECT dsl, last_run FROM {POLICY_REGISTRY_TABLE} ORDER BY id"
        ))?;
        let mut sched = crate::policy::Scheduler::new();
        for row in r.rows {
            let policy = crate::policy::parse_policy(row[0].as_text()?)?;
            if let Value::Int(last) = row[1] {
                sched.seed_last_run(policy.name(), last);
            }
            sched.add(policy);
        }
        Ok(sched)
    }

    /// Audits the whole workspace: every registered disguise under
    /// arbitrary interleaving plus every registered policy. See
    /// [`crate::analyze::audit_workspace`].
    pub fn audit(&self) -> Result<Vec<crate::analyze::Diagnostic>> {
        Ok(self.edna.audit(&self.policies()?))
    }
}

fn ensure_registry(db: &Database) -> Result<()> {
    for table in [SPEC_REGISTRY_TABLE, POLICY_REGISTRY_TABLE] {
        if !db.has_table(table) {
            db.execute(&format!(
                "CREATE TABLE {table} (id INT PRIMARY KEY AUTO_INCREMENT, \
                 name TEXT NOT NULL UNIQUE, dsl TEXT NOT NULL)"
            ))?;
        }
    }
    // Migration: the policy registry grew a nullable `last_run` column
    // (the persisted per-policy last-run stamp; NULL = never completed a
    // run). Workspaces created before it exist get it added on open.
    let schema = db.schema(POLICY_REGISTRY_TABLE)?;
    if !schema.columns.iter().any(|c| c.name == "last_run") {
        db.execute(&format!(
            "ALTER TABLE {POLICY_REGISTRY_TABLE} ADD COLUMN last_run INT"
        ))?;
    }
    Ok(())
}

/// Parses a user id argument: integer if it parses, text otherwise.
pub fn parse_user(arg: &str) -> Value {
    match arg.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::Text(arg.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_state(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("edna_ws_test_{tag}_{}", std::process::id()));
        cleanup(&p);
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(p.with_extension("tmp"));
        for suffix in [".metrics", ".metrics.tmp", ".wal", ".lock"] {
            let _ = std::fs::remove_file(sidecar(p, suffix));
        }
        let _ = std::fs::remove_dir_all(sidecar(p, ".vault"));
    }

    const SPEC: &str = r#"
disguise_name: "Gdpr"
user_to_disguise: $UID
tables: {
  users: { transformations: [ Remove(pred: "id = $UID") ] },
}
"#;

    #[test]
    fn full_lifecycle_across_reopens() {
        let state = temp_state("lifecycle");
        // init + schema + data.
        {
            let ws = Workspace::init(&state, Some("pw")).unwrap();
            ws.db
                .execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)")
                .unwrap();
            ws.db
                .execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")
                .unwrap();
            ws.save().unwrap();
        }
        // register the disguise in a second "process".
        {
            let ws = Workspace::open(&state, Some("pw")).unwrap();
            let name = ws.register_spec(SPEC).unwrap();
            assert_eq!(name, "Gdpr");
            assert_eq!(ws.spec_names().unwrap(), vec!["Gdpr".to_string()]);
        }
        // apply in a third.
        let disguise_id = {
            let ws = Workspace::open(&state, Some("pw")).unwrap();
            let report = ws.edna.apply("Gdpr", Some(&Value::Int(1))).unwrap();
            ws.save().unwrap();
            report.disguise_id
        };
        // reveal in a fourth — the vault survived on disk, encrypted.
        {
            let ws = Workspace::open(&state, Some("pw")).unwrap();
            assert_eq!(ws.db.row_count("users").unwrap(), 1);
            ws.edna.reveal(disguise_id).unwrap();
            ws.save().unwrap();
        }
        let ws = Workspace::open(&state, Some("pw")).unwrap();
        assert_eq!(ws.db.row_count("users").unwrap(), 2);
        drop(ws);
        cleanup(&state);
    }

    #[test]
    fn wrong_passphrase_cannot_reveal() {
        let state = temp_state("wrongpw");
        let disguise_id = {
            let ws = Workspace::init(&state, Some("pw")).unwrap();
            ws.db
                .execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)")
                .unwrap();
            ws.db
                .execute("INSERT INTO users (name) VALUES ('bea')")
                .unwrap();
            ws.register_spec(SPEC).unwrap();
            let r = ws.edna.apply("Gdpr", Some(&Value::Int(1))).unwrap();
            ws.save().unwrap();
            r.disguise_id
        };
        let ws = Workspace::open(&state, Some("not-the-passphrase")).unwrap();
        assert!(ws.edna.reveal(disguise_id).is_err());
        drop(ws);
        cleanup(&state);
    }

    #[test]
    fn second_opener_is_refused_while_lock_held() {
        let state = temp_state("locked");
        let ws = Workspace::init(&state, None).unwrap();
        let err = match Workspace::open(&state, None) {
            Ok(_) => panic!("second open should be refused"),
            Err(e) => e.to_string(),
        };
        assert!(err.contains("locked by running process"), "got: {err}");
        assert!(
            err.contains(&std::process::id().to_string()),
            "names the holder: {err}"
        );
        // Releasing the first workspace frees the state.
        drop(ws);
        let _ws = Workspace::open(&state, None).unwrap();
        cleanup(&state);
    }

    #[test]
    fn stale_lock_from_dead_process_is_reclaimed() {
        let state = temp_state("stalelock");
        {
            let _ws = Workspace::init(&state, None).unwrap();
        }
        // A SIGKILLed process leaves its lock file behind; 4194304999 is
        // above any real pid_max, standing in for the dead holder.
        std::fs::write(sidecar(&state, ".lock"), "4194304999").unwrap();
        let ws = Workspace::open(&state, None).unwrap();
        drop(ws);
        cleanup(&state);
    }

    #[test]
    fn crashed_save_is_recovered_on_open() {
        let state = temp_state("crashsave");
        {
            let ws = Workspace::init(&state, None).unwrap();
            ws.db
                .execute("CREATE TABLE users (id INT PRIMARY KEY, name TEXT)")
                .unwrap();
            ws.db
                .execute("INSERT INTO users VALUES (1, 'bea')")
                .unwrap();
            ws.save().unwrap();
        }
        // Simulate a crash mid-save: a half-written temp file next to the
        // authoritative snapshot.
        std::fs::write(state.with_extension("tmp"), b"half a snapshot").unwrap();
        let ws = Workspace::open(&state, None).unwrap();
        assert!(!state.with_extension("tmp").exists(), "stale tmp swept");
        assert_eq!(ws.db.row_count("users").unwrap(), 1);
        drop(ws);

        // Crash between temp fsync and rename: the authoritative snapshot
        // is gone but a complete checksum-valid temp exists — promote it.
        let good = std::fs::read(&state).unwrap();
        std::fs::remove_file(&state).unwrap();
        std::fs::write(state.with_extension("tmp"), &good).unwrap();
        let ws = Workspace::open(&state, None).unwrap();
        assert!(ws.last_recovery.snapshot_promoted);
        assert!(state.exists(), "tmp promoted to authoritative");
        assert!(!state.with_extension("tmp").exists());
        assert_eq!(ws.db.row_count("users").unwrap(), 1);
        drop(ws);

        // Same crash shape but the temp is garbage: swept, and the
        // missing snapshot surfaces as a clear error.
        std::fs::remove_file(&state).unwrap();
        std::fs::write(state.with_extension("tmp"), b"not a snapshot").unwrap();
        assert!(Workspace::open(&state, None).is_err());
        assert!(!state.with_extension("tmp").exists(), "garbage tmp swept");

        // A corrupted snapshot itself is a clear error, not a bad load.
        let mut bytes = good.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&state, &bytes).unwrap();
        let err = Workspace::open(&state, None).err().unwrap().to_string();
        assert!(err.contains("corrupt snapshot"), "got: {err}");
        cleanup(&state);
    }

    #[test]
    fn unsaved_work_survives_reopen_via_wal() {
        let state = temp_state("walreplay");
        {
            let ws = Workspace::init(&state, None).unwrap();
            ws.db
                .execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)")
                .unwrap();
            ws.db
                .execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")
                .unwrap();
            // Crash: drop without save() — the WAL is the only record.
        }
        let ws = Workspace::open(&state, None).unwrap();
        assert!(ws.last_recovery.frames_replayed > 0);
        assert_eq!(ws.db.row_count("users").unwrap(), 2);
        assert_eq!(ws.db.verify_integrity(), Vec::<String>::new());
        drop(ws);
        // Recovery checkpointed: a second open replays nothing.
        let ws = Workspace::open(&state, None).unwrap();
        assert_eq!(ws.last_recovery.frames_replayed, 0);
        assert_eq!(ws.db.row_count("users").unwrap(), 2);
        drop(ws);
        cleanup(&state);
    }

    #[test]
    fn stale_metrics_sidecar_tmp_is_swept() {
        let state = temp_state("metricstmp");
        {
            let ws = Workspace::init(&state, None).unwrap();
            ws.save().unwrap();
        }
        let tmp = sidecar(&state, ".metrics.tmp");
        std::fs::write(&tmp, b"half-written metrics").unwrap();
        let _ws = Workspace::open(&state, None).unwrap();
        assert!(!tmp.exists(), "stale metrics tmp swept");
        cleanup(&state);
    }

    #[test]
    fn init_refuses_to_clobber() {
        let state = temp_state("clobber");
        {
            let _ws = Workspace::init(&state, None).unwrap();
        }
        assert!(Workspace::init(&state, None).is_err());
        cleanup(&state);
    }

    #[test]
    fn parse_user_handles_ints_and_text() {
        assert_eq!(parse_user("42"), Value::Int(42));
        assert_eq!(parse_user("-3"), Value::Int(-3));
        assert_eq!(parse_user("bea"), Value::Text("bea".into()));
    }

    #[test]
    fn save_writes_metrics_sidecar() {
        let state = temp_state("metrics");
        let ws = Workspace::init(&state, None).unwrap();
        ws.db
            .execute("CREATE TABLE t (id INT PRIMARY KEY)")
            .unwrap();
        ws.save().unwrap();
        let text = std::fs::read_to_string(ws.metrics_path()).unwrap();
        assert!(text.contains("edna_statements_total"), "got: {text}");
        assert!(text.contains("# TYPE"), "got: {text}");
        drop(ws);
        cleanup(&state);
    }
}
