//! The disguise specification model.
//!
//! A disguise (paper §4.1) "associates each table in the application schema
//! with a set of predicate-transformation pairs. Predicates are arbitrary
//! SQL WHERE clauses ...; a transformation is either a removal, a
//! decorrelation of a particular foreign key, or a modification of a
//! particular column" (§5). Specs can be built programmatically with
//! [`DisguiseSpecBuilder`] or parsed from the text DSL
//! ([`crate::spec::parse_spec`]).

use std::fmt;
use std::sync::Arc;

use edna_util::rng::Rng;

use edna_relational::{parse_expr, Expr, Value};
use edna_vault::VaultTier;

use crate::error::{Error, Result};

/// A value-to-value closure used by custom modifiers and derived
/// placeholder generators (paper §5: "a modification takes a closure over
/// the original column value that returns the updated value").
pub type ValueFn = Arc<dyn Fn(&Value) -> Value + Send + Sync>;

/// How a [`Transformation::Modify`] rewrites a column value.
#[derive(Clone)]
pub enum Modifier {
    /// Replace with NULL.
    SetNull,
    /// Replace with a fixed value.
    Fixed(Value),
    /// Replace text with the placeholder marker `"[deleted]"` (the
    /// Reddit/Lobsters convention the paper cites in §2).
    Redact,
    /// Replace with a short hex digest of the original (pseudonymization).
    HashText,
    /// Keep only the first `n` characters (data decay of free text).
    Truncate(usize),
    /// Replace with a uniform random integer in `[lo, hi]`.
    RandomInt {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Replace with random lowercase text of the given length.
    RandomText(usize),
    /// Round an integer down to a multiple of `width` (coarsening
    /// timestamps or counts for data decay).
    Bucket(i64),
    /// A named custom closure over the original value (code-registered;
    /// not expressible in the text DSL).
    Custom {
        /// Display name for logs and reports.
        name: String,
        /// The rewrite function.
        f: ValueFn,
    },
}

impl Modifier {
    /// Applies this modifier to `original`, producing the disguised value.
    pub fn apply(&self, original: &Value, rng: &mut impl Rng) -> Value {
        match self {
            Modifier::SetNull => Value::Null,
            Modifier::Fixed(v) => v.clone(),
            Modifier::Redact => Value::Text("[deleted]".to_string()),
            Modifier::HashText => {
                let digest = edna_vault::crypto::sha256::sha256(original.to_string().as_bytes());
                let hex: String = digest[..8].iter().map(|b| format!("{b:02x}")).collect();
                Value::Text(hex)
            }
            Modifier::Truncate(n) => match original {
                Value::Text(s) => Value::Text(s.chars().take(*n).collect()),
                other => other.clone(),
            },
            Modifier::RandomInt { lo, hi } => Value::Int(rng.gen_range(*lo..=*hi)),
            Modifier::RandomText(len) => {
                let s: String = (0..*len)
                    .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                    .collect();
                Value::Text(s)
            }
            Modifier::Bucket(width) => match original {
                Value::Int(i) if *width > 0 => Value::Int((i / width) * width),
                other => other.clone(),
            },
            Modifier::Custom { f, .. } => f(original),
        }
    }

    /// Whether this modifier deterministically produces the same value as
    /// `other` for every input (used by the composition optimizer: a
    /// deterministic modify a prior disguise already performed is
    /// redundant). Random and custom modifiers never report sameness.
    pub fn same_effect(&self, other: &Modifier) -> bool {
        match (self, other) {
            (Modifier::SetNull, Modifier::SetNull) => true,
            (Modifier::Fixed(a), Modifier::Fixed(b)) => a == b,
            (Modifier::Redact, Modifier::Redact) => true,
            (Modifier::HashText, Modifier::HashText) => true,
            (Modifier::Truncate(a), Modifier::Truncate(b)) => a == b,
            (Modifier::Bucket(a), Modifier::Bucket(b)) => a == b,
            _ => false,
        }
    }

    /// A short display name (used in reports and spec rendering).
    pub fn name(&self) -> String {
        match self {
            Modifier::SetNull => "SetNull".to_string(),
            Modifier::Fixed(v) => format!("Fixed({})", v.to_sql_literal()),
            Modifier::Redact => "Redact".to_string(),
            Modifier::HashText => "HashText".to_string(),
            Modifier::Truncate(n) => format!("Truncate({n})"),
            Modifier::RandomInt { lo, hi } => format!("RandomInt({lo}, {hi})"),
            Modifier::RandomText(n) => format!("RandomText({n})"),
            Modifier::Bucket(w) => format!("Bucket({w})"),
            Modifier::Custom { name, .. } => format!("Custom({name})"),
        }
    }
}

impl fmt::Debug for Modifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// How one placeholder column value is produced.
#[derive(Clone)]
pub enum Generator {
    /// A random type-appropriate value (random name-like text for TEXT,
    /// random int for INT).
    Random,
    /// A fixed default.
    Default(Value),
    /// A named closure over the original column value (paper §5:
    /// "per-column closures over the original column value that return the
    /// placeholder column value").
    Derive {
        /// Display name.
        name: String,
        /// The derivation function.
        f: ValueFn,
    },
}

impl Generator {
    /// A short display name.
    pub fn name(&self) -> String {
        match self {
            Generator::Random => "Random".to_string(),
            Generator::Default(v) => format!("Default({})", v.to_sql_literal()),
            Generator::Derive { name, .. } => format!("Derive({name})"),
        }
    }
}

impl fmt::Debug for Generator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// One of the three fundamental transformation operations (paper §4.1).
#[derive(Debug, Clone)]
pub enum Transformation {
    /// Delete matching rows (recording them for reversal).
    Remove,
    /// Re-point a foreign key at a fresh placeholder row, decorrelating the
    /// row from its current parent (paper Figure 2).
    Decorrelate {
        /// The foreign-key column in this table.
        fk_column: String,
        /// The referenced (parent) table in which placeholders are created.
        parent_table: String,
    },
    /// Rewrite one column of matching rows through a [`Modifier`].
    Modify {
        /// The column to rewrite.
        column: String,
        /// The rewrite.
        modifier: Modifier,
    },
}

impl Transformation {
    /// A short display name.
    pub fn name(&self) -> String {
        match self {
            Transformation::Remove => "Remove".to_string(),
            Transformation::Decorrelate {
                fk_column,
                parent_table,
            } => {
                format!("Decorrelate({fk_column} -> {parent_table})")
            }
            Transformation::Modify { column, modifier } => {
                format!("Modify({column}, {})", modifier.name())
            }
        }
    }
}

/// A transformation guarded by an optional SQL predicate.
#[derive(Debug, Clone)]
pub struct PredicatedTransform {
    /// Which rows to transform (`None` = all rows).
    pub pred: Option<Expr>,
    /// What to do to them.
    pub transform: Transformation,
}

/// The per-table part of a disguise specification.
#[derive(Debug, Clone)]
pub struct TableDisguise {
    /// The table this section applies to.
    pub table: String,
    /// Placeholder column generators, used when *this* table is the parent
    /// of a decorrelation (paper Figure 3: `generate_placeholder`).
    pub generate_placeholder: Vec<(String, Generator)>,
    /// Predicated transformations, applied in order.
    pub transformations: Vec<PredicatedTransform>,
}

impl TableDisguise {
    /// An empty section for `table`.
    pub fn new(table: impl Into<String>) -> TableDisguise {
        TableDisguise {
            table: table.into(),
            generate_placeholder: Vec::new(),
            transformations: Vec::new(),
        }
    }
}

/// An end-state assertion (paper §7): after applying the disguise, no row
/// of `table` may match `pred` (e.g. "user no longer has any reviews").
#[derive(Debug, Clone)]
pub struct Assertion {
    /// Human-readable description for error messages.
    pub description: String,
    /// Table checked.
    pub table: String,
    /// Predicate that must match zero rows after application.
    pub pred: Expr,
}

/// A complete disguise specification.
#[derive(Debug, Clone)]
pub struct DisguiseSpec {
    /// Disguise name (e.g. `HotCRP-GDPR+`).
    pub name: String,
    /// Whether the disguise is parameterized by `$UID` (user-invoked) or
    /// global (applies across users, like `ConfAnon`).
    pub user_scoped: bool,
    /// Whether reveal functions are recorded in vaults.
    pub reversible: bool,
    /// Which vault tier reveal functions go to (paper §4.2 multi-tier
    /// design). Defaults to per-user for user-scoped disguises.
    pub vault_tier: VaultTier,
    /// If set, vault entries expire this many logical seconds after
    /// application, making the disguise irreversible afterwards.
    pub expires_after: Option<i64>,
    /// Per-table sections, applied in order (order matters for foreign-key
    /// integrity: remove children before parents).
    pub tables: Vec<TableDisguise>,
    /// End-state assertions checked after application.
    pub assertions: Vec<Assertion>,
    /// Non-blank source lines if this spec came from DSL text (Figure 4's
    /// "Disguise LoC" metric).
    pub source_loc: Option<usize>,
}

impl DisguiseSpec {
    /// The table section for `table`, if present.
    pub fn table(&self, table: &str) -> Option<&TableDisguise> {
        self.tables
            .iter()
            .find(|t| t.table.eq_ignore_ascii_case(table))
    }

    /// All `(table, fk_column, parent_table)` decorrelations in this spec.
    pub fn decorrelations(&self) -> Vec<(&str, &str, &str)> {
        let mut out = Vec::new();
        for t in &self.tables {
            for pt in &t.transformations {
                if let Transformation::Decorrelate {
                    fk_column,
                    parent_table,
                } = &pt.transform
                {
                    out.push((t.table.as_str(), fk_column.as_str(), parent_table.as_str()));
                }
            }
        }
        out
    }
}

/// Fluent builder for programmatic specs.
///
/// # Examples
///
/// ```
/// use edna_core::spec::DisguiseSpecBuilder;
///
/// let spec = DisguiseSpecBuilder::new("UserScrub")
///     .user_scoped()
///     .remove("ReviewPreference", Some("contactId = $UID"))
///     .decorrelate("Review", Some("contactId = $UID"), "contactId", "ContactInfo")
///     .placeholder("ContactInfo", "email", edna_core::spec::Generator::Default(
///         edna_relational::Value::Null))
///     .build()
///     .unwrap();
/// assert_eq!(spec.name, "UserScrub");
/// ```
pub struct DisguiseSpecBuilder {
    spec: DisguiseSpec,
    error: Option<Error>,
}

impl DisguiseSpecBuilder {
    /// Starts a builder for a disguise called `name` (global, reversible,
    /// global-tier by default).
    pub fn new(name: impl Into<String>) -> DisguiseSpecBuilder {
        DisguiseSpecBuilder {
            spec: DisguiseSpec {
                name: name.into(),
                user_scoped: false,
                reversible: true,
                vault_tier: VaultTier::Global,
                expires_after: None,
                tables: Vec::new(),
                assertions: Vec::new(),
                source_loc: None,
            },
            error: None,
        }
    }

    /// Marks the disguise user-scoped (`$UID` parameterized); reveal
    /// functions default to the per-user vault tier.
    pub fn user_scoped(mut self) -> Self {
        self.spec.user_scoped = true;
        self.spec.vault_tier = VaultTier::PerUser;
        self
    }

    /// Makes the disguise irreversible (no vault entries recorded).
    pub fn irreversible(mut self) -> Self {
        self.spec.reversible = false;
        self
    }

    /// Overrides the vault tier.
    pub fn vault_tier(mut self, tier: VaultTier) -> Self {
        self.spec.vault_tier = tier;
        self
    }

    /// Sets vault-entry expiry (logical seconds after application).
    pub fn expires_after(mut self, seconds: i64) -> Self {
        self.spec.expires_after = Some(seconds);
        self
    }

    fn table_mut(&mut self, table: &str) -> &mut TableDisguise {
        if let Some(i) = self
            .spec
            .tables
            .iter()
            .position(|t| t.table.eq_ignore_ascii_case(table))
        {
            &mut self.spec.tables[i]
        } else {
            self.spec.tables.push(TableDisguise::new(table));
            self.spec.tables.last_mut().expect("just pushed")
        }
    }

    fn parse_pred(&mut self, pred: Option<&str>) -> Option<Expr> {
        match pred {
            None => None,
            Some(src) => match parse_expr(src) {
                Ok(e) => Some(e),
                Err(e) => {
                    if self.error.is_none() {
                        self.error = Some(Error::SpecInvalid {
                            disguise: self.spec.name.clone(),
                            message: format!("bad predicate {src:?}: {e}"),
                        });
                    }
                    None
                }
            },
        }
    }

    /// Adds a `Remove` transformation on `table` guarded by `pred`.
    pub fn remove(mut self, table: &str, pred: Option<&str>) -> Self {
        let pred = self.parse_pred(pred);
        self.table_mut(table)
            .transformations
            .push(PredicatedTransform {
                pred,
                transform: Transformation::Remove,
            });
        self
    }

    /// Adds a `Decorrelate` of `table.fk_column` (referencing
    /// `parent_table`) guarded by `pred`.
    pub fn decorrelate(
        mut self,
        table: &str,
        pred: Option<&str>,
        fk_column: &str,
        parent_table: &str,
    ) -> Self {
        let pred = self.parse_pred(pred);
        self.table_mut(table)
            .transformations
            .push(PredicatedTransform {
                pred,
                transform: Transformation::Decorrelate {
                    fk_column: fk_column.to_string(),
                    parent_table: parent_table.to_string(),
                },
            });
        self
    }

    /// Adds a `Modify` of `table.column` through `modifier`, guarded by
    /// `pred`.
    pub fn modify(
        mut self,
        table: &str,
        pred: Option<&str>,
        column: &str,
        modifier: Modifier,
    ) -> Self {
        let pred = self.parse_pred(pred);
        self.table_mut(table)
            .transformations
            .push(PredicatedTransform {
                pred,
                transform: Transformation::Modify {
                    column: column.to_string(),
                    modifier,
                },
            });
        self
    }

    /// Declares a placeholder generator for `table.column` (used when
    /// `table` is a decorrelation parent).
    pub fn placeholder(mut self, table: &str, column: &str, generator: Generator) -> Self {
        self.table_mut(table)
            .generate_placeholder
            .push((column.to_string(), generator));
        self
    }

    /// Adds an end-state assertion: after application, zero rows of
    /// `table` may match `pred`.
    pub fn assert_empty(mut self, table: &str, pred: &str, description: &str) -> Self {
        if let Some(p) = self.parse_pred(Some(pred)) {
            self.spec.assertions.push(Assertion {
                description: description.to_string(),
                table: table.to_string(),
                pred: p,
            });
        }
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Result<DisguiseSpec> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edna_util::rng::Prng;

    #[test]
    fn modifiers_apply() {
        let mut rng = Prng::seed_from_u64(1);
        let orig = Value::Text("Hello World".into());
        assert_eq!(Modifier::SetNull.apply(&orig, &mut rng), Value::Null);
        assert_eq!(
            Modifier::Fixed(Value::Int(3)).apply(&orig, &mut rng),
            Value::Int(3)
        );
        assert_eq!(
            Modifier::Redact.apply(&orig, &mut rng),
            Value::Text("[deleted]".into())
        );
        assert_eq!(
            Modifier::Truncate(5).apply(&orig, &mut rng),
            Value::Text("Hello".into())
        );
        assert_eq!(
            Modifier::Bucket(3600).apply(&Value::Int(3725), &mut rng),
            Value::Int(3600)
        );
        let h1 = Modifier::HashText.apply(&orig, &mut rng);
        let h2 = Modifier::HashText.apply(&orig, &mut rng);
        assert_eq!(h1, h2, "hash modifier is deterministic");
        assert_ne!(h1, orig);
        if let Value::Int(i) = (Modifier::RandomInt { lo: 5, hi: 9 }).apply(&orig, &mut rng) {
            assert!((5..=9).contains(&i));
        } else {
            panic!("expected int");
        }
        if let Value::Text(s) = Modifier::RandomText(8).apply(&orig, &mut rng) {
            assert_eq!(s.len(), 8);
        } else {
            panic!("expected text");
        }
        let custom = Modifier::Custom {
            name: "bump".into(),
            f: Arc::new(|v| match v {
                Value::Int(i) => Value::Int(i + 1),
                other => other.clone(),
            }),
        };
        assert_eq!(custom.apply(&Value::Int(9), &mut rng), Value::Int(10));
    }

    #[test]
    fn builder_builds_spec() {
        let spec = DisguiseSpecBuilder::new("T")
            .user_scoped()
            .remove("a", Some("uid = $UID"))
            .decorrelate("b", Some("uid = $UID"), "uid", "users")
            .modify("b", None, "text", Modifier::Redact)
            .placeholder("users", "name", Generator::Random)
            .assert_empty("a", "uid = $UID", "no rows left")
            .expires_after(100)
            .build()
            .unwrap();
        assert!(spec.user_scoped);
        assert_eq!(spec.vault_tier, VaultTier::PerUser);
        assert_eq!(spec.tables.len(), 3);
        assert_eq!(spec.decorrelations(), vec![("b", "uid", "users")]);
        assert_eq!(spec.assertions.len(), 1);
        assert_eq!(spec.expires_after, Some(100));
    }

    #[test]
    fn builder_reports_bad_predicates() {
        let err = DisguiseSpecBuilder::new("T")
            .remove("a", Some("this is ( not sql"))
            .build();
        assert!(matches!(err, Err(Error::SpecInvalid { .. })));
    }
}
