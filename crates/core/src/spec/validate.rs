//! Spec validation against a database schema.
//!
//! Validation runs at registration time ([`crate::Disguiser::register`]) so
//! that malformed disguises fail fast rather than mid-transaction. Checks:
//!
//! - every referenced table and column exists;
//! - decorrelation targets have primary keys and (if NOT NULL columns lack
//!   defaults) placeholder generators covering them;
//! - tables with `Decorrelate`/`Modify` transformations have primary keys
//!   (row identity is needed for reveal functions);
//! - predicate and assertion columns resolve;
//! - user-scoped specs reference `$UID` somewhere, global ones never do.

use edna_relational::{Database, Expr, TableSchema};

use crate::error::{Error, Result};

use super::model::{DisguiseSpec, Transformation};

/// Validates `spec` against the schema in `db`.
pub fn validate_spec(spec: &DisguiseSpec, db: &Database) -> Result<()> {
    let fail = |message: String| Error::SpecInvalid {
        disguise: spec.name.clone(),
        message,
    };
    // Two column-targeting transformations of the same column in one spec
    // fight over the column's reveal function: the later one records the
    // already-disguised value, so reveal cannot restore the original.
    // `Remove`s are exempt — several predicated Removes over one table
    // (e.g. "my rows" and "rows about me") are a common, sound idiom.
    let mut targeted: Vec<(String, String)> = Vec::new();
    for section in &spec.tables {
        for pt in &section.transformations {
            let col = match &pt.transform {
                Transformation::Remove => continue,
                Transformation::Decorrelate { fk_column, .. } => fk_column,
                Transformation::Modify { column, .. } => column,
            };
            let key = (section.table.to_ascii_lowercase(), col.to_ascii_lowercase());
            if targeted.contains(&key) {
                return Err(fail(format!(
                    "duplicate transformation of {}.{col}: a column may be \
                     modified or decorrelated at most once per spec",
                    section.table
                )));
            }
            targeted.push(key);
        }
    }
    let mut saw_uid = false;
    for section in &spec.tables {
        let schema = db
            .schema(&section.table)
            .map_err(|_| fail(format!("no such table {}", section.table)))?;
        for (col, _) in &section.generate_placeholder {
            if schema.column_index(col).is_none() {
                return Err(fail(format!(
                    "placeholder column {}.{col} does not exist",
                    section.table
                )));
            }
        }
        for pt in &section.transformations {
            if let Some(pred) = &pt.pred {
                check_pred_columns(pred, &schema).map_err(&fail)?;
                if !pred.referenced_params().is_empty() {
                    saw_uid = true;
                }
            }
            match &pt.transform {
                Transformation::Remove => {}
                Transformation::Decorrelate {
                    fk_column,
                    parent_table,
                } => {
                    if schema.column_index(fk_column).is_none() {
                        return Err(fail(format!(
                            "decorrelate column {}.{fk_column} does not exist",
                            section.table
                        )));
                    }
                    let parent = db.schema(parent_table).map_err(|_| {
                        fail(format!(
                            "decorrelation parent table {parent_table} does not exist"
                        ))
                    })?;
                    if parent.primary_key.is_none() {
                        return Err(Error::NeedsPrimaryKey {
                            table: parent_table.clone(),
                            context: "placeholder creation".to_string(),
                        });
                    }
                    if schema.primary_key.is_none() {
                        return Err(Error::NeedsPrimaryKey {
                            table: section.table.clone(),
                            context: "decorrelation reveal functions".to_string(),
                        });
                    }
                    check_placeholder_coverage(spec, &parent).map_err(&fail)?;
                }
                Transformation::Modify { column, .. } => {
                    if schema.column_index(column).is_none() {
                        return Err(fail(format!(
                            "modified column {}.{column} does not exist",
                            section.table
                        )));
                    }
                    if schema.primary_key.is_none() {
                        return Err(Error::NeedsPrimaryKey {
                            table: section.table.clone(),
                            context: "modification reveal functions".to_string(),
                        });
                    }
                }
            }
        }
    }
    for assertion in &spec.assertions {
        let schema = db.schema(&assertion.table).map_err(|_| {
            fail(format!(
                "assertion table {} does not exist",
                assertion.table
            ))
        })?;
        check_pred_columns(&assertion.pred, &schema).map_err(&fail)?;
        if !assertion.pred.referenced_params().is_empty() {
            saw_uid = true;
        }
    }
    if spec.user_scoped && !saw_uid {
        return Err(fail(
            "user-scoped disguise never references $UID in any predicate".to_string(),
        ));
    }
    if !spec.user_scoped && saw_uid {
        return Err(fail(
            "global disguise references $UID; mark it user_to_disguise: $UID".to_string(),
        ));
    }
    Ok(())
}

fn check_pred_columns(pred: &Expr, schema: &TableSchema) -> std::result::Result<(), String> {
    for col in pred.referenced_columns() {
        if schema.column_index(&col).is_none() {
            return Err(format!(
                "predicate references unknown column {}.{col}",
                schema.name
            ));
        }
    }
    for param in pred.referenced_params() {
        if param != "UID" {
            return Err(format!("only $UID parameters are allowed, found ${param}"));
        }
    }
    Ok(())
}

/// Every NOT NULL, non-defaulted, non-auto-increment column of a
/// decorrelation parent must be covered by a placeholder generator.
fn check_placeholder_coverage(
    spec: &DisguiseSpec,
    parent: &TableSchema,
) -> std::result::Result<(), String> {
    let generators = spec
        .table(&parent.name)
        .map(|t| t.generate_placeholder.as_slice())
        .unwrap_or(&[]);
    for (i, col) in parent.columns.iter().enumerate() {
        if Some(i) == parent.primary_key || col.auto_increment {
            continue;
        }
        if col.not_null && col.default.is_none() {
            let covered = generators
                .iter()
                .any(|(name, _)| name.eq_ignore_ascii_case(&col.name));
            if !covered {
                return Err(format!(
                    "placeholder for {} leaves NOT NULL column {} without a generator",
                    parent.name, col.name
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DisguiseSpecBuilder, Generator};
    use edna_relational::Value;

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, \
             name TEXT NOT NULL, email TEXT);
             CREATE TABLE reviews (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
        )
        .unwrap();
        db
    }

    #[test]
    fn valid_spec_passes() {
        let spec = DisguiseSpecBuilder::new("ok")
            .user_scoped()
            .decorrelate("reviews", Some("user_id = $UID"), "user_id", "users")
            .placeholder("users", "name", Generator::Random)
            .remove("users", Some("id = $UID"))
            .assert_empty("reviews", "user_id = $UID", "no reviews")
            .build()
            .unwrap();
        validate_spec(&spec, &db()).unwrap();
    }

    #[test]
    fn unknown_table_fails() {
        let spec = DisguiseSpecBuilder::new("bad")
            .remove("nope", None)
            .build()
            .unwrap();
        assert!(validate_spec(&spec, &db()).is_err());
    }

    #[test]
    fn unknown_predicate_column_fails() {
        let spec = DisguiseSpecBuilder::new("bad")
            .remove("users", Some("ghost = 1"))
            .build()
            .unwrap();
        assert!(validate_spec(&spec, &db()).is_err());
    }

    #[test]
    fn missing_placeholder_generator_for_not_null_fails() {
        // users.name is NOT NULL with no default; a decorrelate into users
        // without a generator for it must fail.
        let spec = DisguiseSpecBuilder::new("bad")
            .user_scoped()
            .decorrelate("reviews", Some("user_id = $UID"), "user_id", "users")
            .build()
            .unwrap();
        let err = validate_spec(&spec, &db()).unwrap_err();
        assert!(err.to_string().contains("name"), "got: {err}");
    }

    #[test]
    fn user_scope_mismatch_fails() {
        let no_uid = DisguiseSpecBuilder::new("bad")
            .user_scoped()
            .remove("users", Some("id = 3"))
            .build()
            .unwrap();
        assert!(validate_spec(&no_uid, &db()).is_err());

        let uid_in_global = DisguiseSpecBuilder::new("bad2")
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        assert!(validate_spec(&uid_in_global, &db()).is_err());
    }

    #[test]
    fn foreign_params_rejected() {
        let spec = DisguiseSpecBuilder::new("bad")
            .user_scoped()
            .remove("users", Some("id = $OTHER"))
            .build()
            .unwrap();
        assert!(validate_spec(&spec, &db()).is_err());
    }

    #[test]
    fn duplicate_column_transformations_rejected() {
        use crate::spec::Modifier;
        // Modify + Modify of the same column.
        let spec = DisguiseSpecBuilder::new("bad")
            .user_scoped()
            .modify("users", Some("id = $UID"), "email", Modifier::SetNull)
            .modify("users", Some("id = $UID"), "email", Modifier::Redact)
            .build()
            .unwrap();
        let err = validate_spec(&spec, &db()).unwrap_err().to_string();
        assert!(err.contains("duplicate transformation"), "got: {err}");

        // Modify + Decorrelate of the same column, across two sections of
        // the same table (case-insensitively).
        let spec = DisguiseSpecBuilder::new("bad2")
            .user_scoped()
            .modify(
                "reviews",
                Some("user_id = $UID"),
                "user_id",
                Modifier::SetNull,
            )
            .decorrelate("Reviews", Some("user_id = $UID"), "USER_ID", "users")
            .placeholder("users", "name", Generator::Random)
            .build()
            .unwrap();
        let err = validate_spec(&spec, &db()).unwrap_err().to_string();
        assert!(err.contains("duplicate transformation"), "got: {err}");

        // Several Removes over one table stay legal.
        let spec = DisguiseSpecBuilder::new("ok")
            .user_scoped()
            .remove("reviews", Some("user_id = $UID"))
            .remove("reviews", Some("body = 'about me' AND user_id = $UID"))
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        validate_spec(&spec, &db()).unwrap();
    }

    #[test]
    fn fixed_generators_cover_not_null() {
        let spec = DisguiseSpecBuilder::new("ok")
            .user_scoped()
            .decorrelate("reviews", Some("user_id = $UID"), "user_id", "users")
            .placeholder(
                "users",
                "name",
                Generator::Default(Value::Text("anon".into())),
            )
            .build()
            .unwrap();
        validate_spec(&spec, &db()).unwrap();
    }
}
