//! Rendering disguise specifications back to DSL text.
//!
//! `to_dsl` produces text that [`crate::spec::parse_spec`] re-parses into
//! an equivalent spec, so programmatically built disguises can be
//! persisted, diffed, and reviewed like hand-written ones. Code-only
//! constructs (`Custom` modifiers, `Derive` generators) have no DSL form
//! and are reported as an error.

use std::fmt::Write;

use edna_vault::VaultTier;

use crate::error::{Error, Result};

use super::model::{DisguiseSpec, Generator, Modifier, Transformation};

/// Renders `spec` as DSL text.
pub fn render_spec(spec: &DisguiseSpec) -> Result<String> {
    let unrenderable = |what: &str| Error::SpecInvalid {
        disguise: spec.name.clone(),
        message: format!("{what} has no DSL form; it must stay code-registered"),
    };
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "disguise_name: \"{}\"", spec.name);
    if spec.user_scoped {
        let _ = writeln!(w, "user_to_disguise: $UID");
    }
    let _ = writeln!(w, "reversible: {}", spec.reversible);
    let _ = writeln!(
        w,
        "vault_tier: {}",
        match spec.vault_tier {
            VaultTier::Global => "global",
            VaultTier::PerUser => "per_user",
        }
    );
    if let Some(e) = spec.expires_after {
        let _ = writeln!(w, "expires_after: {e}");
    }
    let _ = writeln!(w, "tables: {{");
    for section in &spec.tables {
        let _ = writeln!(w, "  {}: {{", section.table);
        if !section.generate_placeholder.is_empty() {
            let _ = writeln!(w, "    generate_placeholder: [");
            for (column, gen) in &section.generate_placeholder {
                let rendered = match gen {
                    Generator::Random => "Random".to_string(),
                    Generator::Default(v) => format!("Default({})", render_literal(v)),
                    Generator::Derive { name, .. } => {
                        return Err(unrenderable(&format!("Derive generator {name}")))
                    }
                };
                let _ = writeln!(w, "      ({column}, {rendered}),");
            }
            let _ = writeln!(w, "    ],");
        }
        if !section.transformations.is_empty() {
            let _ = writeln!(w, "    transformations: [");
            for pt in &section.transformations {
                let pred = pt
                    .pred
                    .as_ref()
                    .map(|p| format!("pred: \"{}\"", p))
                    .unwrap_or_default();
                let line = match &pt.transform {
                    Transformation::Remove => format!("Remove({pred})"),
                    Transformation::Decorrelate {
                        fk_column,
                        parent_table,
                    } => {
                        let fk = format!("foreign_key: ({fk_column}, {parent_table})");
                        if pred.is_empty() {
                            format!("Decorrelate({fk})")
                        } else {
                            format!("Decorrelate({pred}, {fk})")
                        }
                    }
                    Transformation::Modify { column, modifier } => {
                        let m = render_modifier(modifier)
                            .ok_or_else(|| unrenderable(&modifier.name()))?;
                        if pred.is_empty() {
                            format!("Modify(column: {column}, modifier: {m})")
                        } else {
                            format!("Modify({pred}, column: {column}, modifier: {m})")
                        }
                    }
                };
                let _ = writeln!(w, "      {line},");
            }
            let _ = writeln!(w, "    ],");
        }
        let _ = writeln!(w, "  }},");
    }
    let _ = writeln!(w, "}}");
    if !spec.assertions.is_empty() {
        let _ = writeln!(w, "assertions: [");
        for a in &spec.assertions {
            let _ = writeln!(w, "  (\"{}\", {}, \"{}\"),", a.description, a.table, a.pred);
        }
        let _ = writeln!(w, "]");
    }
    Ok(out)
}

fn render_modifier(m: &Modifier) -> Option<String> {
    Some(match m {
        Modifier::SetNull => "SetNull".to_string(),
        Modifier::Fixed(v) => format!("Fixed({})", render_literal(v)),
        Modifier::Redact => "Redact".to_string(),
        Modifier::HashText => "HashText".to_string(),
        Modifier::Truncate(n) => format!("Truncate({n})"),
        Modifier::RandomInt { lo, hi } => format!("RandomInt({lo}, {hi})"),
        Modifier::RandomText(n) => format!("RandomText({n})"),
        Modifier::Bucket(w) => format!("Bucket({w})"),
        Modifier::Custom { .. } => return None,
    })
}

/// Renders a literal in DSL syntax (single-quoted strings; the DSL lexer
/// has no escape sequences, so quotes inside strings are unrenderable and
/// mapped to a best-effort double-quoted form).
fn render_literal(v: &edna_relational::Value) -> String {
    use edna_relational::Value;
    match v {
        Value::Text(s) if !s.contains('\'') => format!("'{s}'"),
        Value::Text(s) => format!("\"{s}\""),
        other => other.to_sql_literal(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{parse_spec, DisguiseSpecBuilder};
    use edna_relational::Value;
    use std::sync::Arc;

    fn full_spec() -> DisguiseSpec {
        DisguiseSpecBuilder::new("Round-Trip")
            .user_scoped()
            .expires_after(3600)
            .remove("prefs", Some("contactId = $UID"))
            .decorrelate("reviews", Some("contactId = $UID"), "contactId", "users")
            .modify("reviews", None, "text", Modifier::Redact)
            .modify("log", Some("who = $UID"), "ip", Modifier::SetNull)
            .modify(
                "log",
                None,
                "note",
                Modifier::Fixed(Value::Text("x".into())),
            )
            .modify("log", None, "ts", Modifier::Bucket(3600))
            .placeholder("users", "name", Generator::Random)
            .placeholder("users", "email", Generator::Default(Value::Null))
            .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
            .assert_empty("reviews", "contactId = $UID", "no attributed reviews")
            .build()
            .unwrap()
    }

    #[test]
    fn dsl_round_trip_preserves_structure() {
        let spec = full_spec();
        let dsl = render_spec(&spec).unwrap();
        let back = parse_spec(&dsl).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.user_scoped, spec.user_scoped);
        assert_eq!(back.reversible, spec.reversible);
        assert_eq!(back.vault_tier, spec.vault_tier);
        assert_eq!(back.expires_after, spec.expires_after);
        assert_eq!(back.tables.len(), spec.tables.len());
        assert_eq!(back.assertions.len(), spec.assertions.len());
        for (a, b) in spec.tables.iter().zip(&back.tables) {
            assert_eq!(a.table, b.table);
            assert_eq!(a.generate_placeholder.len(), b.generate_placeholder.len());
            assert_eq!(a.transformations.len(), b.transformations.len());
            for (ta, tb) in a.transformations.iter().zip(&b.transformations) {
                assert_eq!(ta.transform.name(), tb.transform.name());
                assert_eq!(
                    ta.pred.as_ref().map(|p| p.to_string()),
                    tb.pred.as_ref().map(|p| p.to_string())
                );
            }
        }
        // Rendering the reparsed spec is a fixpoint.
        assert_eq!(render_spec(&back).unwrap(), dsl);
    }

    #[test]
    fn code_only_constructs_are_rejected() {
        let custom = DisguiseSpecBuilder::new("C")
            .modify(
                "t",
                None,
                "c",
                Modifier::Custom {
                    name: "f".into(),
                    f: Arc::new(|v| v.clone()),
                },
            )
            .build()
            .unwrap();
        assert!(render_spec(&custom).is_err());

        let derive = DisguiseSpecBuilder::new("D")
            .placeholder(
                "t",
                "c",
                Generator::Derive {
                    name: "g".into(),
                    f: Arc::new(|v| v.clone()),
                },
            )
            .build()
            .unwrap();
        assert!(render_spec(&derive).is_err());
    }

    #[test]
    fn case_study_disguises_render_and_reparse() {
        // The four shipped DSL files survive a parse → render → parse trip.
        for dsl in [
            include_str!("../../../apps/disguises/hotcrp_gdpr.edna"),
            include_str!("../../../apps/disguises/hotcrp_gdpr_plus.edna"),
            include_str!("../../../apps/disguises/hotcrp_confanon.edna"),
            include_str!("../../../apps/disguises/lobsters_gdpr.edna"),
        ] {
            let spec = parse_spec(dsl).unwrap();
            let rendered = render_spec(&spec).unwrap();
            let back = parse_spec(&rendered).unwrap();
            assert_eq!(back.name, spec.name);
            assert_eq!(back.tables.len(), spec.tables.len());
            assert_eq!(render_spec(&back).unwrap(), rendered, "render fixpoint");
        }
    }
}
