//! Text DSL for disguise specifications, mirroring the paper's Figure 3.
//!
//! Example (the paper's `UserScrub` spec):
//!
//! ```text
//! disguise_name: "UserScrub"
//! user_to_disguise: $UID
//! tables: {
//!   ContactInfo: {
//!     generate_placeholder: [
//!       (name, Random),
//!       (email, Default(NULL)),
//!       (disabled, Default(TRUE)),
//!     ],
//!     transformations: [ Remove(pred: "contactId = $UID") ],
//!   },
//!   ReviewPreference: {
//!     transformations: [ Remove(pred: "contactId = $UID") ],
//!   },
//!   Review: {
//!     transformations: [
//!       Decorrelate(pred: "contactId = $UID", foreign_key: (contactId, ContactInfo)),
//!     ],
//!   },
//! }
//! ```
//!
//! Deviations from Figure 3 (documented in DESIGN.md): table sections are
//! brace-delimited rather than indentation-sensitive, and predicates are
//! quoted SQL `WHERE` strings. `#` starts a line comment. Optional
//! top-level keys: `reversible: true|false`, `vault_tier: global|per_user`,
//! `expires_after: <seconds>`, and
//! `assertions: [ ("description", Table, "pred"), ... ]` (paper §7).

use edna_relational::{parse_expr, Expr, Value};
use edna_vault::VaultTier;

use crate::error::{Error, Result};

use super::model::{
    Assertion, DisguiseSpec, Generator, Modifier, PredicatedTransform, TableDisguise,
    Transformation,
};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Param(String),
    Sym(char),
}

struct Lexed {
    tokens: Vec<(Tok, usize)>, // token + 1-based line
}

fn lex(src: &str) -> Result<Lexed> {
    let mut tokens = Vec::new();
    for (line_idx, raw_line) in src.lines().enumerate() {
        let line_no = line_idx + 1;
        let line = match raw_line.find('#') {
            // Only treat '#' as a comment when not inside a quote; handle
            // cheaply by scanning.
            Some(_) => strip_comment(raw_line),
            None => raw_line.to_string(),
        };
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                ' ' | '\t' | '\r' => i += 1,
                '"' | '\'' => {
                    let quote = c;
                    let mut out = String::new();
                    let mut j = i + 1;
                    let mut closed = false;
                    while j < bytes.len() {
                        let cj = bytes[j] as char;
                        if cj == quote {
                            closed = true;
                            break;
                        }
                        out.push(cj);
                        j += 1;
                    }
                    if !closed {
                        return Err(Error::SpecParse {
                            line: line_no,
                            message: "unterminated string".to_string(),
                        });
                    }
                    tokens.push((Tok::Str(out), line_no));
                    i = j + 1;
                }
                '$' => {
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    if j == i + 1 {
                        return Err(Error::SpecParse {
                            line: line_no,
                            message: "empty parameter after '$'".to_string(),
                        });
                    }
                    tokens.push((Tok::Param(line[i + 1..j].to_string()), line_no));
                    i = j;
                }
                '0'..='9' | '-' => {
                    let mut j = i + 1;
                    let mut is_float = false;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'0'..=b'9' => j += 1,
                            b'.' if !is_float => {
                                is_float = true;
                                j += 1;
                            }
                            _ => break,
                        }
                    }
                    let text = &line[i..j];
                    let tok = if is_float {
                        Tok::Float(text.parse().map_err(|_| Error::SpecParse {
                            line: line_no,
                            message: format!("bad number {text}"),
                        })?)
                    } else {
                        Tok::Int(text.parse().map_err(|_| Error::SpecParse {
                            line: line_no,
                            message: format!("bad number {text}"),
                        })?)
                    };
                    tokens.push((tok, line_no));
                    i = j;
                }
                'a'..='z' | 'A'..='Z' | '_' => {
                    let mut j = i;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    tokens.push((Tok::Ident(line[i..j].to_string()), line_no));
                    i = j;
                }
                ':' | ',' | '(' | ')' | '[' | ']' | '{' | '}' => {
                    tokens.push((Tok::Sym(c), line_no));
                    i += 1;
                }
                other => {
                    return Err(Error::SpecParse {
                        line: line_no,
                        message: format!("unexpected character {other:?}"),
                    })
                }
            }
        }
    }
    Ok(Lexed { tokens })
}

/// Removes a `#` comment that is outside any quotes.
fn strip_comment(line: &str) -> String {
    let mut in_quote: Option<char> = None;
    for (i, c) in line.char_indices() {
        match in_quote {
            Some(q) if c == q => in_quote = None,
            None if c == '"' || c == '\'' => in_quote = Some(c),
            None if c == '#' => return line[..i].to_string(),
            _ => {}
        }
    }
    line.to_string()
}

/// Counts non-blank, non-comment lines: the "Disguise LoC" metric of the
/// paper's Figure 4.
pub fn spec_loc(src: &str) -> usize {
    src.lines()
        .filter(|l| !strip_comment(l).trim().is_empty())
        .count()
}

/// Parses a disguise specification from DSL text.
pub fn parse_spec(src: &str) -> Result<DisguiseSpec> {
    let lexed = lex(src)?;
    let mut p = P {
        toks: lexed.tokens,
        pos: 0,
    };
    let mut name: Option<String> = None;
    let mut user_scoped = false;
    let mut reversible = true;
    let mut vault_tier: Option<VaultTier> = None;
    let mut expires_after: Option<i64> = None;
    let mut tables: Vec<TableDisguise> = Vec::new();
    let mut assertions: Vec<Assertion> = Vec::new();

    while !p.at_eof() {
        let key = p.ident("top-level key")?;
        p.sym(':')?;
        match key.as_str() {
            "disguise_name" => name = Some(p.string("disguise name")?),
            "user_to_disguise" => {
                let param = p.param("user parameter")?;
                if param != "UID" {
                    return Err(p.error(format!("user_to_disguise must be $UID, found ${param}")));
                }
                user_scoped = true;
            }
            "reversible" => reversible = p.boolean()?,
            "vault_tier" => {
                let v = p.ident("vault tier")?;
                vault_tier = Some(match v.as_str() {
                    "global" => VaultTier::Global,
                    "per_user" => VaultTier::PerUser,
                    other => {
                        return Err(p.error(format!(
                            "vault_tier must be global or per_user, found {other}"
                        )))
                    }
                });
            }
            "expires_after" => {
                expires_after = Some(match p.next("expiry seconds")? {
                    Tok::Int(i) => i,
                    other => return Err(p.error(format!("expected integer, found {other:?}"))),
                });
            }
            "tables" => {
                p.sym('{')?;
                while !p.peek_sym('}') {
                    let table = p.ident("table name")?;
                    p.sym(':')?;
                    tables.push(p.table_section(table)?);
                    p.opt_sym(',');
                }
                p.sym('}')?;
            }
            "assertions" => {
                p.sym('[')?;
                while !p.peek_sym(']') {
                    p.sym('(')?;
                    let description = p.string("assertion description")?;
                    p.sym(',')?;
                    let table = p.ident("assertion table")?;
                    p.sym(',')?;
                    let pred = p.predicate()?;
                    p.sym(')')?;
                    assertions.push(Assertion {
                        description,
                        table,
                        pred,
                    });
                    p.opt_sym(',');
                }
                p.sym(']')?;
            }
            other => return Err(p.error(format!("unknown top-level key {other}"))),
        }
        p.opt_sym(',');
    }

    let name = name.ok_or_else(|| Error::SpecParse {
        line: 1,
        message: "missing disguise_name".to_string(),
    })?;
    let vault_tier = vault_tier.unwrap_or(if user_scoped {
        VaultTier::PerUser
    } else {
        VaultTier::Global
    });
    Ok(DisguiseSpec {
        name,
        user_scoped,
        reversible,
        vault_tier,
        expires_after,
        tables,
        assertions,
        source_loc: Some(spec_loc(src)),
    })
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl P {
    fn at_eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn error(&self, message: String) -> Error {
        Error::SpecParse {
            line: self.line(),
            message,
        }
    }

    fn next(&mut self, what: &str) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.error(format!("unexpected end of spec, expected {what}")))?;
        self.pos += 1;
        Ok(t)
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next(what)? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn string(&mut self, what: &str) -> Result<String> {
        match self.next(what)? {
            Tok::Str(s) => Ok(s),
            other => Err(self.error(format!("expected quoted {what}, found {other:?}"))),
        }
    }

    fn param(&mut self, what: &str) -> Result<String> {
        match self.next(what)? {
            Tok::Param(s) => Ok(s),
            other => Err(self.error(format!("expected ${what}, found {other:?}"))),
        }
    }

    fn boolean(&mut self) -> Result<bool> {
        let id = self.ident("boolean")?;
        match id.to_ascii_lowercase().as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(self.error(format!("expected true/false, found {other}"))),
        }
    }

    fn sym(&mut self, c: char) -> Result<()> {
        match self.next(&format!("{c:?}"))? {
            Tok::Sym(s) if s == c => Ok(()),
            other => Err(self.error(format!("expected {c:?}, found {other:?}"))),
        }
    }

    fn peek_sym(&self, c: char) -> bool {
        matches!(self.toks.get(self.pos), Some((Tok::Sym(s), _)) if *s == c)
    }

    fn opt_sym(&mut self, c: char) -> bool {
        if self.peek_sym(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn predicate(&mut self) -> Result<Expr> {
        let src = self.string("predicate")?;
        parse_expr(&src).map_err(|e| self.error(format!("bad predicate {src:?}: {e}")))
    }

    /// Parses a literal value: NULL, TRUE, FALSE, int, float, or string.
    fn literal(&mut self) -> Result<Value> {
        match self.next("literal")? {
            Tok::Int(i) => Ok(Value::Int(i)),
            Tok::Float(x) => Ok(Value::Float(x)),
            Tok::Str(s) => Ok(Value::Text(s)),
            Tok::Ident(id) => match id.to_ascii_uppercase().as_str() {
                "NULL" => Ok(Value::Null),
                "TRUE" => Ok(Value::Bool(true)),
                "FALSE" => Ok(Value::Bool(false)),
                other => Err(self.error(format!("expected literal, found {other}"))),
            },
            other => Err(self.error(format!("expected literal, found {other:?}"))),
        }
    }

    fn table_section(&mut self, table: String) -> Result<TableDisguise> {
        let mut section = TableDisguise::new(table);
        self.sym('{')?;
        while !self.peek_sym('}') {
            let key = self.ident("table section key")?;
            self.sym(':')?;
            match key.as_str() {
                "generate_placeholder" => {
                    self.sym('[')?;
                    while !self.peek_sym(']') {
                        self.sym('(')?;
                        let column = self.ident("placeholder column")?;
                        self.sym(',')?;
                        let gen = self.generator()?;
                        self.sym(')')?;
                        section.generate_placeholder.push((column, gen));
                        self.opt_sym(',');
                    }
                    self.sym(']')?;
                }
                "transformations" => {
                    self.sym('[')?;
                    while !self.peek_sym(']') {
                        section.transformations.push(self.transformation()?);
                        self.opt_sym(',');
                    }
                    self.sym(']')?;
                }
                other => return Err(self.error(format!("unknown table section key {other}"))),
            }
            self.opt_sym(',');
        }
        self.sym('}')?;
        Ok(section)
    }

    fn generator(&mut self) -> Result<Generator> {
        let kind = self.ident("generator")?;
        match kind.as_str() {
            "Random" => Ok(Generator::Random),
            "Default" => {
                self.sym('(')?;
                let v = self.literal()?;
                self.sym(')')?;
                Ok(Generator::Default(v))
            }
            other => Err(self.error(format!(
                "unknown generator {other} (expected Random or Default)"
            ))),
        }
    }

    fn transformation(&mut self) -> Result<PredicatedTransform> {
        let kind = self.ident("transformation")?;
        self.sym('(')?;
        let mut pred: Option<Expr> = None;
        let mut column: Option<String> = None;
        let mut modifier: Option<Modifier> = None;
        let mut foreign_key: Option<(String, String)> = None;
        while !self.peek_sym(')') {
            let key = self.ident("transformation key")?;
            self.sym(':')?;
            match key.as_str() {
                "pred" => pred = Some(self.predicate()?),
                "column" => column = Some(self.ident("column name")?),
                "modifier" => modifier = Some(self.modifier()?),
                "foreign_key" => {
                    self.sym('(')?;
                    let fk_col = self.ident("foreign key column")?;
                    self.sym(',')?;
                    let parent = self.ident("parent table")?;
                    self.sym(')')?;
                    foreign_key = Some((fk_col, parent));
                }
                other => return Err(self.error(format!("unknown transformation key {other}"))),
            }
            self.opt_sym(',');
        }
        self.sym(')')?;
        let transform = match kind.as_str() {
            "Remove" => Transformation::Remove,
            "Decorrelate" => {
                let (fk_column, parent_table) = foreign_key.ok_or_else(|| {
                    self.error("Decorrelate requires foreign_key: (col, Parent)".to_string())
                })?;
                Transformation::Decorrelate {
                    fk_column,
                    parent_table,
                }
            }
            "Modify" => {
                let column =
                    column.ok_or_else(|| self.error("Modify requires column".to_string()))?;
                let modifier =
                    modifier.ok_or_else(|| self.error("Modify requires modifier".to_string()))?;
                Transformation::Modify { column, modifier }
            }
            other => return Err(self.error(format!("unknown transformation {other}"))),
        };
        Ok(PredicatedTransform { pred, transform })
    }

    fn modifier(&mut self) -> Result<Modifier> {
        let kind = self.ident("modifier")?;
        let mut args: Vec<Value> = Vec::new();
        if self.opt_sym('(') {
            while !self.peek_sym(')') {
                args.push(self.literal()?);
                self.opt_sym(',');
            }
            self.sym(')')?;
        }
        let arity_err = |p: &P, want: &str| p.error(format!("modifier {kind} expects {want}"));
        match kind.as_str() {
            "SetNull" => Ok(Modifier::SetNull),
            "Redact" => Ok(Modifier::Redact),
            "HashText" => Ok(Modifier::HashText),
            "Fixed" => match args.as_slice() {
                [v] => Ok(Modifier::Fixed(v.clone())),
                _ => Err(arity_err(self, "one literal argument")),
            },
            "Truncate" => match args.as_slice() {
                [Value::Int(n)] if *n >= 0 => Ok(Modifier::Truncate(*n as usize)),
                _ => Err(arity_err(self, "one non-negative integer")),
            },
            "RandomInt" => match args.as_slice() {
                [Value::Int(lo), Value::Int(hi)] if lo <= hi => {
                    Ok(Modifier::RandomInt { lo: *lo, hi: *hi })
                }
                _ => Err(arity_err(self, "two integers lo <= hi")),
            },
            "RandomText" => match args.as_slice() {
                [Value::Int(n)] if *n >= 0 => Ok(Modifier::RandomText(*n as usize)),
                _ => Err(arity_err(self, "one non-negative integer")),
            },
            "Bucket" => match args.as_slice() {
                [Value::Int(w)] if *w > 0 => Ok(Modifier::Bucket(*w)),
                _ => Err(arity_err(self, "one positive integer")),
            },
            other => Err(self.error(format!("unknown modifier {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = r#"
# Figure 3 of the paper: part of HotCRP's user scrubbing disguise.
disguise_name: "UserScrub"
user_to_disguise: $UID
tables: {
  ContactInfo: {
    generate_placeholder: [
      (name, Random),
      (email, Default(NULL)),
      (disabled, Default(TRUE)),
    ],
    transformations: [ Remove(pred: "contactId = $UID") ],
  },
  ReviewPreference: {
    transformations: [ Remove(pred: "contactId = $UID") ],
  },
  Review: {
    transformations: [
      Decorrelate(pred: "contactId = $UID", foreign_key: (contactId, ContactInfo)),
    ],
  },
}
"#;

    #[test]
    fn parses_figure_3() {
        let spec = parse_spec(FIG3).unwrap();
        assert_eq!(spec.name, "UserScrub");
        assert!(spec.user_scoped);
        assert!(spec.reversible);
        assert_eq!(spec.vault_tier, VaultTier::PerUser);
        assert_eq!(spec.tables.len(), 3);
        let ci = spec.table("ContactInfo").unwrap();
        assert_eq!(ci.generate_placeholder.len(), 3);
        assert!(matches!(ci.generate_placeholder[0].1, Generator::Random));
        assert!(matches!(
            ci.transformations[0].transform,
            Transformation::Remove
        ));
        assert_eq!(
            spec.decorrelations(),
            vec![("Review", "contactId", "ContactInfo")]
        );
        assert_eq!(spec.source_loc, Some(20));
    }

    #[test]
    fn parses_modifiers_and_assertions() {
        let src = r#"
disguise_name: "Decay"
reversible: false
vault_tier: global
expires_after: 86400
tables: {
  comments: {
    transformations: [
      Modify(pred: "created_at < 100", column: body, modifier: Truncate(80)),
      Modify(column: score, modifier: Bucket(10)),
      Modify(column: ip, modifier: SetNull),
      Modify(column: title, modifier: Fixed('gone')),
      Modify(column: email, modifier: HashText),
      Modify(column: karma, modifier: RandomInt(0, 5)),
      Modify(column: name, modifier: RandomText(6)),
      Modify(column: note, modifier: Redact),
    ],
  },
}
assertions: [
  ("no raw ips", comments, "ip IS NOT NULL"),
]
"#;
        let spec = parse_spec(src).unwrap();
        assert!(!spec.reversible);
        assert_eq!(spec.expires_after, Some(86400));
        assert_eq!(spec.tables[0].transformations.len(), 8);
        assert_eq!(spec.assertions.len(), 1);
        assert_eq!(spec.assertions[0].table, "comments");
        // Unpredicated transform has no predicate.
        assert!(spec.tables[0].transformations[1].pred.is_none());
    }

    #[test]
    fn loc_counts_skip_comments_and_blanks() {
        assert_eq!(spec_loc("a\n\n# comment\nb # trailing\n  \n"), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_spec("disguise_name: \"x\"\nbogus_key: 3\n").unwrap_err();
        match err {
            Error::SpecParse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn bad_predicate_rejected() {
        let src = r#"
disguise_name: "x"
tables: { t: { transformations: [ Remove(pred: "not ( valid") ] } }
"#;
        assert!(parse_spec(src).is_err());
    }

    #[test]
    fn missing_name_rejected() {
        assert!(parse_spec("reversible: true").is_err());
    }

    #[test]
    fn decorrelate_requires_foreign_key() {
        let src = r#"
disguise_name: "x"
tables: { t: { transformations: [ Decorrelate(pred: "a = 1") ] } }
"#;
        assert!(parse_spec(src).is_err());
    }

    #[test]
    fn hash_comment_inside_string_is_kept() {
        let src = "disguise_name: \"has#hash\"\n";
        let spec = parse_spec(src).unwrap();
        assert_eq!(spec.name, "has#hash");
    }
}
