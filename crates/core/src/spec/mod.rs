//! Disguise specifications: model, text DSL, and validation.

pub mod model;
pub mod parser;
pub mod render;
pub mod validate;

pub use model::{
    Assertion, DisguiseSpec, DisguiseSpecBuilder, Generator, Modifier, PredicatedTransform,
    TableDisguise, Transformation, ValueFn,
};
pub use parser::{parse_spec, spec_loc};
pub use render::render_spec;
pub use validate::validate_spec;
