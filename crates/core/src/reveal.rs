//! Reverting disguises (paper §4.2, "Reverting disguises").
//!
//! Reversal applies the reveal functions stored in vaults, permanently
//! restoring data to the application database — and then *re-applies* every
//! later, still-active disguise to the revealed rows, so that a reveal
//! never reintroduces data another disguise transformed. ("For example,
//! reversal of GDPR must avoid reintroducing identifiable reviews if
//! ConfAnon has occurred since GDPR was applied.")
//!
//! The workspace audit ([`crate::analyze::interleave`]) models exactly
//! this path: reveals are walked back newest-first with the same
//! reinsert-retry fixpoint as [`Disguiser::reveal`]'s `ReinsertRow`
//! loop, and a reveal is only considered reachable if every parent row
//! its reinsertions reference can still exist. Changes to the reveal
//! semantics here (skip rules, re-application, reinsert ordering) must
//! be mirrored in the audit's transfer model or its proofs go stale.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use edna_relational::{Error as RelError, Value};
use edna_vault::{RevealOp, VaultEntry};

use crate::apply::{pk_of, pk_pred, DisguiseReport, Disguiser};
use crate::error::{Error, Result};

/// What one disguise reversal did.
#[derive(Debug, Clone)]
pub struct RevealReport {
    /// The reverted application id.
    pub disguise_id: u64,
    /// Disguise name.
    pub name: String,
    /// Rows re-inserted (previously removed).
    pub rows_reinserted: usize,
    /// Rows whose columns were restored.
    pub rows_restored: usize,
    /// Vault ops skipped because their row no longer exists (removed by a
    /// later disguise or the application).
    pub skipped_missing: usize,
    /// Placeholder rows deleted.
    pub placeholders_removed: usize,
    /// Placeholder rows kept because other rows still reference them.
    pub placeholders_kept: usize,
    /// Later disguises re-applied to the revealed rows: `(id, name)`.
    pub reapplied: Vec<(u64, String)>,
    /// Rows whose shape had to be adapted to an evolved schema (paper §7:
    /// columns added since the disguise get defaults; dropped columns are
    /// discarded).
    pub rows_schema_adapted: usize,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl Disguiser {
    /// Reverts the most recent active application of `name` for `user`.
    pub fn reveal_latest(&self, name: &str, user: Option<&Value>) -> Result<RevealReport> {
        let user_value = user.cloned().unwrap_or(Value::Null);
        let event = self
            .history
            .latest(name, &user_value)?
            .ok_or_else(|| Error::NoSuchDisguise(format!("{name} (no active application)")))?;
        self.reveal(event.id)
    }

    /// Reverts disguise application `disguise_id`.
    pub fn reveal(&self, disguise_id: u64) -> Result<RevealReport> {
        let mut root = self.span("reveal");
        if let Some(g) = root.as_mut() {
            g.attr("disguise_id", disguise_id.to_string());
        }
        let started = Instant::now();
        let event = self.history.get(disguise_id)?;
        if event.reverted {
            return Err(Error::AlreadyReverted(disguise_id));
        }
        if !event.reversible {
            return Err(Error::NotReversible {
                disguise_id,
                reason: "the disguise was applied irreversibly".to_string(),
            });
        }
        let entries = self
            .vaults
            .entries_for_disguise(&event.user_id, disguise_id)?;
        if entries.is_empty() {
            return Err(Error::NotReversible {
                disguise_id,
                reason: "no vault entries remain (expired or purged)".to_string(),
            });
        }

        let use_txn = self.options.use_transaction;
        if use_txn {
            self.db.begin()?;
        }
        let result = self.reveal_inner(disguise_id, &event, &entries);
        match result {
            Ok(mut report) => {
                if use_txn {
                    self.db.commit()?;
                }
                report.duration = started.elapsed();
                Ok(report)
            }
            Err(e) => {
                if use_txn {
                    // Surface a failed rollback as a double fault rather
                    // than silently dropping it (the reveal may be half
                    // applied).
                    if let Err(rollback) = self.db.rollback() {
                        return Err(Error::RollbackFailed {
                            apply: Box::new(e),
                            rollback,
                        });
                    }
                }
                Err(e)
            }
        }
    }

    fn reveal_inner(
        &self,
        disguise_id: u64,
        event: &crate::history::DisguiseEvent,
        entries: &[VaultEntry],
    ) -> Result<RevealReport> {
        let mut report = RevealReport {
            disguise_id,
            name: event.name.clone(),
            rows_reinserted: 0,
            rows_restored: 0,
            skipped_missing: 0,
            placeholders_removed: 0,
            placeholders_kept: 0,
            reapplied: Vec::new(),
            rows_schema_adapted: 0,
            duration: Duration::ZERO,
        };
        let all_ops: Vec<&RevealOp> = entries.iter().flat_map(|e| e.ops.iter()).collect();
        // Revealed rows per table (lowercase name -> pk values), fed to the
        // re-application pass.
        let mut revealed: HashMap<String, Vec<Value>> = HashMap::new();

        // Phase 1: re-insert removed rows, newest-removed first (cascaded
        // children were recorded before their parents, so the reverse order
        // restores parents first). A fixpoint loop tolerates cross-entry
        // orderings.
        let reinsert_span = self.span("reinsert");
        let mut pending: Vec<&RevealOp> = all_ops
            .iter()
            .rev()
            .copied()
            .filter(|op| matches!(op, RevealOp::ReinsertRow { .. }))
            .collect();
        loop {
            let mut next_round = Vec::new();
            let mut progressed = false;
            for op in pending {
                let RevealOp::ReinsertRow {
                    table,
                    columns,
                    row,
                } = op
                else {
                    unreachable!()
                };
                let schema = self.db.schema(table)?;
                let (row, adapted) = adapt_row(&schema, columns, row);
                if adapted {
                    report.rows_schema_adapted += 1;
                }
                match self.db.insert_full_row(table, row.clone()) {
                    Ok(()) => {
                        progressed = true;
                        report.rows_reinserted += 1;
                        if let Ok((pk_idx, _)) = pk_of(&schema, "reveal") {
                            revealed
                                .entry(table.to_lowercase())
                                .or_default()
                                .push(row[pk_idx].clone());
                        }
                    }
                    Err(RelError::UniqueViolation { .. }) => {
                        // Already present (e.g. the application re-created
                        // it); nothing to do.
                        report.skipped_missing += 1;
                    }
                    Err(RelError::ForeignKeyViolation { .. }) => {
                        // Parent not restored yet; retry next round.
                        next_round.push(op);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if next_round.is_empty() {
                break;
            }
            if !progressed {
                let RevealOp::ReinsertRow { table, .. } = next_round[0] else {
                    unreachable!()
                };
                return Err(Error::NotReversible {
                    disguise_id,
                    reason: format!(
                        "cannot re-insert {} row(s) into {table}: missing parents",
                        next_round.len()
                    ),
                });
            }
            pending = next_round;
        }
        drop(reinsert_span);

        // Phase 2: restore modified/decorrelated columns.
        let restore_span = self.span("restore_columns");
        for op in &all_ops {
            let RevealOp::RestoreColumns {
                table,
                pk_column,
                pk,
                columns,
            } = op
            else {
                continue;
            };
            let schema = self.db.schema(table)?;
            let pred = pk_pred(pk_column, pk);
            let rows = self.db.select_rows(table, Some(&pred), &HashMap::new())?;
            if rows.is_empty() {
                report.skipped_missing += 1;
                continue;
            }
            // Columns dropped by schema evolution since the disguise are
            // skipped (paper §7).
            let mut dropped_any = false;
            let restores: Vec<(usize, Value)> = columns
                .iter()
                .filter_map(|(c, v)| match schema.column_index(c) {
                    Some(i) => Some((i, v.clone())),
                    None => {
                        dropped_any = true;
                        None
                    }
                })
                .collect();
            if dropped_any {
                report.rows_schema_adapted += 1;
            }
            if restores.is_empty() {
                report.skipped_missing += 1;
                continue;
            }
            self.db
                .update_with(table, Some(&pred), &HashMap::new(), |_, row| {
                    for (idx, v) in &restores {
                        row[*idx] = v.clone();
                    }
                    Ok(())
                })?;
            report.rows_restored += 1;
            revealed
                .entry(table.to_lowercase())
                .or_default()
                .push(pk.clone());
        }
        drop(restore_span);

        // Phase 3: garbage-collect placeholders nothing references anymore.
        let gc_span = self.span("placeholder_gc");
        for op in &all_ops {
            let RevealOp::RemovePlaceholder {
                table,
                pk_column,
                pk,
            } = op
            else {
                continue;
            };
            let pred = pk_pred(pk_column, pk);
            match self.db.delete_where(table, &pred, &HashMap::new()) {
                Ok(0) => report.skipped_missing += 1,
                Ok(_) => report.placeholders_removed += 1,
                Err(RelError::ForeignKeyViolation { .. }) => {
                    // Another disguise's rows still point here; keep it.
                    report.placeholders_kept += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
        drop(gc_span);

        // Re-application: later active disguises must still hold over the
        // revealed rows (§4.2).
        let reapply_span = self.span("reapply");
        for later in self.history.active_after(disguise_id)? {
            let Some(spec) = edna_util::sync::read_unpoisoned(&self.specs)
                .get(&later.name)
                .cloned()
            else {
                continue;
            };
            let spec = &spec;
            let mut params = HashMap::new();
            if !later.user_id.is_null() {
                params.insert("UID".to_string(), later.user_id.clone());
            }
            let mut ops: Vec<RevealOp> = Vec::new();
            let mut sub_report = DisguiseReport {
                name: spec.name.clone(),
                user_id: later.user_id.clone(),
                ..DisguiseReport::default()
            };
            let mut touched = false;
            for section in &spec.tables {
                let Some(pks) = revealed.get(&section.table.to_lowercase()) else {
                    continue;
                };
                if pks.is_empty() {
                    continue;
                }
                let schema = self.db.schema(&section.table)?;
                let (_, pk_col) = pk_of(&schema, "reveal re-application")?;
                let restriction = edna_relational::Expr::InList {
                    expr: Box::new(edna_relational::Expr::col(pk_col)),
                    list: pks
                        .iter()
                        .map(|v| edna_relational::Expr::Literal(v.clone()))
                        .collect(),
                    negated: false,
                };
                for pt in &section.transformations {
                    self.apply_transform(
                        spec,
                        &section.table,
                        pt,
                        Some(&restriction),
                        &params,
                        &mut ops,
                        &mut sub_report,
                    )?;
                }
                touched = true;
            }
            if touched
                && (sub_report.rows_removed
                    + sub_report.rows_decorrelated
                    + sub_report.rows_modified)
                    > 0
            {
                report.reapplied.push((later.id, later.name.clone()));
                if spec.reversible && !ops.is_empty() {
                    let now = self.db.now();
                    let addendum = VaultEntry {
                        disguise_id: later.id,
                        disguise_name: later.name.clone(),
                        user_id: later.user_id.clone(),
                        ops,
                        created_at: now,
                        expires_at: spec.expires_after.map(|d| now + d),
                    };
                    self.vaults.put(spec.vault_tier, &addendum)?;
                }
            }
        }
        drop(reapply_span);

        // The reveal is permanent: drop the entries and mark the event.
        self.vaults.remove(&event.user_id, disguise_id)?;
        self.history.mark_reverted(disguise_id)?;
        Ok(report)
    }
}

/// Reshapes a recorded row to the current schema: recorded columns are
/// matched by name; columns added since the disguise get their DEFAULT (or
/// NULL); columns dropped since are discarded. Returns the adapted row and
/// whether any adaptation happened.
fn adapt_row(
    schema: &edna_relational::TableSchema,
    columns: &[String],
    row: &[Value],
) -> (Vec<Value>, bool) {
    let exact = columns.len() == schema.arity()
        && schema
            .columns
            .iter()
            .zip(columns)
            .all(|(c, name)| c.name.eq_ignore_ascii_case(name));
    if exact {
        return (row.to_vec(), false);
    }
    let out = schema
        .columns
        .iter()
        .map(|c| {
            match columns
                .iter()
                .position(|name| name.eq_ignore_ascii_case(&c.name))
            {
                Some(i) => row[i].clone(),
                None => c.default.clone().unwrap_or(Value::Null),
            }
        })
        .collect();
    (out, true)
}
