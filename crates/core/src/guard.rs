//! Guarding application writes to disguised data.
//!
//! Paper §7: "our framework does not answer how disguises compose with
//! normal application changes to disguised data. ... One possible solution
//! is to make such updates themselves disguises ... Another solution would
//! prohibit updates to disguised data (which limits the application)."
//!
//! This module implements the *prohibit* variant: [`Disguiser::is_disguised`]
//! reports whether a row is currently covered by an active reveal function,
//! and [`Disguiser::guarded_update`] refuses to modify such rows. The check
//! consults the vaults of all active disguises, so it sees exactly the rows
//! whose pre-disguise state is recorded — updating them would make the
//! recorded reveal functions stale.

use std::collections::{HashMap, HashSet};

use edna_relational::{Expr, Row, TableSchema, Value};
use edna_vault::RevealOp;

use crate::apply::{pk_of, Disguiser};
use crate::error::{Error, Result};

/// The set of currently disguised rows: lowercase table name → primary-key
/// literals.
pub type DisguisedRows = HashMap<String, HashSet<String>>;

impl Disguiser {
    /// Collects the rows currently covered by active (non-reverted) reveal
    /// functions, across both vault tiers.
    ///
    /// Removed rows are not listed (they don't exist to be updated);
    /// placeholder rows *are* listed — editing a placeholder would corrupt
    /// the reveal.
    pub fn disguised_rows(&self) -> Result<DisguisedRows> {
        let mut out: DisguisedRows = HashMap::new();
        for event in self.history.events()? {
            if event.reverted || !event.reversible {
                continue;
            }
            for entry in self.vaults.entries_for_disguise(&event.user_id, event.id)? {
                for op in &entry.ops {
                    match op {
                        RevealOp::RestoreColumns { table, pk, .. }
                        | RevealOp::RemovePlaceholder { table, pk, .. } => {
                            out.entry(table.to_lowercase())
                                .or_default()
                                .insert(pk.to_sql_literal());
                        }
                        RevealOp::ReinsertRow { .. } => {}
                    }
                }
            }
        }
        Ok(out)
    }

    /// Whether the row `table[pk]` is currently disguised.
    pub fn is_disguised(&self, table: &str, pk: &Value) -> Result<bool> {
        let rows = self.disguised_rows()?;
        Ok(rows
            .get(&table.to_lowercase())
            .is_some_and(|set| set.contains(&pk.to_sql_literal())))
    }

    /// An update API for the application that refuses to touch disguised
    /// rows (paper §7's "prohibit updates to disguised data").
    ///
    /// Checks every row matching `where_` against the disguised set before
    /// applying `f`; if any is disguised the whole update is rejected with
    /// [`Error::DisguisedData`] and nothing changes.
    pub fn guarded_update(
        &self,
        table: &str,
        where_: Option<&Expr>,
        params: &HashMap<String, Value>,
        f: impl FnMut(&TableSchema, &mut Row) -> std::result::Result<(), edna_relational::Error>,
    ) -> Result<usize> {
        let schema = self.db.schema(table)?;
        let (pk_idx, _) = pk_of(&schema, "guarded update")?;
        let disguised = self.disguised_rows()?;
        let guarded_set = disguised.get(&table.to_lowercase());
        let candidates = self.db.select_rows(table, where_, params)?;
        for row in &candidates {
            let pk_literal = row[pk_idx].to_sql_literal();
            if guarded_set.is_some_and(|set| set.contains(&pk_literal)) {
                return Err(Error::DisguisedData {
                    table: schema.name.clone(),
                    pk: pk_literal,
                });
            }
        }
        Ok(self.db.update_with(table, where_, params, f)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DisguiseSpecBuilder, Generator, Modifier};
    use edna_relational::Database;

    fn setup() -> (Database, Disguiser) {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
             disabled BOOL NOT NULL DEFAULT FALSE);
             CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
        )
        .unwrap();
        db.execute("INSERT INTO users (name) VALUES ('bea'), ('mel')")
            .unwrap();
        db.execute("INSERT INTO posts (user_id, body) VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        let edna = Disguiser::new(db.clone());
        edna.register(
            DisguiseSpecBuilder::new("Scrub")
                .user_scoped()
                .modify("posts", Some("user_id = $UID"), "body", Modifier::Redact)
                .decorrelate("posts", Some("user_id = $UID"), "user_id", "users")
                .placeholder("users", "name", Generator::Random)
                .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
                .build()
                .unwrap(),
        )
        .unwrap();
        (db, edna)
    }

    #[test]
    fn disguised_rows_tracks_active_disguises() {
        let (_db, edna) = setup();
        assert!(edna.disguised_rows().unwrap().is_empty());
        let report = edna.apply("Scrub", Some(&Value::Int(1))).unwrap();
        assert!(edna.is_disguised("posts", &Value::Int(1)).unwrap());
        assert!(!edna.is_disguised("posts", &Value::Int(2)).unwrap());
        // After reveal, nothing is disguised anymore.
        edna.reveal(report.disguise_id).unwrap();
        assert!(!edna.is_disguised("posts", &Value::Int(1)).unwrap());
    }

    #[test]
    fn guarded_update_rejects_disguised_rows_atomically() {
        let (db, edna) = setup();
        edna.apply("Scrub", Some(&Value::Int(1))).unwrap();
        let before = db.dump();
        // A sweeping application update that would touch the disguised
        // post is rejected entirely.
        let err = edna
            .guarded_update("posts", None, &HashMap::new(), |schema, row| {
                let i = schema.require_column("body")?;
                row[i] = Value::Text("edited".into());
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, Error::DisguisedData { .. }), "got {err}");
        assert_eq!(db.dump(), before, "rejected update must change nothing");
    }

    #[test]
    fn guarded_update_allows_undisguised_rows() {
        let (db, edna) = setup();
        edna.apply("Scrub", Some(&Value::Int(1))).unwrap();
        let pred = edna_relational::parse_expr("user_id = 2").unwrap();
        let n = edna
            .guarded_update("posts", Some(&pred), &HashMap::new(), |schema, row| {
                let i = schema.require_column("body")?;
                row[i] = Value::Text("edited".into());
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            db.execute("SELECT body FROM posts WHERE user_id = 2")
                .unwrap()
                .rows[0][0],
            Value::Text("edited".into())
        );
    }

    #[test]
    fn placeholders_are_guarded_too() {
        let (db, edna) = setup();
        edna.apply("Scrub", Some(&Value::Int(1))).unwrap();
        // Find the placeholder user created by the decorrelation.
        let placeholder = db
            .execute("SELECT id FROM users WHERE disabled = TRUE")
            .unwrap()
            .rows[0][0]
            .clone();
        assert!(edna.is_disguised("users", &placeholder).unwrap());
    }
}
