//! Transfer functions: one abstract effect list per disguise spec.
//!
//! [`derive`] compiles a [`DisguiseSpec`] against the live schema into a
//! [`SpecTransfer`] — the audit's model of what `apply.rs` would do:
//!
//! - `Remove` expands to its **cascade closure** (apply's
//!   `delete_where_returning` deletes `ON DELETE CASCADE` children along
//!   with the parent and records them in the same vault entry, and sets
//!   `ON DELETE SET NULL` child columns);
//! - every removed table carries its **reinsert dependencies**: the
//!   parent tables its rows reference, which a reveal's `ReinsertRow`
//!   ops need present (reveal.rs re-inserts in a fixpoint loop, so
//!   intra-entry and self-referential ordering is already handled —
//!   only *cross-disguise* parents can be permanently missing);
//! - `Modify`/`Decorrelate` become column writes.
//!
//! Vault reality is modeled where the interleaver consumes these
//! effects: a reversible spec writes a vault entry only if at least one
//! effect *realizes* (apply.rs: `if spec.reversible && !ops.is_empty()`),
//! and `expires_after` makes those entries mortal.

use std::collections::BTreeSet;

use edna_relational::{Database, ReferentialAction};

use crate::spec::{DisguiseSpec, Transformation};

/// What one column write abstractly is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColOp {
    /// A `Modify` through some modifier.
    Modify,
    /// A `Decorrelate` onto placeholders in `parent`.
    Decorrelate {
        /// The placeholder parent table (lowercased).
        parent: String,
    },
}

/// One abstract effect of applying a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Rows of `table` are deleted (directly or by cascade).
    RemoveRows {
        /// The (lowercased) table whose rows go away.
        table: String,
        /// Parent tables a reveal's reinsert needs present (lowercased,
        /// self-references excluded).
        reinsert_parents: Vec<String>,
    },
    /// One column of `table` is rewritten.
    WriteCol {
        /// The (lowercased) table.
        table: String,
        /// The (lowercased) column.
        column: String,
        /// How.
        op: ColOp,
    },
}

/// The audit's model of one registered disguise.
#[derive(Debug, Clone)]
pub struct SpecTransfer {
    /// Spec name (diagnostics subject).
    pub name: String,
    /// Whether the spec records reveal ops in vaults at all.
    pub reversible: bool,
    /// Whether those vault entries expire (`expires_after`), i.e. the
    /// disguise eventually becomes irreversible on its own.
    pub expiring: bool,
    /// Effects in application order.
    pub effects: Vec<Effect>,
}

impl SpecTransfer {
    /// The tables this transfer removes rows from (lowercased, in
    /// effect order).
    pub fn removed_tables(&self) -> Vec<&str> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::RemoveRows { table, .. } => Some(table.as_str()),
                Effect::WriteCol { .. } => None,
            })
            .collect()
    }
}

/// Compiles `spec` into its abstract transfer against the schema in
/// `db`. Unknown tables and columns are skipped — `analyze_spec` reports
/// those as `E002`/`E003` separately, and the audit must not crash on a
/// spec the per-spec passes already rejected.
pub fn derive(spec: &DisguiseSpec, db: &Database) -> SpecTransfer {
    let mut effects = Vec::new();
    let mut removed: BTreeSet<String> = BTreeSet::new();
    for section in &spec.tables {
        let table = section.table.to_ascii_lowercase();
        if db.schema(&table).is_err() {
            continue;
        }
        for pt in &section.transformations {
            match &pt.transform {
                Transformation::Remove => {
                    for t in cascade_closure(db, &table) {
                        if removed.insert(t.clone()) {
                            effects.push(Effect::RemoveRows {
                                reinsert_parents: reinsert_parents(db, &t),
                                table: t.clone(),
                            });
                        }
                        for (child, col) in set_null_children(db, &t) {
                            effects.push(Effect::WriteCol {
                                table: child,
                                column: col,
                                op: ColOp::Modify,
                            });
                        }
                    }
                }
                Transformation::Modify { column, .. } => {
                    effects.push(Effect::WriteCol {
                        table: table.clone(),
                        column: column.to_ascii_lowercase(),
                        op: ColOp::Modify,
                    });
                }
                Transformation::Decorrelate {
                    fk_column,
                    parent_table,
                } => {
                    effects.push(Effect::WriteCol {
                        table: table.clone(),
                        column: fk_column.to_ascii_lowercase(),
                        op: ColOp::Decorrelate {
                            parent: parent_table.to_ascii_lowercase(),
                        },
                    });
                }
            }
        }
    }
    SpecTransfer {
        name: spec.name.clone(),
        reversible: spec.reversible,
        expiring: spec.expires_after.is_some(),
        effects,
    }
}

/// `table` plus every table reachable from it through `ON DELETE
/// CASCADE` child edges — the set of tables a single `Remove` can
/// empty (rows-wise), all recorded in the same vault entry.
fn cascade_closure(db: &Database, table: &str) -> Vec<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut order = vec![table.to_string()];
    seen.insert(table.to_string());
    let mut i = 0;
    while i < order.len() {
        let parent = order[i].clone();
        i += 1;
        for name in db.table_names() {
            let name = name.to_ascii_lowercase();
            if seen.contains(&name) {
                continue;
            }
            let Ok(schema) = db.schema(&name) else {
                continue;
            };
            let cascades = schema.foreign_keys.iter().any(|fk| {
                fk.parent_table.eq_ignore_ascii_case(&parent)
                    && fk.on_delete == ReferentialAction::Cascade
            });
            if cascades {
                seen.insert(name.clone());
                order.push(name);
            }
        }
    }
    order
}

/// Parent tables the rows of `table` reference: reinserting vaulted
/// rows of `table` needs these present. Self-references are excluded
/// (reveal's fixpoint loop reinserts a table's own hierarchy).
fn reinsert_parents(db: &Database, table: &str) -> Vec<String> {
    let Ok(schema) = db.schema(table) else {
        return Vec::new();
    };
    let mut parents: Vec<String> = schema
        .foreign_keys
        .iter()
        .map(|fk| fk.parent_table.to_ascii_lowercase())
        .filter(|p| !p.eq_ignore_ascii_case(table))
        .collect();
    parents.sort();
    parents.dedup();
    parents
}

/// `(child_table, fk_column)` pairs whose FK to `table` is `ON DELETE
/// SET NULL`: deleting `table` rows rewrites those columns.
fn set_null_children(db: &Database, table: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for name in db.table_names() {
        let name = name.to_ascii_lowercase();
        let Ok(schema) = db.schema(&name) else {
            continue;
        };
        for fk in &schema.foreign_keys {
            if fk.parent_table.eq_ignore_ascii_case(table)
                && fk.on_delete == ReferentialAction::SetNull
            {
                out.push((name.clone(), fk.column.to_ascii_lowercase()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DisguiseSpecBuilder, Modifier};

    fn db() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)")
            .unwrap();
        db.execute(
            "CREATE TABLE stories (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT, \
             FOREIGN KEY (user_id) REFERENCES users(id))",
        )
        .unwrap();
        db.execute(
            "CREATE TABLE comments (id INT PRIMARY KEY AUTO_INCREMENT, story_id INT, \
             moderator_id INT, \
             FOREIGN KEY (story_id) REFERENCES stories(id) ON DELETE CASCADE, \
             FOREIGN KEY (moderator_id) REFERENCES users(id) ON DELETE SET NULL)",
        )
        .unwrap();
        db
    }

    #[test]
    fn remove_expands_to_cascade_closure_with_reinsert_parents() {
        let db = db();
        let spec = DisguiseSpecBuilder::new("S")
            .user_scoped()
            .remove("stories", Some("user_id = $UID"))
            .build()
            .unwrap();
        let t = derive(&spec, &db);
        assert_eq!(t.removed_tables(), vec!["stories", "comments"]);
        let parents: Vec<_> = t
            .effects
            .iter()
            .filter_map(|e| match e {
                Effect::RemoveRows {
                    table,
                    reinsert_parents,
                } => Some((table.clone(), reinsert_parents.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(parents[0], ("stories".into(), vec!["users".to_string()]));
        // Comments reinsert needs both its cascade parent and the
        // SET NULL moderator parent.
        assert_eq!(
            parents[1],
            (
                "comments".into(),
                vec!["stories".to_string(), "users".to_string()]
            )
        );
        // Deleting stories also nulls comments.moderator_id? No — the
        // SET NULL edge hangs off users, not stories; no column writes.
        assert!(parents.len() == 2);
    }

    #[test]
    fn set_null_cascades_become_column_writes() {
        let db = db();
        let spec = DisguiseSpecBuilder::new("S")
            .user_scoped()
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        let t = derive(&spec, &db);
        assert!(t
            .effects
            .iter()
            .any(|e| matches!(e, Effect::WriteCol { table, column, .. }
                 if table == "comments" && column == "moderator_id")));
    }

    #[test]
    fn modify_and_decorrelate_are_column_writes() {
        let db = db();
        let spec = DisguiseSpecBuilder::new("S")
            .modify("users", None, "name", Modifier::Redact)
            .decorrelate("stories", None, "user_id", "users")
            .build()
            .unwrap();
        let t = derive(&spec, &db);
        assert_eq!(
            t.effects,
            vec![
                Effect::WriteCol {
                    table: "users".into(),
                    column: "name".into(),
                    op: ColOp::Modify,
                },
                Effect::WriteCol {
                    table: "stories".into(),
                    column: "user_id".into(),
                    op: ColOp::Decorrelate {
                        parent: "users".into()
                    },
                },
            ]
        );
    }

    #[test]
    fn unknown_tables_are_skipped_not_fatal() {
        let db = db();
        let spec = DisguiseSpecBuilder::new("S")
            .remove("ghost", None)
            .build()
            .unwrap();
        assert!(derive(&spec, &db).effects.is_empty());
    }
}
