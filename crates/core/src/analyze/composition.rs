//! Pass 3: reveal-safety of disguise *pairs*.
//!
//! Extends [`crate::analysis`] (which finds transforms a prior disguise
//! makes redundant) in the other direction: transform pairs whose
//! composition is *lossy on reveal*. Reversible pairs are fine — the
//! apply-time composition machinery recorrelates through vaults — so
//! these warnings fire only when one side is irreversible (no vault
//! entries, or entries that expire): a `Remove` over rows a prior
//! disguise decorrelated (`W020`), or a second `Modify` of a column an
//! irreversible disguise already rewrote (`W021`).

use crate::spec::{DisguiseSpec, Transformation};

use super::diagnostics::{codes, Diagnostic, Location};

/// Whether reveal functions for this spec are ever unavailable: never
/// recorded, or recorded with an expiry.
fn irreversible(spec: &DisguiseSpec) -> bool {
    !spec.reversible || spec.expires_after.is_some()
}

fn why_irreversible(spec: &DisguiseSpec) -> &'static str {
    if !spec.reversible {
        "records no reveal functions"
    } else {
        "has expiring vault entries"
    }
}

/// Runs the pass: `current` against each prior spec, appending findings
/// to `diags`. Priors should be passed in a deterministic order.
pub fn check(current: &DisguiseSpec, priors: &[&DisguiseSpec], diags: &mut Vec<Diagnostic>) {
    for prior in priors {
        if !irreversible(current) && !irreversible(prior) {
            continue;
        }
        let lossy = if irreversible(current) {
            format!("`{}` {}", current.name, why_irreversible(current))
        } else {
            format!("`{}` {}", prior.name, why_irreversible(prior))
        };
        check_remove_after_decorrelate(current, prior, &lossy, diags);
        check_double_modify(current, prior, &lossy, diags);
    }
}

/// `prior` decorrelates `T.c`; `current` removes rows of `T`. With both
/// reversible, apply-time composition recorrelates first and the removed
/// originals stay recoverable. With either side irreversible, reveal
/// cannot reconstruct the original correlation: the pair is lossy.
fn check_remove_after_decorrelate(
    current: &DisguiseSpec,
    prior: &DisguiseSpec,
    lossy: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for section in &current.tables {
        let removes = section
            .transformations
            .iter()
            .any(|pt| matches!(pt.transform, Transformation::Remove));
        if !removes {
            continue;
        }
        let Some(prior_section) = prior.table(&section.table) else {
            continue;
        };
        for pt in &prior_section.transformations {
            if let Transformation::Decorrelate { fk_column, .. } = &pt.transform {
                diags.push(
                    Diagnostic::warning(
                        codes::LOSSY_REMOVE_AFTER_DECORRELATE,
                        &current.name,
                        Location::table(&section.table).with_context(format!(
                            "Remove composed over `{}`'s Decorrelate({fk_column})",
                            prior.name
                        )),
                        format!(
                            "removing `{}` rows that `{}` decorrelated is lossy on reveal: \
                             {lossy}, so the original `{fk_column}` correlation cannot be \
                             reconstructed",
                            section.table, prior.name
                        ),
                    )
                    .with_help(
                        "make both disguises reversible without expiry, or accept that reveal \
                         restores decorrelated rows",
                    ),
                );
            }
        }
    }
}

/// Both specs modify the same `(table, column)`. With either side
/// irreversible, the value the reversible side vaulted (or re-derives) is
/// already disguised, so reveal restores a disguised value.
fn check_double_modify(
    current: &DisguiseSpec,
    prior: &DisguiseSpec,
    lossy: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for section in &current.tables {
        let Some(prior_section) = prior.table(&section.table) else {
            continue;
        };
        for pt in &section.transformations {
            let Transformation::Modify { column, modifier } = &pt.transform else {
                continue;
            };
            for prior_pt in &prior_section.transformations {
                let Transformation::Modify {
                    column: prior_col,
                    modifier: prior_mod,
                } = &prior_pt.transform
                else {
                    continue;
                };
                if !prior_col.eq_ignore_ascii_case(column) {
                    continue;
                }
                diags.push(
                    Diagnostic::warning(
                        codes::LOSSY_DOUBLE_MODIFY,
                        &current.name,
                        Location::column(&section.table, column).with_context(format!(
                            "Modify({}) composed over `{}`'s Modify({})",
                            modifier.name(),
                            prior.name,
                            prior_mod.name()
                        )),
                        format!(
                            "modifying `{}.{column}` again after `{}` is lossy on reveal: \
                             {lossy}, so the pre-disguise value cannot be restored",
                            section.table, prior.name
                        ),
                    )
                    .with_help("make both disguises reversible without expiry, or drop one Modify"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DisguiseSpecBuilder, Modifier};

    fn decorrelator(reversible: bool) -> DisguiseSpec {
        let mut b = DisguiseSpecBuilder::new("Anon")
            .decorrelate("reviews", None, "user_id", "users")
            .modify("reviews", None, "body", Modifier::Redact);
        if !reversible {
            b = b.irreversible();
        }
        b.build().unwrap()
    }

    fn remover() -> DisguiseSpec {
        DisguiseSpecBuilder::new("Scrub")
            .user_scoped()
            .remove("reviews", Some("user_id = $UID"))
            .build()
            .unwrap()
    }

    #[test]
    fn reversible_pairs_do_not_warn() {
        let prior = decorrelator(true);
        let mut diags = Vec::new();
        check(&remover(), &[&prior], &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn irreversible_prior_makes_remove_after_decorrelate_lossy() {
        let prior = decorrelator(false);
        let mut diags = Vec::new();
        check(&remover(), &[&prior], &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::LOSSY_REMOVE_AFTER_DECORRELATE);
    }

    #[test]
    fn expiring_current_makes_double_modify_lossy() {
        let prior = decorrelator(true);
        let current = DisguiseSpecBuilder::new("Decay")
            .modify("reviews", None, "body", Modifier::Truncate(10))
            .expires_after(3600)
            .build()
            .unwrap();
        let mut diags = Vec::new();
        check(&current, &[&prior], &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::LOSSY_DOUBLE_MODIFY);
        assert_eq!(diags[0].location.column.as_deref(), Some("body"));
    }

    #[test]
    fn disjoint_tables_and_columns_do_not_warn() {
        let prior = decorrelator(false);
        let current = DisguiseSpecBuilder::new("Other")
            .modify("users", None, "email", Modifier::SetNull)
            .build()
            .unwrap();
        let mut diags = Vec::new();
        check(&current, &[&prior], &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
