//! Fixed-point exploration of disguise interleavings.
//!
//! The workspace's registered disguises (plus the disguises policies
//! schedule — expiration targets and decay stages are registered specs
//! too) can be applied in any order, to the same user or across users.
//! [`explore`] enumerates every application order (each spec at most
//! once — re-applying a spec to already-disguised rows realizes no new
//! effects, the same reason no-op applications are pruned below) over
//! the abstract state, and for **every reachable world** checks that the
//! disguised state can be *walked back*:
//!
//! - a reversible application is revealed by consuming its vault entry,
//!   which reinserts the rows it removed — legal only while the parent
//!   rows its reinsertions reference still exist (reveal.rs would hit FK
//!   violations otherwise, and retries forever in its fixpoint loop);
//! - revealing is attempted newest-first (LIFO) and re-attempted to a
//!   fixed point, mirroring reveal.rs's reinsert loop and its
//!   re-application of later active disguises;
//! - an application that can never be revealed in any continuation is a
//!   **stuck reveal**: its vault entries are orphaned (no reveal can
//!   consume them) and the data it removed can never return to
//!   `Present`, despite the spec promising reversibility.
//!
//! A second, stricter pass treats `expires_after` specs as irreversible
//! (their entries vanish on expiry — `purge_expired` really deletes
//! them), surfacing reveals that only work *before* some other
//! disguise's vault expires.
//!
//! The search is bounded by `world_cap`; hitting the bound sets
//! [`Exploration::truncated`] so the audit can say so out loud rather
//! than silently under-approximate.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use super::lattice::{CellId, CellState};
use super::transfer::{ColOp, Effect, SpecTransfer};

/// A reversible application whose reveal is permanently blocked in some
/// interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckReveal {
    /// The spec whose reveal is blocked.
    pub app: String,
    /// The spec that removed the rows the reveal needs.
    pub blocker: String,
    /// The table `app` removed rows from and can no longer reinsert.
    pub table: String,
    /// The missing parent table those reinsertions reference.
    pub parent: String,
    /// The application order that produces the block (spec names).
    pub trail: Vec<String>,
    /// `false`: blocked outright. `true`: blocked only once the
    /// blocker's `expires_after` vault entries lapse.
    pub only_if_expired: bool,
}

/// The result of exploring every interleaving.
#[derive(Debug, Default)]
pub struct Exploration {
    /// Stuck reveals, deduplicated by (app, blocker, table, parent,
    /// expiry-flag) keeping the shortest witness trail.
    pub stuck: Vec<StuckReveal>,
    /// The join over all reachable worlds of every touched cell — the
    /// lattice summary of what the disguise graph can do to each
    /// `(table, column)`.
    pub summary: BTreeMap<CellId, CellState>,
    /// How many worlds were visited.
    pub worlds: usize,
    /// Whether the search hit `world_cap` before completing.
    pub truncated: bool,
}

/// One applied spec inside a world.
#[derive(Debug, Clone)]
struct Applied {
    /// Index into the transfer list.
    t: usize,
    /// Tables whose rows this application actually removed (a `Remove`
    /// over already-removed rows realizes nothing).
    realized_removes: Vec<String>,
    /// Whether apply.rs would have written a vault entry: reversible
    /// and at least one op recorded.
    wrote_vault: bool,
}

/// One reachable abstract state.
#[derive(Debug, Clone, Default)]
struct World {
    /// table → position in `apps` of the application that removed it.
    removed: BTreeMap<String, usize>,
    /// Column cell states (row cells live in `removed`).
    cols: BTreeMap<CellId, CellState>,
    /// Applications in order.
    apps: Vec<Applied>,
}

impl World {
    /// Applies `transfers[t]`, returning the successor world and
    /// whether anything realized.
    fn apply(&self, transfers: &[SpecTransfer], t: usize) -> (World, bool) {
        let mut next = self.clone();
        let tr = &transfers[t];
        let invertible = tr.reversible && !tr.expiring;
        let pos = next.apps.len();
        let mut removes = Vec::new();
        let mut writes = 0usize;
        for effect in &tr.effects {
            match effect {
                Effect::RemoveRows { table, .. } => {
                    if !next.removed.contains_key(table) {
                        next.removed.insert(table.clone(), pos);
                        removes.push(table.clone());
                    }
                }
                Effect::WriteCol { table, column, op } => {
                    if next.removed.contains_key(table) {
                        continue; // rows gone: the predicate matches nothing
                    }
                    writes += 1;
                    let id = CellId::col(table, column);
                    let prior = next.cols.get(&id).copied().unwrap_or(CellState::Present);
                    let inv = prior.recoverable() && invertible;
                    let state = match op {
                        ColOp::Modify => CellState::Modified { invertible: inv },
                        ColOp::Decorrelate { .. } => CellState::Decorrelated { invertible: inv },
                    };
                    next.cols.insert(id, state);
                }
            }
        }
        let realized = !removes.is_empty() || writes > 0;
        next.apps.push(Applied {
            t,
            realized_removes: removes,
            wrote_vault: tr.reversible && realized,
        });
        (next, realized)
    }

    /// Joins this world's cells into `summary`.
    fn summarize(&self, transfers: &[SpecTransfer], summary: &mut BTreeMap<CellId, CellState>) {
        for (table, pos) in &self.removed {
            let tr = &transfers[self.apps[*pos].t];
            let state = CellState::Removed {
                vaulted: tr.reversible && !tr.expiring,
            };
            let id = CellId::rows(table);
            let joined = summary.get(&id).copied().unwrap_or(CellState::Bottom);
            summary.insert(id, joined.join(state));
        }
        for (id, state) in &self.cols {
            let joined = summary.get(id).copied().unwrap_or(CellState::Bottom);
            summary.insert(id.clone(), joined.join(*state));
        }
    }

    /// Attempts to reveal every vaulted application, newest-first, to a
    /// fixed point (mirroring reveal.rs's reinsert retry loop). Returns
    /// the positions that can never be revealed.
    fn walk_back(&self, transfers: &[SpecTransfer], strict_expiry: bool) -> Vec<usize> {
        let revealable = |pos: usize| {
            let app = &self.apps[pos];
            app.wrote_vault && !(strict_expiry && transfers[app.t].expiring)
        };
        let mut remaining: BTreeSet<usize> =
            (0..self.apps.len()).filter(|&p| revealable(p)).collect();
        let mut removed_now = self.removed.clone();
        loop {
            let mut progressed = false;
            for pos in remaining.clone().into_iter().rev() {
                let app = &self.apps[pos];
                let enabled = app.realized_removes.iter().all(|t| {
                    reinsert_parents(&transfers[app.t], t).iter().all(|p| {
                        match removed_now.get(p.as_str()) {
                            None => true,
                            Some(owner) => *owner == pos,
                        }
                    })
                });
                if enabled {
                    remaining.remove(&pos);
                    for t in &app.realized_removes {
                        removed_now.remove(t);
                    }
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        remaining.into_iter().collect()
    }

    /// A human-readable witness for why `pos` is stuck: the first
    /// removed table whose parent is still missing, with the blocker.
    fn witness(
        &self,
        transfers: &[SpecTransfer],
        pos: usize,
        stuck: &[usize],
    ) -> Option<(String, String, usize)> {
        let still_removed = |table: &str| -> Option<usize> {
            let owner = *self.removed.get(table)?;
            let tr = &transfers[self.apps[owner].t];
            // The parent stays missing if its remover can never reveal:
            // irreversible, no vault entry, or itself stuck.
            if !self.apps[owner].wrote_vault || stuck.contains(&owner) || tr.expiring {
                Some(owner)
            } else {
                None
            }
        };
        let app = &self.apps[pos];
        for t in &app.realized_removes {
            for p in reinsert_parents(&transfers[app.t], t) {
                if let Some(owner) = still_removed(p) {
                    if owner != pos {
                        return Some((t.clone(), p.clone(), owner));
                    }
                }
            }
        }
        None
    }
}

/// The reinsert dependencies the transfer recorded for `table`.
fn reinsert_parents<'a>(tr: &'a SpecTransfer, table: &str) -> &'a [String] {
    for e in &tr.effects {
        if let Effect::RemoveRows {
            table: t,
            reinsert_parents,
        } = e
        {
            if t == table {
                return reinsert_parents;
            }
        }
    }
    &[]
}

/// Explores every interleaving of `transfers` (breadth-first, so stuck
/// witnesses are minimal), bounded by `world_cap` visited worlds.
pub fn explore(transfers: &[SpecTransfer], world_cap: usize) -> Exploration {
    let mut out = Exploration::default();
    let any_expiring = transfers.iter().any(|t| t.expiring);
    // Dedup key → whether a witness was already recorded.
    let mut seen: BTreeSet<(String, String, String, String, bool)> = BTreeSet::new();
    let mut queue: VecDeque<World> = VecDeque::new();
    queue.push_back(World::default());
    while let Some(world) = queue.pop_front() {
        out.worlds += 1;
        if out.worlds > world_cap {
            out.truncated = true;
            break;
        }
        world.summarize(transfers, &mut out.summary);
        let stuck_now = world.walk_back(transfers, false);
        let stuck_expired = if any_expiring {
            world.walk_back(transfers, true)
        } else {
            Vec::new()
        };
        for (positions, only_if_expired) in [(&stuck_now, false), (&stuck_expired, true)] {
            for &pos in positions {
                if only_if_expired {
                    // Only report the *new* casualties of expiry, and not
                    // the expiring app itself (its own mortality is the
                    // spec author's explicit choice).
                    if stuck_now.contains(&pos) || transfers[world.apps[pos].t].expiring {
                        continue;
                    }
                }
                let Some((table, parent, owner)) = world.witness(transfers, pos, positions) else {
                    continue;
                };
                let app = transfers[world.apps[pos].t].name.clone();
                let blocker = transfers[world.apps[owner].t].name.clone();
                let key = (
                    app.clone(),
                    blocker.clone(),
                    table.clone(),
                    parent.clone(),
                    only_if_expired,
                );
                if seen.insert(key) {
                    out.stuck.push(StuckReveal {
                        app,
                        blocker,
                        table,
                        parent,
                        trail: world
                            .apps
                            .iter()
                            .map(|a| transfers[a.t].name.clone())
                            .collect(),
                        only_if_expired,
                    });
                }
            }
        }
        // Successors: each not-yet-applied spec. Applications that
        // realize nothing are pruned — the successor world is
        // behaviorally identical to this one, which we already explore.
        let used: BTreeSet<usize> = world.apps.iter().map(|a| a.t).collect();
        for t in 0..transfers.len() {
            if used.contains(&t) {
                continue;
            }
            let (next, realized) = world.apply(transfers, t);
            if realized {
                queue.push_back(next);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::transfer::derive;
    use crate::spec::DisguiseSpecBuilder;
    use edna_relational::Database;

    fn db() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)")
            .unwrap();
        db.execute(
            "CREATE TABLE comments (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id))",
        )
        .unwrap();
        db
    }

    fn transfers(db: &Database, specs: &[crate::spec::DisguiseSpec]) -> Vec<SpecTransfer> {
        specs.iter().map(|s| derive(s, db)).collect()
    }

    #[test]
    fn all_reversible_interleavings_walk_back() {
        let db = db();
        let a = DisguiseSpecBuilder::new("A")
            .user_scoped()
            .remove("comments", Some("user_id = $UID"))
            .build()
            .unwrap();
        let b = DisguiseSpecBuilder::new("B")
            .user_scoped()
            .remove("comments", Some("user_id = $UID"))
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        let r = explore(&transfers(&db, &[a, b]), 10_000);
        assert!(r.stuck.is_empty(), "{:?}", r.stuck);
        assert!(!r.truncated);
        assert_eq!(
            r.summary.get(&CellId::rows("users")),
            Some(&CellState::Removed { vaulted: true })
        );
    }

    #[test]
    fn irreversible_parent_purge_strands_a_reversible_reveal() {
        let db = db();
        let keep = DisguiseSpecBuilder::new("Shelf")
            .user_scoped()
            .remove("comments", Some("user_id = $UID"))
            .build()
            .unwrap();
        let purge = DisguiseSpecBuilder::new("Purge")
            .user_scoped()
            .irreversible()
            .remove("comments", Some("user_id = $UID"))
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        let r = explore(&transfers(&db, &[keep, purge]), 10_000);
        let stuck: Vec<_> = r.stuck.iter().filter(|s| !s.only_if_expired).collect();
        assert_eq!(stuck.len(), 1, "{:?}", r.stuck);
        let s = stuck[0];
        assert_eq!(s.app, "Shelf");
        assert_eq!(s.blocker, "Purge");
        assert_eq!(s.table, "comments");
        assert_eq!(s.parent, "users");
        assert_eq!(s.trail, vec!["Shelf".to_string(), "Purge".to_string()]);
        // The summary records that users rows are unrecoverable in some
        // interleaving.
        assert_eq!(
            r.summary.get(&CellId::rows("users")),
            Some(&CellState::Removed { vaulted: false })
        );
    }

    #[test]
    fn expiring_parent_remover_is_flagged_conditionally() {
        let db = db();
        let keep = DisguiseSpecBuilder::new("Shelf")
            .user_scoped()
            .remove("comments", Some("user_id = $UID"))
            .build()
            .unwrap();
        let fading = DisguiseSpecBuilder::new("Fading")
            .user_scoped()
            .expires_after(3600)
            .remove("comments", Some("user_id = $UID"))
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        let r = explore(&transfers(&db, &[keep, fading]), 10_000);
        assert!(
            r.stuck.iter().all(|s| s.only_if_expired),
            "while entries live, everything reveals: {:?}",
            r.stuck
        );
        let cond: Vec<_> = r.stuck.iter().filter(|s| s.only_if_expired).collect();
        assert_eq!(cond.len(), 1, "{:?}", r.stuck);
        assert_eq!(cond[0].app, "Shelf");
        assert_eq!(cond[0].blocker, "Fading");
    }

    #[test]
    fn reveal_order_deadlocks_are_not_invented() {
        // Both specs reversible, removing each other's parents: LIFO
        // with retry drains every order.
        let db = db();
        let a = DisguiseSpecBuilder::new("A")
            .user_scoped()
            .remove("comments", Some("user_id = $UID"))
            .build()
            .unwrap();
        let b = DisguiseSpecBuilder::new("B")
            .user_scoped()
            .remove("comments", Some("user_id = $UID"))
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        let c = DisguiseSpecBuilder::new("C")
            .modify("users", None, "name", crate::spec::Modifier::Redact)
            .build()
            .unwrap();
        let r = explore(&transfers(&db, &[a, b, c]), 10_000);
        assert!(r.stuck.is_empty(), "{:?}", r.stuck);
    }

    #[test]
    fn world_cap_reports_truncation() {
        let db = db();
        let specs: Vec<_> = (0..5)
            .map(|i| {
                DisguiseSpecBuilder::new(format!("S{i}"))
                    .modify("users", None, "name", crate::spec::Modifier::Redact)
                    .build()
                    .unwrap()
            })
            .collect();
        let r = explore(&transfers(&db, &specs), 10);
        assert!(r.truncated);
    }
}
