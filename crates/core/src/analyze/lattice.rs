//! The abstract domains of the workspace audit (`edna audit`).
//!
//! Two domains, one per question:
//!
//! - [`CellState`] abstracts what a disguise pipeline has done to one
//!   *cell* — a `(table, column)` pair or a table's row set — ordered by
//!   how much of the original data is still (recoverably) there. The
//!   interleaving explorer ([`super::interleave`]) tracks a map from
//!   [`CellId`] to [`CellState`] per explored application order.
//! - [`AbsVal`] abstracts the *value* a column holds after repeated
//!   modification, precise enough to decide whether re-running a decay
//!   stage rewrites the column again ([`Change`]). The policy-convergence
//!   check iterates decay ladders over this domain to a fixed point.
//!
//! Both domains are deliberately tiny: the audit's soundness rests on
//! every transfer function ([`super::transfer`]) being an
//! over-approximation of what `apply.rs` really does, not on domain
//! precision.

use std::fmt;

use edna_relational::Value;

use crate::spec::Modifier;

/// One abstract cell: a table's row set, or one column of a table.
///
/// Names are lowercased on construction so the domain is
/// case-insensitive like the engine's own name resolution.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellId {
    /// The row set of a table (affected by `Remove`).
    Rows(String),
    /// One column of a table (affected by `Modify` / `Decorrelate`).
    Col(String, String),
}

impl CellId {
    /// The row-set cell of `table`.
    pub fn rows(table: &str) -> CellId {
        CellId::Rows(table.to_ascii_lowercase())
    }

    /// The cell of `table`.`column`.
    pub fn col(table: &str, column: &str) -> CellId {
        CellId::Col(table.to_ascii_lowercase(), column.to_ascii_lowercase())
    }

    /// The (lowercased) table this cell belongs to.
    pub fn table(&self) -> &str {
        match self {
            CellId::Rows(t) | CellId::Col(t, _) => t,
        }
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellId::Rows(t) => write!(f, "{t}.<rows>"),
            CellId::Col(t, c) => write!(f, "{t}.{c}"),
        }
    }
}

/// What a sequence of disguise applications has done to a cell.
///
/// The lattice order is by information destroyed: `Bottom` (unreached) ⊑
/// `Present` ⊑ `Modified`/`Decorrelated` ⊑ `Removed`, and within one
/// constructor the non-invertible (unvaulted) variant is above the
/// invertible one — once any interleaving loses the original, the join
/// remembers that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// No interleaving reached this cell (lattice ⊥, the join identity).
    Bottom,
    /// The original data is in place.
    Present,
    /// A `Modify` rewrote the column; `invertible` means the vault holds
    /// the original (the writing spec was reversible and its entries do
    /// not expire).
    Modified {
        /// Whether a reveal can restore the pre-modify value.
        invertible: bool,
    },
    /// A `Decorrelate` re-pointed the column at a placeholder row.
    Decorrelated {
        /// Whether a reveal can restore the original association.
        invertible: bool,
    },
    /// A `Remove` deleted the rows; `vaulted` means reinsert ops were
    /// recorded.
    Removed {
        /// Whether the vault holds the rows for reinsertion.
        vaulted: bool,
    },
}

impl CellState {
    /// Height of the constructor in the lattice (for the join).
    fn rank(self) -> u8 {
        match self {
            CellState::Bottom => 0,
            CellState::Present => 1,
            CellState::Modified { .. } => 2,
            CellState::Decorrelated { .. } => 3,
            CellState::Removed { .. } => 4,
        }
    }

    /// Whether the original value can still be recovered through vaults.
    pub fn recoverable(self) -> bool {
        match self {
            CellState::Bottom | CellState::Present => true,
            CellState::Modified { invertible } | CellState::Decorrelated { invertible } => {
                invertible
            }
            CellState::Removed { vaulted } => vaulted,
        }
    }

    /// The least upper bound of two states: the constructor that
    /// destroyed more, and invertible only if both sides are.
    pub fn join(self, other: CellState) -> CellState {
        use CellState::*;
        if self == other {
            return self;
        }
        let (hi, lo) = if self.rank() >= other.rank() {
            (self, other)
        } else {
            (other, self)
        };
        if lo == Bottom {
            return hi;
        }
        // Same rank, different invertibility — or mixed constructors:
        // keep the higher constructor, and stay invertible only if both
        // sides still reach Present through vaults.
        let inv = hi.recoverable() && lo.recoverable();
        match hi {
            Bottom | Present => hi,
            Modified { .. } => Modified { invertible: inv },
            Decorrelated { .. } => Decorrelated { invertible: inv },
            Removed { .. } => Removed { vaulted: inv },
        }
    }
}

/// The value a column abstractly holds between decay-policy runs.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsVal {
    /// Whatever the application wrote (nothing disguised it yet).
    Original,
    /// Definitely SQL NULL.
    Null,
    /// Definitely this constant.
    Const(Value),
    /// An 8-byte hex digest of some prior value ([`Modifier::HashText`]).
    Hashed,
    /// A freshly drawn random value.
    Random,
    /// Text known to be at most `n` characters ([`Modifier::Truncate`]).
    TruncatedTo(usize),
    /// An integer known to be a multiple of `w` ([`Modifier::Bucket`]).
    BucketedBy(i64),
    /// No information (custom closures, mixed histories).
    Unknown,
}

/// Whether applying a modifier to an abstract value rewrites the column
/// again. `apply.rs` skips rows whose new value equals the original, so
/// `No` means the stage records no ops and writes no vault entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Change {
    /// Provably a no-op for every concrete value this abstracts.
    No,
    /// Cannot prove either way.
    Maybe,
    /// Provably rewrites (some) rows every time.
    Yes,
}

/// The abstract transfer of one [`Modifier`] application: the value the
/// column holds afterwards, and whether the write actually happened.
///
/// This mirrors `Modifier::apply` in `spec/model.rs` plus the
/// skip-if-unchanged rule in `apply.rs`: e.g. `HashText` over an
/// already-hashed value produces a *different* digest (hash of the hex
/// string), so a decay stage built on it rewrites forever — the
/// divergence the convergence check exists to catch.
pub fn modifier_transfer(m: &Modifier, v: &AbsVal) -> (AbsVal, Change) {
    match m {
        Modifier::SetNull => match v {
            AbsVal::Null => (AbsVal::Null, Change::No),
            AbsVal::Original | AbsVal::Unknown => (AbsVal::Null, Change::Maybe),
            _ => (AbsVal::Null, Change::Yes),
        },
        Modifier::Fixed(val) => fixed_transfer(val.clone(), v),
        Modifier::Redact => fixed_transfer(Value::Text("[deleted]".to_string()), v),
        Modifier::HashText => {
            // sha256 has no short fixed points we could ever prove; an
            // already-hashed value re-hashes to a fresh digest.
            let change = match v {
                AbsVal::Original | AbsVal::Unknown => Change::Maybe,
                _ => Change::Yes,
            };
            (AbsVal::Hashed, change)
        }
        Modifier::Truncate(n) => match v {
            AbsVal::Null => (AbsVal::Null, Change::No),
            AbsVal::TruncatedTo(m0) if m0 <= n => (AbsVal::TruncatedTo(*m0), Change::No),
            AbsVal::Const(Value::Text(s)) => {
                let out: String = s.chars().take(*n).collect();
                let change = if out == *s { Change::No } else { Change::Yes };
                (AbsVal::Const(Value::Text(out)), change)
            }
            AbsVal::Const(other) => (AbsVal::Const(other.clone()), Change::No),
            _ => (AbsVal::TruncatedTo(*n), Change::Maybe),
        },
        Modifier::RandomInt { .. } | Modifier::RandomText(_) => (AbsVal::Random, Change::Yes),
        Modifier::Bucket(w) => match v {
            AbsVal::Null => (AbsVal::Null, Change::No),
            AbsVal::BucketedBy(w0) if *w > 0 && w0 % w == 0 => {
                (AbsVal::BucketedBy(*w0), Change::No)
            }
            AbsVal::Const(Value::Int(i)) if *w > 0 => {
                let out = (i / w) * w;
                let change = if out == *i { Change::No } else { Change::Yes };
                (AbsVal::Const(Value::Int(out)), change)
            }
            AbsVal::Const(other) => (AbsVal::Const(other.clone()), Change::No),
            _ => (AbsVal::BucketedBy(*w), Change::Maybe),
        },
        Modifier::Custom { .. } => (AbsVal::Unknown, Change::Maybe),
    }
}

fn fixed_transfer(target: Value, v: &AbsVal) -> (AbsVal, Change) {
    let change = match v {
        AbsVal::Const(cur) if *cur == target => Change::No,
        AbsVal::Null if target == Value::Null => Change::No,
        AbsVal::Original | AbsVal::Unknown => Change::Maybe,
        _ => Change::Yes,
    };
    let out = if target == Value::Null {
        AbsVal::Null
    } else {
        AbsVal::Const(target)
    };
    (out, change)
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATES: [CellState; 8] = [
        CellState::Bottom,
        CellState::Present,
        CellState::Modified { invertible: true },
        CellState::Modified { invertible: false },
        CellState::Decorrelated { invertible: true },
        CellState::Decorrelated { invertible: false },
        CellState::Removed { vaulted: true },
        CellState::Removed { vaulted: false },
    ];

    #[test]
    fn join_is_a_semilattice() {
        for a in STATES {
            assert_eq!(a.join(a), a, "idempotent: {a:?}");
            assert_eq!(CellState::Bottom.join(a), a, "bottom is identity");
            for b in STATES {
                assert_eq!(a.join(b), b.join(a), "commutative: {a:?} {b:?}");
                for c in STATES {
                    assert_eq!(
                        a.join(b).join(c),
                        a.join(b.join(c)),
                        "associative: {a:?} {b:?} {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn join_loses_invertibility_when_either_side_did() {
        let inv = CellState::Modified { invertible: true };
        let lossy = CellState::Modified { invertible: false };
        assert_eq!(inv.join(lossy), lossy);
        let rm = CellState::Removed { vaulted: true };
        assert_eq!(
            inv.join(rm),
            CellState::Removed { vaulted: true },
            "mixed constructors keep the higher one"
        );
        assert_eq!(lossy.join(rm), CellState::Removed { vaulted: false });
    }

    #[test]
    fn cell_ids_are_case_insensitive() {
        assert_eq!(CellId::col("Users", "Name"), CellId::col("users", "name"));
        assert_eq!(CellId::rows("T").table(), "t");
        assert_eq!(CellId::col("T", "c").to_string(), "t.c");
    }

    #[test]
    fn idempotent_modifiers_converge() {
        for (m, v) in [
            (Modifier::SetNull, AbsVal::Null),
            (Modifier::Fixed(Value::Int(7)), AbsVal::Const(Value::Int(7))),
            (
                Modifier::Redact,
                AbsVal::Const(Value::Text("[deleted]".into())),
            ),
            (Modifier::Truncate(3), AbsVal::TruncatedTo(3)),
            (Modifier::Bucket(10), AbsVal::BucketedBy(10)),
        ] {
            let (out, change) = modifier_transfer(&m, &v);
            assert_eq!(change, Change::No, "{m:?} over {v:?}");
            assert_eq!(out, v);
        }
        // A coarser truncation of an already-shorter value is a no-op.
        let (_, c) = modifier_transfer(&Modifier::Truncate(8), &AbsVal::TruncatedTo(3));
        assert_eq!(c, Change::No);
        // Bucketing by a divisor of the current width is a no-op.
        let (_, c) = modifier_transfer(&Modifier::Bucket(5), &AbsVal::BucketedBy(10));
        assert_eq!(c, Change::No);
    }

    #[test]
    fn divergent_modifiers_keep_rewriting() {
        let (out, change) = modifier_transfer(&Modifier::HashText, &AbsVal::Hashed);
        assert_eq!(out, AbsVal::Hashed);
        assert_eq!(change, Change::Yes, "hash of a hash is a new digest");
        let (_, change) = modifier_transfer(&Modifier::RandomInt { lo: 0, hi: 9 }, &AbsVal::Random);
        assert_eq!(change, Change::Yes);
        // An oscillating Fixed pair: each write clobbers the other.
        let (a, _) = modifier_transfer(&Modifier::Fixed(Value::Int(1)), &AbsVal::Original);
        let (b, c1) = modifier_transfer(&Modifier::Fixed(Value::Int(2)), &a);
        let (_, c2) = modifier_transfer(&Modifier::Fixed(Value::Int(1)), &b);
        assert_eq!(c1, Change::Yes);
        assert_eq!(c2, Change::Yes);
    }
}
