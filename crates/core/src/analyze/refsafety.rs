//! Pass 2: referential safety.
//!
//! Walks the schema's foreign-key edges to find `Remove`s that would
//! orphan child rows no other transform in the spec handles (`E010`) —
//! at apply time these surface as mid-transaction foreign-key violations
//! and roll the whole disguise back. Also checks placeholder generators
//! against the parent schema: a fixed NULL for a NOT NULL column
//! (`E011`) or a fixed value of the wrong type (`E012`) makes every
//! decorrelation into that parent fail at placeholder-insert time.

use edna_relational::{DataType, Database, ReferentialAction, Value};

use crate::spec::{DisguiseSpec, Generator, Transformation};

use super::diagnostics::{codes, Diagnostic, Location};

/// Runs the pass, appending findings to `diags`.
pub fn check(spec: &DisguiseSpec, db: &Database, diags: &mut Vec<Diagnostic>) {
    check_orphaning_removes(spec, db, diags);
    check_placeholder_generators(spec, db, diags);
}

/// Tables the spec removes rows from (section has at least one `Remove`).
fn removed_tables(spec: &DisguiseSpec) -> Vec<&str> {
    spec.tables
        .iter()
        .filter(|s| {
            s.transformations
                .iter()
                .any(|pt| matches!(pt.transform, Transformation::Remove))
        })
        .map(|s| s.table.as_str())
        .collect()
}

fn check_orphaning_removes(spec: &DisguiseSpec, db: &Database, diags: &mut Vec<Diagnostic>) {
    let removed = removed_tables(spec);
    for parent in &removed {
        // Every table with a RESTRICT foreign key into `parent` must be
        // handled somehow, or the DELETE will be rejected mid-transaction.
        for child_name in db.table_names() {
            let Ok(child) = db.schema(&child_name) else {
                continue;
            };
            for fk in &child.foreign_keys {
                if !fk.parent_table.eq_ignore_ascii_case(parent)
                    || fk.on_delete != ReferentialAction::Restrict
                {
                    continue;
                }
                if handles_child(spec, &child_name, &fk.column, &removed, db) {
                    continue;
                }
                diags.push(
                    Diagnostic::error(
                        codes::ORPHANING_REMOVE,
                        &spec.name,
                        Location::table(*parent).with_context(format!(
                            "Remove; `{child_name}.{}` REFERENCES {parent} ON DELETE RESTRICT",
                            fk.column
                        )),
                        format!(
                            "removing rows of `{parent}` can orphan `{child_name}.{}`, which no \
                             transformation in this spec handles",
                            fk.column
                        ),
                    )
                    .with_help(format!(
                        "add a Remove on `{child_name}`, a Decorrelate or Modify of \
                         `{child_name}.{}`, or change the foreign key to CASCADE/SET NULL",
                        fk.column
                    )),
                );
            }
        }
    }
}

/// Whether the spec accounts for `child.fk_column` rows when their parent
/// rows go away: the child is itself removed, the foreign key is
/// decorrelated or modified, or the child cascades away through some
/// other foreign key whose parent the spec also removes (e.g. review
/// archives cascade with their review even though the spec never names
/// the archive table).
fn handles_child(
    spec: &DisguiseSpec,
    child: &str,
    fk_column: &str,
    removed: &[&str],
    db: &Database,
) -> bool {
    // A table may appear in several sections (e.g. one holding only
    // placeholder generators); scan them all.
    for section in spec
        .tables
        .iter()
        .filter(|s| s.table.eq_ignore_ascii_case(child))
    {
        for pt in &section.transformations {
            match &pt.transform {
                Transformation::Remove => return true,
                Transformation::Decorrelate { fk_column: c, .. }
                | Transformation::Modify { column: c, .. } => {
                    if c.eq_ignore_ascii_case(fk_column) {
                        return true;
                    }
                }
            }
        }
    }
    if let Ok(schema) = db.schema(child) {
        for fk in &schema.foreign_keys {
            if fk.on_delete == ReferentialAction::Cascade
                && removed
                    .iter()
                    .any(|t| t.eq_ignore_ascii_case(&fk.parent_table))
            {
                return true;
            }
        }
    }
    false
}

fn check_placeholder_generators(spec: &DisguiseSpec, db: &Database, diags: &mut Vec<Diagnostic>) {
    // Parents of at least one decorrelation, deduplicated case-insensitively
    // so shared generator sections are reported once.
    let mut parents: Vec<&str> = Vec::new();
    for (_, _, parent) in spec.decorrelations() {
        if !parents.iter().any(|p| p.eq_ignore_ascii_case(parent)) {
            parents.push(parent);
        }
    }
    for parent in parents {
        let Ok(schema) = db.schema(parent) else {
            continue;
        };
        // Generators may live in a different section than the
        // transformations; collect them from every section for `parent`.
        let gens = spec
            .tables
            .iter()
            .filter(|s| s.table.eq_ignore_ascii_case(parent))
            .flat_map(|s| s.generate_placeholder.iter());
        for (col_name, gen) in gens {
            let Some(i) = schema.column_index(col_name) else {
                diags.push(Diagnostic::error(
                    codes::UNKNOWN_COLUMN,
                    &spec.name,
                    Location::column(parent, col_name).with_context("generate_placeholder"),
                    format!("placeholder column `{parent}.{col_name}` does not exist"),
                ));
                continue;
            };
            let col = &schema.columns[i];
            let Generator::Default(v) = gen else {
                continue;
            };
            if v.is_null() {
                if col.not_null {
                    diags.push(
                        Diagnostic::error(
                            codes::PLACEHOLDER_NULL_GAP,
                            &spec.name,
                            Location::column(parent, &col.name)
                                .with_context("generate_placeholder"),
                            format!(
                                "placeholder generator produces NULL but `{parent}.{}` is \
                                 NOT NULL; every decorrelation into `{parent}` would fail",
                                col.name
                            ),
                        )
                        .with_help("use Random or a typed Default value instead of Default(NULL)"),
                    );
                }
            } else if !assignable(v, col.ty) {
                diags.push(
                    Diagnostic::error(
                        codes::GENERATOR_TYPE,
                        &spec.name,
                        Location::column(parent, &col.name).with_context("generate_placeholder"),
                        format!(
                            "placeholder generator Default({}) has type {} but `{parent}.{}` \
                             is {}",
                            v.to_sql_literal(),
                            v.data_type().map(|t| t.to_string()).unwrap_or_default(),
                            col.name,
                            col.ty
                        ),
                    )
                    .with_help("match the generator value to the column type"),
                );
            }
        }
    }
}

/// Whether a non-NULL fixed value can be stored in a column of type `ty`
/// (exact match plus the engine's conventional coercions).
fn assignable(v: &Value, ty: DataType) -> bool {
    match (v.data_type(), ty) {
        (Some(t), ty) if t == ty => true,
        (Some(DataType::Int), DataType::Float) => true,
        (Some(DataType::Bool), DataType::Int) => true,
        (Some(DataType::Int), DataType::Bool) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DisguiseSpecBuilder, Generator, Modifier};

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY, name TEXT NOT NULL, email TEXT);
             CREATE TABLE reviews (id INT PRIMARY KEY, user_id INT NOT NULL, body TEXT,
               FOREIGN KEY (user_id) REFERENCES users(id));
             CREATE TABLE ratings (id INT PRIMARY KEY, review_id INT NOT NULL,
               user_id INT NOT NULL,
               FOREIGN KEY (review_id) REFERENCES reviews(id) ON DELETE CASCADE,
               FOREIGN KEY (user_id) REFERENCES users(id));",
        )
        .unwrap();
        db
    }

    fn run(spec: &DisguiseSpec) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check(spec, &db(), &mut diags);
        diags
    }

    #[test]
    fn unhandled_restrict_child_is_flagged() {
        let spec = DisguiseSpecBuilder::new("Bad")
            .user_scoped()
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        let diags = run(&spec);
        // reviews.user_id and ratings.user_id both orphan.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == codes::ORPHANING_REMOVE));
    }

    #[test]
    fn decorrelate_modify_or_remove_handles_children() {
        let spec = DisguiseSpecBuilder::new("Ok")
            .user_scoped()
            .decorrelate("reviews", Some("user_id = $UID"), "user_id", "users")
            .modify(
                "ratings",
                Some("user_id = $UID"),
                "user_id",
                Modifier::SetNull,
            )
            .placeholder("users", "name", Generator::Random)
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        assert!(run(&spec).is_empty(), "{:?}", run(&spec));
    }

    #[test]
    fn cascade_through_removed_table_handles_grandchildren() {
        // Removing reviews removes ratings via CASCADE, so a spec that
        // removes users+reviews need not name ratings at all.
        let spec = DisguiseSpecBuilder::new("Ok")
            .user_scoped()
            .remove("reviews", Some("user_id = $UID"))
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        assert!(run(&spec).is_empty(), "{:?}", run(&spec));
    }

    #[test]
    fn null_default_into_not_null_placeholder_is_flagged() {
        let spec = DisguiseSpecBuilder::new("Bad")
            .user_scoped()
            .decorrelate("reviews", Some("user_id = $UID"), "user_id", "users")
            .placeholder("users", "name", Generator::Default(Value::Null))
            .build()
            .unwrap();
        let diags = run(&spec);
        assert!(
            diags.iter().any(|d| d.code == codes::PLACEHOLDER_NULL_GAP),
            "{diags:?}"
        );
    }

    #[test]
    fn wrong_typed_default_is_flagged() {
        let spec = DisguiseSpecBuilder::new("Bad")
            .user_scoped()
            .decorrelate("reviews", Some("user_id = $UID"), "user_id", "users")
            .placeholder("users", "name", Generator::Default(Value::Int(7)))
            .build()
            .unwrap();
        let diags = run(&spec);
        assert!(
            diags.iter().any(|d| d.code == codes::GENERATOR_TYPE),
            "{diags:?}"
        );
        // NULL into a nullable column and matching types are fine.
        let ok = DisguiseSpecBuilder::new("Ok")
            .user_scoped()
            .decorrelate("reviews", Some("user_id = $UID"), "user_id", "users")
            .placeholder(
                "users",
                "name",
                Generator::Default(Value::Text("anon".into())),
            )
            .placeholder("users", "email", Generator::Default(Value::Null))
            .build()
            .unwrap();
        assert!(run(&ok).is_empty(), "{:?}", run(&ok));
    }
}
