//! Pass 1: predicate type checking and constant-predicate folding.
//!
//! Infers a [`DataType`] for every sub-expression of each predicate
//! against the table's schema, flagging comparisons and arithmetic over
//! incompatible types (`age = 'abc'`) as errors. Predicates that
//! reference no columns or parameters are constant-folded: an
//! always-false predicate makes its transform dead (`W001`); an
//! always-true one means the guard is vacuous (`W002`).

use std::collections::HashMap;

use edna_relational::{eval_predicate, DataType, Database, EvalContext, Expr, TableSchema};

use crate::spec::DisguiseSpec;

use super::diagnostics::{codes, Diagnostic, Location};

/// Runs the pass over every predicate (transformations and assertions)
/// of `spec`, appending findings to `diags`. Sections whose table is
/// unknown are skipped (the orchestrator already reported `E002`).
pub fn check(spec: &DisguiseSpec, db: &Database, diags: &mut Vec<Diagnostic>) {
    for section in &spec.tables {
        let Ok(schema) = db.schema(&section.table) else {
            continue;
        };
        for (i, pt) in section.transformations.iter().enumerate() {
            if let Some(pred) = &pt.pred {
                let context = format!(
                    "transformation #{} ({}), predicate `{pred}`",
                    i + 1,
                    pt.transform.name()
                );
                check_predicate(spec, &schema, pred, &context, db, diags);
            }
        }
    }
    for assertion in &spec.assertions {
        let Ok(schema) = db.schema(&assertion.table) else {
            continue;
        };
        let context = format!(
            "assertion {:?}, predicate `{}`",
            assertion.description, assertion.pred
        );
        check_predicate(spec, &schema, &assertion.pred, &context, db, diags);
    }
}

fn check_predicate(
    spec: &DisguiseSpec,
    schema: &TableSchema,
    pred: &Expr,
    context: &str,
    db: &Database,
    diags: &mut Vec<Diagnostic>,
) {
    let mut ck = Checker {
        spec: &spec.name,
        schema,
        context,
        unknown_reported: Vec::new(),
        diags,
    };
    ck.infer(pred);

    // Constant folding: a predicate with no columns and no parameters
    // evaluates to the same truth value for every row.
    if pred.referenced_columns().is_empty() && pred.referenced_params().is_empty() {
        let params = HashMap::new();
        let ctx = EvalContext {
            columns: &[],
            row: &[],
            params: &params,
            now: db.now(),
        };
        let location = Location::table(&schema.name).with_context(context.to_string());
        match eval_predicate(pred, &ctx) {
            Ok(true) => diags.push(
                Diagnostic::warning(
                    codes::ALWAYS_TRUE,
                    &spec.name,
                    location,
                    "predicate is constant and always true; the guard is vacuous",
                )
                .with_help("drop the predicate, or reference a column if rows should be filtered"),
            ),
            Ok(false) => diags.push(
                Diagnostic::warning(
                    codes::ALWAYS_FALSE,
                    &spec.name,
                    location,
                    "predicate is constant and always false; the transformation is dead",
                )
                .with_help("remove the transformation, or fix the predicate"),
            ),
            Err(e) => diags.push(Diagnostic::error(
                codes::PREDICATE_EVAL,
                &spec.name,
                location,
                format!("constant predicate fails to evaluate: {e}"),
            )),
        }
    }
}

struct Checker<'a> {
    spec: &'a str,
    schema: &'a TableSchema,
    context: &'a str,
    /// Unknown columns already reported for this predicate, to avoid one
    /// diagnostic per occurrence.
    unknown_reported: Vec<String>,
    diags: &'a mut Vec<Diagnostic>,
}

impl Checker<'_> {
    fn error(&mut self, code: &'static str, column: Option<&str>, message: String, help: &str) {
        let location = match column {
            Some(c) => Location::column(&self.schema.name, c),
            None => Location::table(&self.schema.name),
        }
        .with_context(self.context.to_string());
        let mut d = Diagnostic::error(code, self.spec, location, message);
        if !help.is_empty() {
            d = d.with_help(help.to_string());
        }
        self.diags.push(d);
    }

    /// Infers the type of `expr`, reporting findings along the way.
    /// `None` means unknown (NULL literals, parameters, opaque functions).
    fn infer(&mut self, expr: &Expr) -> Option<DataType> {
        use edna_relational::{BinOp, UnOp};
        match expr {
            Expr::Literal(v) => v.data_type(),
            Expr::Column { name, .. } => match self.schema.column_index(name) {
                Some(i) => Some(self.schema.columns[i].ty),
                None => {
                    if !self
                        .unknown_reported
                        .iter()
                        .any(|r| r.eq_ignore_ascii_case(name))
                    {
                        self.unknown_reported.push(name.clone());
                        self.error(
                            codes::UNKNOWN_COLUMN,
                            Some(name),
                            format!("unknown column `{name}` in table `{}`", self.schema.name),
                            "",
                        );
                    }
                    None
                }
            },
            Expr::Param(_) => None,
            Expr::Unary { op, expr } => {
                let t = self.infer(expr);
                match op {
                    UnOp::Not => Some(DataType::Bool),
                    UnOp::Neg => {
                        if let Some(t) = t {
                            if !numeric(t) {
                                self.error(
                                    codes::TYPE_MISMATCH,
                                    None,
                                    format!("unary minus applied to {} operand `{expr}`", t),
                                    "negation needs an INT or FLOAT operand",
                                );
                            }
                        }
                        t
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.infer(lhs);
                let rt = self.infer(rhs);
                match op {
                    BinOp::And | BinOp::Or => Some(DataType::Bool),
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        self.require_comparable(lt, rt, lhs, rhs, &format!("`{op}` comparison"));
                        Some(DataType::Bool)
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        for (t, e) in [(lt, lhs), (rt, rhs)] {
                            if let Some(t) = t {
                                if !numeric(t) {
                                    self.error(
                                        codes::TYPE_MISMATCH,
                                        None,
                                        format!("arithmetic `{op}` applied to {t} operand `{e}`"),
                                        "arithmetic needs INT or FLOAT operands",
                                    );
                                }
                            }
                        }
                        match (lt, rt) {
                            (Some(DataType::Float), _) | (_, Some(DataType::Float)) => {
                                Some(DataType::Float)
                            }
                            (Some(_), Some(_)) => Some(DataType::Int),
                            _ => None,
                        }
                    }
                    BinOp::Concat => Some(DataType::Text),
                }
            }
            Expr::InList {
                expr: e,
                list,
                negated: _,
            } => {
                let et = self.infer(e);
                for item in list {
                    let it = self.infer(item);
                    self.require_comparable(et, it, e, item, "`IN` list membership");
                }
                Some(DataType::Bool)
            }
            Expr::InSelect { expr: e, .. } => {
                self.infer(e);
                Some(DataType::Bool)
            }
            Expr::Between {
                expr: e, low, high, ..
            } => {
                let et = self.infer(e);
                let lt = self.infer(low);
                let ht = self.infer(high);
                self.require_comparable(et, lt, e, low, "`BETWEEN` bound");
                self.require_comparable(et, ht, e, high, "`BETWEEN` bound");
                Some(DataType::Bool)
            }
            Expr::Like {
                expr: e, pattern, ..
            } => {
                for (t, part) in [(self.infer(e), e), (self.infer(pattern), pattern)] {
                    if let Some(t) = t {
                        if t != DataType::Text {
                            self.error(
                                codes::TYPE_MISMATCH,
                                None,
                                format!("`LIKE` applied to {t} operand `{part}`"),
                                "LIKE matches TEXT values",
                            );
                        }
                    }
                }
                Some(DataType::Bool)
            }
            Expr::IsNull { expr: e, .. } => {
                self.infer(e);
                Some(DataType::Bool)
            }
            Expr::Func { name, args } => {
                let arg_types: Vec<Option<DataType>> = args.iter().map(|a| self.infer(a)).collect();
                match name.to_ascii_uppercase().as_str() {
                    "LOWER" | "UPPER" | "SUBSTR" | "CONCAT" => Some(DataType::Text),
                    "LENGTH" | "NOW" => Some(DataType::Int),
                    "ABS" => arg_types.first().copied().flatten(),
                    "COALESCE" | "IFNULL" => arg_types.into_iter().flatten().next(),
                    _ => None,
                }
            }
            Expr::Case { arms, else_ } => {
                let mut out = None;
                for (cond, val) in arms {
                    self.infer(cond);
                    let vt = self.infer(val);
                    out = out.or(vt);
                }
                if let Some(e) = else_ {
                    let et = self.infer(e);
                    out = out.or(et);
                }
                out
            }
        }
    }

    fn require_comparable(
        &mut self,
        lt: Option<DataType>,
        rt: Option<DataType>,
        lhs: &Expr,
        rhs: &Expr,
        what: &str,
    ) {
        let (Some(lt), Some(rt)) = (lt, rt) else {
            return;
        };
        if !comparable(lt, rt) {
            let column = [lhs, rhs].into_iter().find_map(|e| match e {
                Expr::Column { name, .. } => Some(name.as_str()),
                _ => None,
            });
            self.error(
                codes::TYPE_MISMATCH,
                column,
                format!("{what} between {lt} `{lhs}` and {rt} `{rhs}` can never match"),
                "change the literal (or column) so both sides have comparable types",
            );
        }
    }
}

fn numeric(t: DataType) -> bool {
    matches!(t, DataType::Int | DataType::Float)
}

/// Whether values of the two types can meaningfully compare: same type,
/// both numeric, or BOOL against INT (the SQL 0/1 idiom).
fn comparable(a: DataType, b: DataType) -> bool {
    if a == b || (numeric(a) && numeric(b)) {
        return true;
    }
    matches!(
        (a, b),
        (DataType::Bool, DataType::Int) | (DataType::Int, DataType::Bool)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::diagnostics::Severity;
    use crate::spec::DisguiseSpecBuilder;

    fn db() -> Database {
        let db = Database::new();
        db.execute(
            "CREATE TABLE users (id INT PRIMARY KEY, age INT, name TEXT, \
             score FLOAT, active BOOL)",
        )
        .unwrap();
        db
    }

    fn run(pred: &str) -> Vec<Diagnostic> {
        let spec = DisguiseSpecBuilder::new("T")
            .remove("users", Some(pred))
            .build()
            .unwrap();
        let mut diags = Vec::new();
        check(&spec, &db(), &mut diags);
        diags
    }

    #[test]
    fn int_text_comparison_is_flagged() {
        let diags = run("age = 'abc'");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::TYPE_MISMATCH);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].location.column.as_deref(), Some("age"));
    }

    #[test]
    fn compatible_comparisons_pass() {
        assert!(run("age = 30").is_empty());
        assert!(run("age > score").is_empty(), "int vs float is numeric");
        assert!(run("name = 'bea'").is_empty());
        assert!(run("active = TRUE").is_empty());
        assert!(run("active = 1").is_empty(), "bool vs int idiom");
        assert!(run("age = $UID").is_empty(), "params are untyped");
        assert!(run("name IS NOT NULL").is_empty());
    }

    #[test]
    fn arithmetic_and_like_and_in_are_checked() {
        assert_eq!(run("age + name > 3")[0].code, codes::TYPE_MISMATCH);
        assert_eq!(run("age LIKE 'a%'")[0].code, codes::TYPE_MISMATCH);
        assert_eq!(run("age IN (1, 'x')")[0].code, codes::TYPE_MISMATCH);
        assert_eq!(run("name BETWEEN 1 AND 2")[0].code, codes::TYPE_MISMATCH);
        assert!(run("age IN (1, 2, 3)").is_empty());
        assert!(run("name LIKE 'a%'").is_empty());
    }

    #[test]
    fn unknown_column_reported_once() {
        let diags = run("ghost = 1 AND ghost = 2");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::UNKNOWN_COLUMN);
    }

    #[test]
    fn constant_predicates_fold() {
        let always_true = run("1 = 1");
        assert_eq!(always_true.len(), 1, "{always_true:?}");
        assert_eq!(always_true[0].code, codes::ALWAYS_TRUE);
        assert_eq!(always_true[0].severity, Severity::Warning);

        let always_false = run("1 = 2");
        assert_eq!(always_false[0].code, codes::ALWAYS_FALSE);

        let bad = run("1 / 0 > 1");
        assert!(
            bad.iter().any(|d| d.code == codes::PREDICATE_EVAL),
            "{bad:?}"
        );
    }

    #[test]
    fn assertions_are_checked_too() {
        let spec = DisguiseSpecBuilder::new("T")
            .user_scoped()
            .remove("users", Some("id = $UID"))
            .assert_empty("users", "age = 'nope'", "bad assertion")
            .build()
            .unwrap();
        let mut diags = Vec::new();
        check(&spec, &db(), &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::TYPE_MISMATCH);
        assert!(diags[0]
            .location
            .context
            .as_deref()
            .unwrap()
            .contains("assertion"));
    }
}
