//! The workspace audit: whole-graph proofs over disguises + policies.
//!
//! [`audit_workspace`] is the `edna audit` engine. It compiles every
//! registered spec to a transfer function ([`super::transfer`]), explores
//! all interleavings ([`super::interleave`]), and checks every scheduled
//! policy, producing `E05x`/`W05x` diagnostics:
//!
//! - **E050** reveal-unreachable: some interleaving leaves a reversible
//!   disguise's data unrecoverable — its reveal can never run to
//!   completion.
//! - **E051** vault-orphaned: the same interleaving strands that
//!   disguise's vault entry; no reveal can ever consume it.
//! - **E052** policy-diverges: a decay ladder provably rewrites some
//!   column on every run (e.g. re-hashing a hash) — the decay frontier
//!   never reaches a fixed point and vaults grow without bound.
//! - **E053** policy-bad-ref: a policy names a disguise that is missing
//!   or of the wrong scope for how the scheduler invokes it.
//! - **W050** expiry-strands-reveal: a reveal is reachable now but dies
//!   once another disguise's `expires_after` entries lapse.
//! - **W051** audit-truncated: the interleaving search hit its world
//!   bound; absence of errors is not a proof.
//! - **W052** convergence-unproven: a decay ladder could not be proved
//!   terminating (custom modifiers, decorrelating stages).
//! - **W053** irreversible-expiration: an expiration policy applies an
//!   irreversible disguise, so returning users cannot undo it.

use edna_relational::Database;

use super::diagnostics::{codes, sort_diagnostics, Diagnostic, Location};
use super::interleave::{explore, Exploration};
use super::lattice::{modifier_transfer, AbsVal, CellId, Change};
use super::transfer::derive;
use crate::policy::{DecayPolicy, Policy};
use crate::spec::{DisguiseSpec, Transformation};

/// Bound on visited worlds per exploration. Interleavings of `n` specs
/// grow as permutations of subsets; the cap keeps the audit interactive
/// and any truncation is reported as `W051` rather than silently
/// under-approximating.
pub const WORLD_CAP: usize = 20_000;

/// Rounds the convergence check iterates a decay ladder before giving
/// up with `W052`. Idempotent ladders settle in 2; the abstract value
/// domain has no chains longer than a handful of steps.
const CONVERGENCE_ROUNDS: usize = 8;

/// Audits the whole workspace: all registered `specs` under arbitrary
/// interleaving, plus every scheduled policy. Returns diagnostics in
/// deterministic order ([`sort_diagnostics`]).
pub fn audit_workspace(
    db: &Database,
    specs: &[DisguiseSpec],
    policies: &[Policy],
) -> Vec<Diagnostic> {
    let mut specs: Vec<&DisguiseSpec> = specs.iter().collect();
    specs.sort_by(|a, b| a.name.cmp(&b.name));
    let mut diags = Vec::new();

    // Interleaving exploration over registered disguises. Policies do
    // not add new transfers: expiration targets and decay stages are
    // registered specs themselves, so they are already in the set.
    let transfers: Vec<_> = specs.iter().map(|s| derive(s, db)).collect();
    let Exploration {
        stuck, truncated, ..
    } = explore(&transfers, WORLD_CAP);
    for s in &stuck {
        let loc = Location::table(&s.table)
            .with_context(format!("after applying {}", s.trail.join(", then ")));
        if s.only_if_expired {
            diags.push(
                Diagnostic::warning(
                    codes::EXPIRY_STRANDS_REVEAL,
                    &s.app,
                    loc,
                    format!(
                        "revealing `{}` works only while `{}`'s vault entries live: once they \
                         expire, the `{}` rows referenced by `{}`'s reinsertions are gone for good",
                        s.app, s.blocker, s.parent, s.app
                    ),
                )
                .with_help(format!(
                    "reveal `{}` before `{}` expires, or drop `expires_after` from `{}`",
                    s.app, s.blocker, s.blocker
                )),
            );
        } else {
            diags.push(
                Diagnostic::error(
                    codes::REVEAL_UNREACHABLE,
                    &s.app,
                    loc.clone(),
                    format!(
                        "no reveal of `{}` can reach `Present`: its reinserted `{}` rows \
                         reference `{}` rows that `{}` removed without a usable vault entry",
                        s.app, s.table, s.parent, s.blocker
                    ),
                )
                .with_help(format!(
                    "make `{}` reversible over `{}`, or have `{}` skip `{}` rows still \
                     referenced by vaulted data",
                    s.blocker, s.parent, s.blocker, s.parent
                )),
            );
            diags.push(Diagnostic::error(
                codes::VAULT_ORPHANED,
                &s.app,
                Location::table(&s.table),
                format!(
                    "`{}`'s vault entry for `{}` is orphaned in this interleaving: \
                     apply writes it, but no reveal can ever consume it",
                    s.app, s.table
                ),
            ));
        }
    }
    if truncated {
        diags.push(
            Diagnostic::warning(
                codes::AUDIT_TRUNCATED,
                "workspace",
                Location::default(),
                format!(
                    "interleaving search truncated at {WORLD_CAP} worlds; \
                     the absence of errors is not a proof"
                ),
            )
            .with_help("reduce the number of registered disguises or audit subsets separately"),
        );
    }

    // Policy reference + convergence checks.
    for policy in policies {
        match policy {
            Policy::Expiration(p) => {
                let loc = Location::default().with_context(format!("policy `{}`", p.name));
                match specs.iter().find(|s| s.name == p.disguise) {
                    None => diags.push(
                        Diagnostic::error(
                            codes::POLICY_BAD_REF,
                            &p.disguise,
                            loc,
                            format!(
                                "expiration policy `{}` schedules disguise `{}`, which is \
                                 not registered",
                                p.name, p.disguise
                            ),
                        )
                        .with_help("register the disguise or fix the policy's `disguise:` name"),
                    ),
                    Some(spec) if !spec.user_scoped => diags.push(
                        Diagnostic::error(
                            codes::POLICY_BAD_REF,
                            &p.disguise,
                            loc,
                            format!(
                                "expiration policy `{}` applies `{}` per inactive user, but \
                                 the disguise is not user-scoped",
                                p.name, p.disguise
                            ),
                        )
                        .with_help("expiration targets must take `$UID` (user_scoped: true)"),
                    ),
                    Some(spec) if !spec.reversible => diags.push(
                        Diagnostic::warning(
                            codes::IRREVERSIBLE_EXPIRATION,
                            &p.disguise,
                            loc,
                            format!(
                                "expiration policy `{}` applies irreversible `{}`: users who \
                                 return cannot undo their expiration",
                                p.name, p.disguise
                            ),
                        )
                        .with_help(
                            "the paper's expiration story is reversible; drop `reversible: false`",
                        ),
                    ),
                    Some(_) => {}
                }
            }
            Policy::Decay(p) => {
                let loc = Location::default().with_context(format!("policy `{}`", p.name));
                let mut refs_ok = true;
                for stage in &p.stages {
                    match specs.iter().find(|s| s.name == stage.disguise) {
                        None => {
                            refs_ok = false;
                            diags.push(
                                Diagnostic::error(
                                    codes::POLICY_BAD_REF,
                                    &stage.disguise,
                                    loc.clone(),
                                    format!(
                                        "decay policy `{}` stages disguise `{}`, which is not \
                                         registered",
                                        p.name, stage.disguise
                                    ),
                                )
                                .with_help(
                                    "register the disguise or fix the policy's `stages:` list",
                                ),
                            );
                        }
                        Some(spec) if spec.user_scoped => {
                            refs_ok = false;
                            diags.push(
                                Diagnostic::error(
                                    codes::POLICY_BAD_REF,
                                    &stage.disguise,
                                    loc.clone(),
                                    format!(
                                        "decay policy `{}` runs `{}` globally, but the disguise \
                                         is user-scoped and would fail without a `$UID`",
                                        p.name, stage.disguise
                                    ),
                                )
                                .with_help("decay stages must be global disguises"),
                            );
                        }
                        Some(_) => {}
                    }
                }
                if refs_ok {
                    diags.extend(decay_convergence(p, &specs));
                }
            }
        }
    }

    sort_diagnostics(&mut diags);
    diags
}

/// Iterates a decay ladder over the abstract value domain. Converged
/// (all stages provably no-ops) → no diagnostic. A provable rewrite in
/// round two or later → `E052`. Neither provable within
/// [`CONVERGENCE_ROUNDS`] → `W052`.
fn decay_convergence(policy: &DecayPolicy, specs: &[&DisguiseSpec]) -> Vec<Diagnostic> {
    use std::collections::BTreeMap;
    let stages: Vec<&DisguiseSpec> = policy
        .stages
        .iter()
        .filter_map(|st| specs.iter().find(|s| s.name == st.disguise).copied())
        .collect();
    let mut vals: BTreeMap<CellId, AbsVal> = BTreeMap::new();
    let mut last_maybe: Option<(String, CellId, String)> = None;
    for round in 1..=CONVERGENCE_ROUNDS {
        // (change, stage, cell, detail) — worst change seen this round.
        let mut worst: Option<(Change, String, CellId, String)> = None;
        let mut bump = |ch: Change, stage: &str, cell: CellId, detail: String| {
            if worst.as_ref().map(|w| ch > w.0).unwrap_or(true) {
                worst = Some((ch, stage.to_string(), cell, detail));
            }
        };
        for spec in &stages {
            for section in &spec.tables {
                for pt in &section.transformations {
                    match &pt.transform {
                        Transformation::Modify { column, modifier } => {
                            let cell = CellId::col(&section.table, column);
                            let cur = vals.get(&cell).cloned().unwrap_or(AbsVal::Original);
                            let (next, ch) = modifier_transfer(modifier, &cur);
                            vals.insert(cell.clone(), next);
                            bump(
                                ch,
                                &spec.name,
                                cell,
                                format!("`{}` rewrites it again", modifier.name()),
                            );
                        }
                        Transformation::Decorrelate { fk_column, .. } => {
                            // Re-decorrelating mints fresh placeholders each
                            // run; we cannot prove it settles.
                            if round >= 2 {
                                bump(
                                    Change::Maybe,
                                    &spec.name,
                                    CellId::col(&section.table, fk_column),
                                    "decorrelation may re-point rows at fresh placeholders \
                                     every run"
                                        .to_string(),
                                );
                            }
                        }
                        // Removed rows stay removed: a repeat `Remove`
                        // matches nothing and converges trivially.
                        Transformation::Remove => {}
                    }
                }
            }
        }
        // Round one is the decay itself; divergence means *re*-writing.
        if round < 2 {
            continue;
        }
        match worst {
            Some((Change::Yes, stage, cell, detail)) => {
                return vec![Diagnostic::error(
                    codes::POLICY_DIVERGES,
                    &policy.name,
                    Location::column(
                        cell.table(),
                        match &cell {
                            CellId::Col(_, c) => c.clone(),
                            CellId::Rows(_) => "<rows>".to_string(),
                        },
                    )
                    .with_context(format!("stage `{stage}`")),
                    format!(
                        "decay policy `{}` never converges: on every run after the first, \
                         stage `{stage}` rewrites `{cell}` — {detail}",
                        policy.name
                    ),
                )
                .with_help(
                    "guard the stage with a predicate that excludes already-decayed rows, \
                     or use an idempotent modifier (SetNull, Fixed, Redact, Truncate, Bucket)",
                )];
            }
            Some((Change::Maybe, stage, cell, detail)) => {
                last_maybe = Some((stage, cell, detail));
                continue;
            }
            Some((Change::No, ..)) | None => return Vec::new(),
        }
    }
    // Maybe survived every round: unproven either way.
    let (stage, cell, detail) = last_maybe.expect("loop exits early unless a Maybe persisted");
    vec![Diagnostic::warning(
        codes::CONVERGENCE_UNPROVEN,
        &policy.name,
        Location::column(
            cell.table(),
            match &cell {
                CellId::Col(_, c) => c.clone(),
                CellId::Rows(_) => "<rows>".to_string(),
            },
        )
        .with_context(format!("stage `{stage}`")),
        format!(
            "could not prove decay policy `{}` converges within {CONVERGENCE_ROUNDS} rounds: \
             stage `{stage}` may rewrite `{cell}` on every run — {detail}",
            policy.name
        ),
    )
    .with_help("custom modifiers and decorrelating stages cannot be proved idempotent")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DecayStage, ExpirationPolicy};
    use crate::spec::{DisguiseSpecBuilder, Modifier};
    use edna_relational::Database;

    fn db() -> Database {
        let db = Database::new();
        db.execute(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, \
             last_login INT NOT NULL DEFAULT 0)",
        )
        .unwrap();
        db.execute(
            "CREATE TABLE comments (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, created_at INT NOT NULL DEFAULT 0, \
             FOREIGN KEY (user_id) REFERENCES users(id))",
        )
        .unwrap();
        db
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn benign_workspace_audits_clean() {
        let db = db();
        let a = DisguiseSpecBuilder::new("A")
            .user_scoped()
            .remove("comments", Some("user_id = $UID"))
            .build()
            .unwrap();
        let b = DisguiseSpecBuilder::new("B")
            .modify("comments", None, "body", Modifier::Redact)
            .build()
            .unwrap();
        assert!(audit_workspace(&db, &[a, b], &[]).is_empty());
    }

    #[test]
    fn orphaning_interleaving_yields_e050_and_e051() {
        let db = db();
        let keep = DisguiseSpecBuilder::new("Shelf")
            .user_scoped()
            .remove("comments", Some("user_id = $UID"))
            .build()
            .unwrap();
        let purge = DisguiseSpecBuilder::new("Purge")
            .user_scoped()
            .irreversible()
            .remove("comments", Some("user_id = $UID"))
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        let diags = audit_workspace(&db, &[keep, purge], &[]);
        let codes = codes_of(&diags);
        assert!(codes.contains(&codes::REVEAL_UNREACHABLE), "{diags:?}");
        assert!(codes.contains(&codes::VAULT_ORPHANED), "{diags:?}");
        // Both findings are about Shelf, blocked by Purge.
        assert!(diags.iter().all(|d| d.disguise == "Shelf"));
        let e050 = diags
            .iter()
            .find(|d| d.code == codes::REVEAL_UNREACHABLE)
            .unwrap();
        assert!(e050.message.contains("Purge"), "{e050:?}");
    }

    #[test]
    fn diverging_decay_ladder_yields_e052() {
        let db = db();
        let blur = DisguiseSpecBuilder::new("Blur")
            .irreversible()
            .modify(
                "comments",
                Some("created_at < NOW() - 300"),
                "body",
                Modifier::HashText,
            )
            .build()
            .unwrap();
        let policy = Policy::Decay(DecayPolicy {
            name: "aging".to_string(),
            stages: vec![DecayStage {
                disguise: "Blur".to_string(),
            }],
            cadence: 60,
        });
        let diags = audit_workspace(&db, &[blur], &[policy]);
        assert_eq!(codes_of(&diags), vec![codes::POLICY_DIVERGES], "{diags:?}");
        assert!(diags[0].message.contains("comments.body"));
        assert!(diags[0].message.contains("HashText"));
    }

    #[test]
    fn idempotent_decay_ladder_converges() {
        let db = db();
        let still = DisguiseSpecBuilder::new("Still")
            .irreversible()
            .modify("comments", None, "body", Modifier::Redact)
            .modify("comments", None, "created_at", Modifier::Bucket(3600))
            .build()
            .unwrap();
        let policy = Policy::Decay(DecayPolicy {
            name: "calm".to_string(),
            stages: vec![DecayStage {
                disguise: "Still".to_string(),
            }],
            cadence: 60,
        });
        assert!(audit_workspace(&db, &[still], &[policy]).is_empty());
    }

    #[test]
    fn oscillating_fixed_pair_diverges() {
        let db = db();
        let one = DisguiseSpecBuilder::new("One")
            .irreversible()
            .modify(
                "comments",
                None,
                "body",
                Modifier::Fixed(edna_relational::Value::Text("a".into())),
            )
            .build()
            .unwrap();
        let two = DisguiseSpecBuilder::new("Two")
            .irreversible()
            .modify(
                "comments",
                None,
                "body",
                Modifier::Fixed(edna_relational::Value::Text("b".into())),
            )
            .build()
            .unwrap();
        let policy = Policy::Decay(DecayPolicy {
            name: "seesaw".to_string(),
            stages: vec![
                DecayStage {
                    disguise: "One".to_string(),
                },
                DecayStage {
                    disguise: "Two".to_string(),
                },
            ],
            cadence: 60,
        });
        let diags = audit_workspace(&db, &[one, two], &[policy]);
        assert_eq!(codes_of(&diags), vec![codes::POLICY_DIVERGES], "{diags:?}");
    }

    #[test]
    fn policy_reference_errors_are_caught() {
        let db = db();
        let global = DisguiseSpecBuilder::new("Global")
            .modify("comments", None, "body", Modifier::Redact)
            .build()
            .unwrap();
        let scoped = DisguiseSpecBuilder::new("Scoped")
            .user_scoped()
            .modify("users", Some("id = $UID"), "name", Modifier::Redact)
            .build()
            .unwrap();
        let policies = vec![
            Policy::Expiration(ExpirationPolicy {
                name: "ghost".to_string(),
                disguise: "Missing".to_string(),
                inactive_after: 100,
                user_query: "SELECT id FROM users".to_string(),
                cadence: 10,
            }),
            Policy::Expiration(ExpirationPolicy {
                name: "misscoped".to_string(),
                disguise: "Global".to_string(),
                inactive_after: 100,
                user_query: "SELECT id FROM users".to_string(),
                cadence: 10,
            }),
            Policy::Decay(DecayPolicy {
                name: "wrongway".to_string(),
                stages: vec![DecayStage {
                    disguise: "Scoped".to_string(),
                }],
                cadence: 10,
            }),
        ];
        let diags = audit_workspace(&db, &[global, scoped], &policies);
        let codes = codes_of(&diags);
        assert_eq!(
            codes
                .iter()
                .filter(|c| **c == codes::POLICY_BAD_REF)
                .count(),
            3,
            "{diags:?}"
        );
    }

    #[test]
    fn irreversible_expiration_warns() {
        let db = db();
        let hard = DisguiseSpecBuilder::new("Hard")
            .user_scoped()
            .irreversible()
            .modify("users", Some("id = $UID"), "name", Modifier::Redact)
            .build()
            .unwrap();
        let policy = Policy::Expiration(ExpirationPolicy {
            name: "perma".to_string(),
            disguise: "Hard".to_string(),
            inactive_after: 100,
            user_query: "SELECT id FROM users".to_string(),
            cadence: 10,
        });
        let diags = audit_workspace(&db, &[hard], &[policy]);
        assert_eq!(
            codes_of(&diags),
            vec![codes::IRREVERSIBLE_EXPIRATION],
            "{diags:?}"
        );
    }

    #[test]
    fn custom_modifier_stage_is_unproven_not_diverging() {
        let db = db();
        let fuzzy = DisguiseSpecBuilder::new("Fuzzy")
            .irreversible()
            .modify(
                "comments",
                None,
                "body",
                Modifier::Custom {
                    name: "opaque".to_string(),
                    f: std::sync::Arc::new(|v| v.clone()),
                },
            )
            .build()
            .unwrap();
        let policy = Policy::Decay(DecayPolicy {
            name: "mystery".to_string(),
            stages: vec![DecayStage {
                disguise: "Fuzzy".to_string(),
            }],
            cadence: 60,
        });
        let diags = audit_workspace(&db, &[fuzzy], &[policy]);
        assert_eq!(
            codes_of(&diags),
            vec![codes::CONVERGENCE_UNPROVEN],
            "{diags:?}"
        );
    }
}
