//! The diagnostic model: structured findings rendered rustc-style.
//!
//! Every analysis pass reports [`Diagnostic`]s rather than printing or
//! erroring directly, so callers can decide policy: `Disguiser::register`
//! hard-fails on errors and records warnings; `edna check` renders the
//! full report and maps severities to exit codes (optionally promoting
//! warnings with `--deny-warnings`).

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The disguise would misbehave or fail mid-transaction if applied;
    /// registration is refused.
    Error,
    /// The disguise is applicable but likely not what the author meant
    /// (dead predicate, lossy composition, uncovered PII).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// Where in the spec a finding points (span-ish: specs have no byte
/// offsets once parsed, so locations name the table section, column, and
/// transformation instead).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Location {
    /// Table section the finding is about, if any.
    pub table: Option<String>,
    /// Column within that table, if the finding is column-precise.
    pub column: Option<String>,
    /// Extra context: the transformation (`Remove`, `Modify(...)`) or the
    /// predicate text the finding anchors to.
    pub context: Option<String>,
}

impl Location {
    /// A location naming just a table section.
    pub fn table(table: impl Into<String>) -> Location {
        Location {
            table: Some(table.into()),
            ..Location::default()
        }
    }

    /// A location naming a table and column.
    pub fn column(table: impl Into<String>, column: impl Into<String>) -> Location {
        Location {
            table: Some(table.into()),
            column: Some(column.into()),
            ..Location::default()
        }
    }

    /// Attaches transformation/predicate context.
    pub fn with_context(mut self, context: impl Into<String>) -> Location {
        self.context = Some(context.into());
        self
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.table, &self.column) {
            (Some(t), Some(c)) => write!(f, "{t}.{c}")?,
            (Some(t), None) => write!(f, "{t}")?,
            _ => write!(f, "<spec>")?,
        }
        if let Some(ctx) = &self.context {
            write!(f, ", {ctx}")?;
        }
        Ok(())
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable code (`E0xx` for errors, `W0xx` for warnings); see the
    /// constants on [`codes`].
    pub code: &'static str,
    /// The disguise the finding is about.
    pub disguise: String,
    /// Where in the spec it points.
    pub location: Location,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the pass can suggest something concrete.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(
        code: &'static str,
        disguise: impl Into<String>,
        location: Location,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            disguise: disguise.into(),
            location,
            message: message.into(),
            help: None,
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(
        code: &'static str,
        disguise: impl Into<String>,
        location: Location,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            disguise: disguise.into(),
            location,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Renders one finding rustc-style:
    ///
    /// ```text
    /// error[E001]: predicate compares INT column `age` with TEXT 'abc'
    ///   --> FlawedScrub / users.age, predicate `age = 'abc'`
    ///   = help: change the literal to an INT
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        out.push_str(&format!("  --> {} / {}\n", self.disguise, self.location));
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

/// The stable diagnostic codes, one per defect class.
pub mod codes {
    /// Predicate compares/combines incompatible types.
    pub const TYPE_MISMATCH: &str = "E001";
    /// Spec references a table the schema does not have.
    pub const UNKNOWN_TABLE: &str = "E002";
    /// Spec references a column the table does not have.
    pub const UNKNOWN_COLUMN: &str = "E003";
    /// A constant predicate failed to evaluate (e.g. division by zero).
    pub const PREDICATE_EVAL: &str = "E004";
    /// Constant predicate is always false: the transform is dead.
    pub const ALWAYS_FALSE: &str = "W001";
    /// Constant predicate is always true: the guard is vacuous.
    pub const ALWAYS_TRUE: &str = "W002";
    /// A `Remove` would orphan child rows no other transform handles.
    pub const ORPHANING_REMOVE: &str = "E010";
    /// A placeholder generator produces NULL for a NOT NULL column.
    pub const PLACEHOLDER_NULL_GAP: &str = "E011";
    /// A placeholder generator's fixed value has the wrong type.
    pub const GENERATOR_TYPE: &str = "E012";
    /// Composition pair: Remove after Decorrelate is lossy on reveal.
    pub const LOSSY_REMOVE_AFTER_DECORRELATE: &str = "W020";
    /// Composition pair: double Modify of one column is lossy on reveal.
    pub const LOSSY_DOUBLE_MODIFY: &str = "W021";
    /// A PII-annotated column is left untouched by a spec that transforms
    /// its table.
    pub const PII_GAP: &str = "W040";
    /// Audit: some interleaving makes a reversible disguise's reveal
    /// permanently impossible.
    pub const REVEAL_UNREACHABLE: &str = "E050";
    /// Audit: some interleaving strands a vault entry no reveal can
    /// consume.
    pub const VAULT_ORPHANED: &str = "E051";
    /// Audit: a decay ladder provably rewrites a column on every run.
    pub const POLICY_DIVERGES: &str = "E052";
    /// Audit: a policy references a missing or wrongly-scoped disguise.
    pub const POLICY_BAD_REF: &str = "E053";
    /// Audit: a reveal works only until another disguise's entries expire.
    pub const EXPIRY_STRANDS_REVEAL: &str = "W050";
    /// Audit: the interleaving search hit its world bound.
    pub const AUDIT_TRUNCATED: &str = "W051";
    /// Audit: decay convergence could not be proved either way.
    pub const CONVERGENCE_UNPROVEN: &str = "W052";
    /// Audit: an expiration policy applies an irreversible disguise.
    pub const IRREVERSIBLE_EXPIRATION: &str = "W053";

    /// Resolves a code string back to its interned constant (used when
    /// deserializing diagnostics from JSON).
    pub fn lookup(code: &str) -> Option<&'static str> {
        const ALL: &[&str] = &[
            TYPE_MISMATCH,
            UNKNOWN_TABLE,
            UNKNOWN_COLUMN,
            PREDICATE_EVAL,
            ALWAYS_FALSE,
            ALWAYS_TRUE,
            ORPHANING_REMOVE,
            PLACEHOLDER_NULL_GAP,
            GENERATOR_TYPE,
            LOSSY_REMOVE_AFTER_DECORRELATE,
            LOSSY_DOUBLE_MODIFY,
            PII_GAP,
            REVEAL_UNREACHABLE,
            VAULT_ORPHANED,
            POLICY_DIVERGES,
            POLICY_BAD_REF,
            EXPIRY_STRANDS_REVEAL,
            AUDIT_TRUNCATED,
            CONVERGENCE_UNPROVEN,
            IRREVERSIBLE_EXPIRATION,
        ];
        ALL.iter().find(|c| **c == code).copied()
    }
}

/// Sorts findings deterministically: errors before warnings, then by
/// location (table, column, context), then code, then message. CI
/// assertions and golden files rely on this order being independent of
/// hash-map iteration.
pub fn sort_diagnostics(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        (
            a.severity,
            &a.location.table,
            &a.location.column,
            &a.location.context,
            a.code,
            &a.message,
            &a.disguise,
        )
            .cmp(&(
                b.severity,
                &b.location.table,
                &b.location.column,
                &b.location.context,
                b.code,
                &b.message,
                &b.disguise,
            ))
    });
}

/// Quotes and escapes `s` as a JSON string literal.
fn jstr(s: &str) -> String {
    format!("\"{}\"", edna_obs::json::escape(s))
}

impl Diagnostic {
    /// Serializes one finding as a JSON object (the `--format json`
    /// machine format).
    pub fn to_json(&self) -> String {
        let opt = |v: &Option<String>| match v {
            Some(s) => jstr(s),
            None => "null".to_string(),
        };
        format!(
            "{{\"severity\":{},\"code\":{},\"disguise\":{},\"table\":{},\"column\":{},\
             \"context\":{},\"message\":{},\"help\":{}}}",
            jstr(&self.severity.to_string()),
            jstr(self.code),
            jstr(&self.disguise),
            opt(&self.location.table),
            opt(&self.location.column),
            opt(&self.location.context),
            jstr(&self.message),
            opt(&self.help),
        )
    }

    /// Deserializes a finding from a parsed JSON object, the inverse of
    /// [`Diagnostic::to_json`]. Returns `None` on missing fields or an
    /// unknown code.
    pub fn from_json(v: &edna_obs::json::Json) -> Option<Diagnostic> {
        let obj = v.as_obj()?;
        let get_str = |k: &str| obj.get(k).and_then(|v| v.as_str());
        let get_opt = |k: &str| get_str(k).map(|s| s.to_string());
        let severity = match get_str("severity")? {
            "error" => Severity::Error,
            "warning" => Severity::Warning,
            _ => return None,
        };
        Some(Diagnostic {
            severity,
            code: codes::lookup(get_str("code")?)?,
            disguise: get_str("disguise")?.to_string(),
            location: Location {
                table: get_opt("table"),
                column: get_opt("column"),
                context: get_opt("context"),
            },
            message: get_str("message")?.to_string(),
            help: get_opt("help"),
        })
    }
}

/// Renders a full machine-readable report:
///
/// ```json
/// {"tool":"edna audit",
///  "reports":[{"subject":"...","diagnostics":[...]}],
///  "summary":{"errors":1,"warnings":2}}
/// ```
///
/// `reports` holds one entry per audited subject (a spec name for
/// `edna check`, the workspace for `edna audit`).
pub fn render_json_report(tool: &str, reports: &[(String, Vec<Diagnostic>)]) -> String {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut parts = Vec::new();
    for (subject, diags) in reports {
        for d in diags {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
        let body: Vec<String> = diags.iter().map(|d| d.to_json()).collect();
        parts.push(format!(
            "{{\"subject\":{},\"diagnostics\":[{}]}}",
            jstr(subject),
            body.join(",")
        ));
    }
    format!(
        "{{\"tool\":{},\"reports\":[{}],\"summary\":{{\"errors\":{errors},\"warnings\":{warnings}}}}}",
        jstr(tool),
        parts.join(",")
    )
}

/// Renders a full report: findings in order, then a rustc-style summary
/// line (`N errors, M warnings` or `no findings`).
pub fn render_report(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.render());
        out.push('\n');
    }
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;
    if errors == 0 && warnings == 0 {
        out.push_str("no findings\n");
    } else {
        out.push_str(&format!(
            "{errors} error{}, {warnings} warning{}\n",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        ));
    }
    out
}

/// Whether any finding is an error.
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_code_location_and_help() {
        let d = Diagnostic::error(
            codes::TYPE_MISMATCH,
            "Scrub",
            Location::column("users", "age").with_context("predicate `age = 'x'`"),
            "type mismatch",
        )
        .with_help("fix the literal");
        let r = d.render();
        assert!(r.contains("error[E001]: type mismatch"), "got: {r}");
        assert!(r.contains("--> Scrub / users.age, predicate"), "got: {r}");
        assert!(r.contains("= help: fix the literal"), "got: {r}");
    }

    #[test]
    fn sort_is_severity_then_location_then_code() {
        let mk = |code, sev: Severity, t: &str, c: Option<&str>| Diagnostic {
            severity: sev,
            code,
            disguise: "S".to_string(),
            location: Location {
                table: Some(t.to_string()),
                column: c.map(str::to_string),
                context: None,
            },
            message: "m".to_string(),
            help: None,
        };
        let mut diags = vec![
            mk(codes::PII_GAP, Severity::Warning, "a", None),
            mk(codes::UNKNOWN_COLUMN, Severity::Error, "b", Some("x")),
            mk(codes::UNKNOWN_TABLE, Severity::Error, "b", Some("x")),
            mk(codes::TYPE_MISMATCH, Severity::Error, "a", Some("y")),
        ];
        sort_diagnostics(&mut diags);
        let order: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            order,
            vec![
                codes::TYPE_MISMATCH,  // error, table a
                codes::UNKNOWN_TABLE,  // error, table b, E002 < E003
                codes::UNKNOWN_COLUMN, // error, table b
                codes::PII_GAP,        // warnings last
            ]
        );
    }

    #[test]
    fn json_round_trips_one_diagnostic() {
        let d = Diagnostic::error(
            codes::REVEAL_UNREACHABLE,
            "Shelf",
            Location::table("comments").with_context("after applying \"Purge\""),
            "no reveal of `Shelf` can reach `Present`",
        )
        .with_help("make `Purge` reversible");
        let parsed = edna_obs::json::parse(&d.to_json()).expect("valid json");
        let back = Diagnostic::from_json(&parsed).expect("round trip");
        assert_eq!(back.severity, d.severity);
        assert_eq!(back.code, d.code);
        assert_eq!(back.disguise, d.disguise);
        assert_eq!(back.location, d.location);
        assert_eq!(back.message, d.message);
        assert_eq!(back.help, d.help);
    }

    #[test]
    fn json_report_has_tool_reports_and_summary() {
        let e = Diagnostic::error(codes::VAULT_ORPHANED, "S", Location::table("t"), "x");
        let w = Diagnostic::warning(codes::AUDIT_TRUNCATED, "S", Location::default(), "y");
        let out = render_json_report("edna audit", &[("workspace".to_string(), vec![e, w])]);
        let parsed = edna_obs::json::parse(&out).expect("valid json");
        let obj = parsed.as_obj().unwrap();
        assert_eq!(obj["tool"].as_str(), Some("edna audit"));
        let summary = obj["summary"].as_obj().unwrap();
        assert_eq!(summary["errors"].as_num(), Some(1.0));
        assert_eq!(summary["warnings"].as_num(), Some(1.0));
        match &obj["reports"] {
            edna_obs::json::Json::Arr(reports) => {
                let r0 = reports[0].as_obj().unwrap();
                assert_eq!(r0["subject"].as_str(), Some("workspace"));
                match &r0["diagnostics"] {
                    edna_obs::json::Json::Arr(ds) => assert_eq!(ds.len(), 2),
                    other => panic!("diagnostics not an array: {other:?}"),
                }
            }
            other => panic!("reports not an array: {other:?}"),
        }
    }

    #[test]
    fn code_lookup_interns_known_codes_only() {
        assert_eq!(codes::lookup("E050"), Some(codes::REVEAL_UNREACHABLE));
        assert_eq!(codes::lookup("W053"), Some(codes::IRREVERSIBLE_EXPIRATION));
        assert_eq!(codes::lookup("E999"), None);
    }

    #[test]
    fn report_summarizes_counts() {
        let e = Diagnostic::error(codes::UNKNOWN_TABLE, "S", Location::table("t"), "x");
        let w = Diagnostic::warning(codes::PII_GAP, "S", Location::table("t"), "y");
        let r = render_report(&[e.clone(), w.clone(), w.clone()]);
        assert!(r.contains("1 error, 2 warnings"), "got: {r}");
        assert!(has_errors(&[e]));
        assert!(!has_errors(&[w]));
        assert!(render_report(&[]).contains("no findings"));
    }
}
