//! The diagnostic model: structured findings rendered rustc-style.
//!
//! Every analysis pass reports [`Diagnostic`]s rather than printing or
//! erroring directly, so callers can decide policy: `Disguiser::register`
//! hard-fails on errors and records warnings; `edna check` renders the
//! full report and maps severities to exit codes (optionally promoting
//! warnings with `--deny-warnings`).

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The disguise would misbehave or fail mid-transaction if applied;
    /// registration is refused.
    Error,
    /// The disguise is applicable but likely not what the author meant
    /// (dead predicate, lossy composition, uncovered PII).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// Where in the spec a finding points (span-ish: specs have no byte
/// offsets once parsed, so locations name the table section, column, and
/// transformation instead).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Location {
    /// Table section the finding is about, if any.
    pub table: Option<String>,
    /// Column within that table, if the finding is column-precise.
    pub column: Option<String>,
    /// Extra context: the transformation (`Remove`, `Modify(...)`) or the
    /// predicate text the finding anchors to.
    pub context: Option<String>,
}

impl Location {
    /// A location naming just a table section.
    pub fn table(table: impl Into<String>) -> Location {
        Location {
            table: Some(table.into()),
            ..Location::default()
        }
    }

    /// A location naming a table and column.
    pub fn column(table: impl Into<String>, column: impl Into<String>) -> Location {
        Location {
            table: Some(table.into()),
            column: Some(column.into()),
            ..Location::default()
        }
    }

    /// Attaches transformation/predicate context.
    pub fn with_context(mut self, context: impl Into<String>) -> Location {
        self.context = Some(context.into());
        self
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.table, &self.column) {
            (Some(t), Some(c)) => write!(f, "{t}.{c}")?,
            (Some(t), None) => write!(f, "{t}")?,
            _ => write!(f, "<spec>")?,
        }
        if let Some(ctx) = &self.context {
            write!(f, ", {ctx}")?;
        }
        Ok(())
    }
}

/// One analysis finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable code (`E0xx` for errors, `W0xx` for warnings); see the
    /// constants on [`codes`].
    pub code: &'static str,
    /// The disguise the finding is about.
    pub disguise: String,
    /// Where in the spec it points.
    pub location: Location,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the pass can suggest something concrete.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(
        code: &'static str,
        disguise: impl Into<String>,
        location: Location,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            disguise: disguise.into(),
            location,
            message: message.into(),
            help: None,
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(
        code: &'static str,
        disguise: impl Into<String>,
        location: Location,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            disguise: disguise.into(),
            location,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Renders one finding rustc-style:
    ///
    /// ```text
    /// error[E001]: predicate compares INT column `age` with TEXT 'abc'
    ///   --> FlawedScrub / users.age, predicate `age = 'abc'`
    ///   = help: change the literal to an INT
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        out.push_str(&format!("  --> {} / {}\n", self.disguise, self.location));
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

/// The stable diagnostic codes, one per defect class.
pub mod codes {
    /// Predicate compares/combines incompatible types.
    pub const TYPE_MISMATCH: &str = "E001";
    /// Spec references a table the schema does not have.
    pub const UNKNOWN_TABLE: &str = "E002";
    /// Spec references a column the table does not have.
    pub const UNKNOWN_COLUMN: &str = "E003";
    /// A constant predicate failed to evaluate (e.g. division by zero).
    pub const PREDICATE_EVAL: &str = "E004";
    /// Constant predicate is always false: the transform is dead.
    pub const ALWAYS_FALSE: &str = "W001";
    /// Constant predicate is always true: the guard is vacuous.
    pub const ALWAYS_TRUE: &str = "W002";
    /// A `Remove` would orphan child rows no other transform handles.
    pub const ORPHANING_REMOVE: &str = "E010";
    /// A placeholder generator produces NULL for a NOT NULL column.
    pub const PLACEHOLDER_NULL_GAP: &str = "E011";
    /// A placeholder generator's fixed value has the wrong type.
    pub const GENERATOR_TYPE: &str = "E012";
    /// Composition pair: Remove after Decorrelate is lossy on reveal.
    pub const LOSSY_REMOVE_AFTER_DECORRELATE: &str = "W020";
    /// Composition pair: double Modify of one column is lossy on reveal.
    pub const LOSSY_DOUBLE_MODIFY: &str = "W021";
    /// A PII-annotated column is left untouched by a spec that transforms
    /// its table.
    pub const PII_GAP: &str = "W040";
}

/// Renders a full report: findings in order, then a rustc-style summary
/// line (`N errors, M warnings` or `no findings`).
pub fn render_report(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.render());
        out.push('\n');
    }
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;
    if errors == 0 && warnings == 0 {
        out.push_str("no findings\n");
    } else {
        out.push_str(&format!(
            "{errors} error{}, {warnings} warning{}\n",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        ));
    }
    out
}

/// Whether any finding is an error.
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_code_location_and_help() {
        let d = Diagnostic::error(
            codes::TYPE_MISMATCH,
            "Scrub",
            Location::column("users", "age").with_context("predicate `age = 'x'`"),
            "type mismatch",
        )
        .with_help("fix the literal");
        let r = d.render();
        assert!(r.contains("error[E001]: type mismatch"), "got: {r}");
        assert!(r.contains("--> Scrub / users.age, predicate"), "got: {r}");
        assert!(r.contains("= help: fix the literal"), "got: {r}");
    }

    #[test]
    fn report_summarizes_counts() {
        let e = Diagnostic::error(codes::UNKNOWN_TABLE, "S", Location::table("t"), "x");
        let w = Diagnostic::warning(codes::PII_GAP, "S", Location::table("t"), "y");
        let r = render_report(&[e.clone(), w.clone(), w.clone()]);
        assert!(r.contains("1 error, 2 warnings"), "got: {r}");
        assert!(has_errors(&[e]));
        assert!(!has_errors(&[w]));
        assert!(render_report(&[]).contains("no findings"));
    }
}
