//! Schema-aware static analysis of disguise specifications.
//!
//! Paper §6 promises "static analysis of the disguise and schema";
//! [`crate::analysis`] automates the composition *optimization* slice of
//! that promise, and this module adds the *diagnostics* slice: four
//! passes over a [`DisguiseSpec`] × database schema that catch disguises
//! which would fail mid-transaction, silently do nothing, destroy data
//! needed for reveal, or leave identifying data behind:
//!
//! 1. [`typeck`] — predicate type checking against column types, plus
//!    constant-predicate folding (`E001`–`E004`, `W001`/`W002`);
//! 2. [`refsafety`] — foreign-key walking for orphaning `Remove`s and
//!    placeholder generators that cannot insert (`E010`–`E012`);
//! 3. [`composition`] — spec pairs whose composition is lossy on reveal
//!    (`W020`/`W021`);
//! 4. [`pii`] — coverage of `PII`-annotated schema columns (`W040`).
//!
//! All passes emit structured [`Diagnostic`]s rendered rustc-style.
//! [`crate::Disguiser::register`] hard-fails on errors and records
//! warnings; the `edna check` CLI subcommand runs the analyzer
//! standalone (optionally with `--deny-warnings`).
//!
//! On top of the per-spec passes sits the **workspace audit** (`edna
//! audit`): an abstract interpreter over the whole disguise graph —
//! [`lattice`] (domains), [`transfer`] (per-spec effect compilation),
//! [`interleave`] (all-orders exploration with reveal walk-back), and
//! [`audit`] (diagnostics `E050`–`E053`, `W050`–`W053`, including
//! scheduled-policy convergence).

pub mod audit;
pub mod composition;
pub mod diagnostics;
pub mod interleave;
pub mod lattice;
pub mod pii;
pub mod refsafety;
pub mod transfer;
pub mod typeck;

pub use audit::audit_workspace;
pub use diagnostics::{
    codes, has_errors, render_json_report, render_report, sort_diagnostics, Diagnostic, Location,
    Severity,
};

use edna_relational::Database;

use crate::spec::DisguiseSpec;

/// Runs all four analysis passes over `spec` against the schema in `db`,
/// with `priors` as the already-registered specs for pair analysis
/// (pass them in a deterministic order, e.g. sorted by name).
///
/// Returns every finding, errors before warnings. Sections naming
/// unknown tables are reported (`E002`) and skipped by the schema-driven
/// passes, so the analyzer never panics on a malformed spec.
pub fn analyze_spec(
    spec: &DisguiseSpec,
    db: &Database,
    priors: &[&DisguiseSpec],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for section in &spec.tables {
        if db.schema(&section.table).is_err() {
            diags.push(Diagnostic::error(
                codes::UNKNOWN_TABLE,
                &spec.name,
                Location::table(&section.table),
                format!("unknown table `{}`", section.table),
            ));
        }
    }
    for assertion in &spec.assertions {
        if db.schema(&assertion.table).is_err() {
            diags.push(Diagnostic::error(
                codes::UNKNOWN_TABLE,
                &spec.name,
                Location::table(&assertion.table)
                    .with_context(format!("assertion {:?}", assertion.description)),
                format!("unknown table `{}`", assertion.table),
            ));
        }
    }
    typeck::check(spec, db, &mut diags);
    refsafety::check(spec, db, &mut diags);
    composition::check(spec, priors, &mut diags);
    pii::check(spec, db, &mut diags);
    // Deterministic order: severity, then location, then code — stable
    // regardless of pass order or hash-map iteration (see
    // `sort_diagnostics`).
    diagnostics::sort_diagnostics(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DisguiseSpecBuilder;

    #[test]
    fn unknown_tables_are_reported_not_panicked() {
        let db = Database::new();
        let spec = DisguiseSpecBuilder::new("Ghost")
            .remove("nowhere", None)
            .assert_empty("elsewhere", "1 = 0", "gone")
            .build()
            .unwrap();
        let diags = analyze_spec(&spec, &db, &[]);
        let got: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            got,
            vec![codes::UNKNOWN_TABLE, codes::UNKNOWN_TABLE],
            "{diags:?}"
        );
        assert!(has_errors(&diags));
    }

    #[test]
    fn errors_sort_before_warnings() {
        let db = Database::new();
        db.execute("CREATE TABLE users (id INT PRIMARY KEY, name TEXT PII, age INT)")
            .unwrap();
        // One warning source (untouched PII) and one error source (type
        // mismatch), declared warning-first.
        let spec = DisguiseSpecBuilder::new("Mix")
            .modify(
                "users",
                Some("age = 'old'"),
                "age",
                crate::spec::Modifier::SetNull,
            )
            .build()
            .unwrap();
        let diags = analyze_spec(&spec, &db, &[]);
        assert!(diags.len() >= 2, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags.last().unwrap().severity, Severity::Warning);
    }
}
