//! Pass 4: PII coverage.
//!
//! Columns annotated `PII` in the schema (see
//! `edna_relational::ColumnDef::pii`) hold personally identifiable
//! information. For every table a spec transforms, this lint reports PII
//! columns the spec leaves untouched (`W040`): rows survive the disguise
//! with identifying data intact. Tables the spec only declares
//! placeholder generators for are not checked — placeholders are fresh
//! synthetic rows, not surviving user data.

use edna_relational::Database;

use crate::spec::{DisguiseSpec, Transformation};

use super::diagnostics::{codes, Diagnostic, Location};

/// Runs the pass, appending findings to `diags`.
pub fn check(spec: &DisguiseSpec, db: &Database, diags: &mut Vec<Diagnostic>) {
    for section in &spec.tables {
        if section.transformations.is_empty() {
            continue;
        }
        let Ok(schema) = db.schema(&section.table) else {
            continue;
        };
        let removes_rows = section
            .transformations
            .iter()
            .any(|pt| matches!(pt.transform, Transformation::Remove));
        if removes_rows {
            // A Remove disposes of the whole row, PII included. (Remove
            // predicates may not cover every row, but the spec author has
            // visibly decided which rows of this table go away.)
            continue;
        }
        for pii_col in schema.pii_columns() {
            let covered = section
                .transformations
                .iter()
                .any(|pt| match &pt.transform {
                    Transformation::Remove => true,
                    Transformation::Modify { column, .. } => column.eq_ignore_ascii_case(pii_col),
                    Transformation::Decorrelate { fk_column, .. } => {
                        fk_column.eq_ignore_ascii_case(pii_col)
                    }
                });
            if !covered {
                diags.push(
                    Diagnostic::warning(
                        codes::PII_GAP,
                        &spec.name,
                        Location::column(&section.table, pii_col),
                        format!(
                            "`{}.{pii_col}` is annotated PII but this spec transforms the \
                             table without touching it; identifying data survives the disguise",
                            section.table
                        ),
                    )
                    .with_help(format!(
                        "add a Modify (e.g. SetNull, HashText) or Remove covering \
                         `{}.{pii_col}`, or drop the PII annotation if it is wrong",
                        section.table
                    )),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DisguiseSpecBuilder, Generator, Modifier};

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY, name TEXT NOT NULL PII, \
               email TEXT PII, karma INT);
             CREATE TABLE posts (id INT PRIMARY KEY, user_id INT NOT NULL, body TEXT,
               FOREIGN KEY (user_id) REFERENCES users(id));",
        )
        .unwrap();
        db
    }

    fn run(spec: &DisguiseSpec) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check(spec, &db(), &mut diags);
        diags
    }

    #[test]
    fn untouched_pii_in_transformed_table_is_flagged() {
        let spec = DisguiseSpecBuilder::new("Partial")
            .user_scoped()
            .modify("users", Some("id = $UID"), "email", Modifier::SetNull)
            .build()
            .unwrap();
        let diags = run(&spec);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::PII_GAP);
        assert_eq!(diags[0].location.column.as_deref(), Some("name"));
    }

    #[test]
    fn remove_covers_all_pii() {
        let spec = DisguiseSpecBuilder::new("Delete")
            .user_scoped()
            .remove("users", Some("id = $UID"))
            .build()
            .unwrap();
        assert!(run(&spec).is_empty());
    }

    #[test]
    fn untransformed_tables_are_not_checked() {
        // A spec that only touches posts says nothing about users; no
        // findings even though users has PII. Placeholder-only sections
        // are likewise skipped.
        let spec = DisguiseSpecBuilder::new("PostsOnly")
            .user_scoped()
            .decorrelate("posts", Some("user_id = $UID"), "user_id", "users")
            .placeholder("users", "name", Generator::Random)
            .build()
            .unwrap();
        assert!(run(&spec).is_empty(), "{:?}", run(&spec));
    }
}
