//! Placeholder synthesis for decorrelation.
//!
//! Paper §3: "Placeholder users have suitable default values; for example,
//! placeholder users should be disabled, ensuring they have no permissions
//! and cannot log in." Each decorrelated row gets its *own* placeholder
//! (Figure 2), so placeholders cannot be correlated with one another.

use edna_util::rng::Rng;

use edna_relational::{Database, Row, TableSchema, Value};

use crate::error::{Error, Result};
use crate::spec::{DisguiseSpec, Generator};

/// Attempts before giving up on a colliding `Random` draw (or free
/// primary key). The pseudo-name space is finite, so at 10⁴–10⁵
/// placeholders individual draws *will* collide with earlier placeholders
/// on UNIQUE columns; redrawing makes that a retry, not a failure.
const UNIQUE_RETRIES: usize = 64;

/// Redraws every `Random`-generated column of `values` in place. Called
/// after a UNIQUE violation: `Default`/`Derive` values can't change, so
/// only fresh randomness can resolve the conflict.
fn redraw_random_columns(
    schema: &TableSchema,
    generators: &[(String, Generator)],
    values: &mut [(&str, Value)],
    rng: &mut impl Rng,
) {
    for (i, col) in schema.columns.iter().enumerate() {
        let is_random = generators.iter().any(|(name, g)| {
            name.eq_ignore_ascii_case(&col.name) && matches!(g, Generator::Random)
        });
        if !is_random {
            continue;
        }
        if let Some(slot) = values.iter_mut().find(|(name, _)| *name == col.name) {
            slot.1 = random_value(schema, i, rng);
        }
    }
}

/// Creates one placeholder row in `parent_table`, returning its primary-key
/// value. Column values come from the spec's `generate_placeholder` section
/// for that table, falling back to column defaults; the original value of
/// the decorrelated reference is available to `Derive` generators.
/// `Random` columns that land on a UNIQUE conflict are redrawn (bounded).
pub fn create_placeholder(
    db: &Database,
    spec: &DisguiseSpec,
    parent_table: &str,
    original_value: &Value,
    rng: &mut impl Rng,
) -> Result<Value> {
    let schema = db.schema(parent_table)?;
    let pk_index = schema.primary_key.ok_or_else(|| Error::NeedsPrimaryKey {
        table: parent_table.to_string(),
        context: "placeholder creation".to_string(),
    })?;
    let generators = spec
        .table(parent_table)
        .map(|t| t.generate_placeholder.as_slice())
        .unwrap_or(&[]);

    let mut values: Vec<(&str, Value)> = Vec::new();
    for (i, col) in schema.columns.iter().enumerate() {
        if i == pk_index {
            continue; // Assigned below.
        }
        let generator = generators
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(&col.name));
        let v = match generator {
            Some((_, Generator::Random)) => random_value(&schema, i, rng),
            Some((_, Generator::Default(v))) => v.clone(),
            Some((_, Generator::Derive { f, .. })) => f(original_value),
            None => col.default.clone().unwrap_or(Value::Null),
        };
        values.push((col.name.as_str(), v));
    }

    let has_random = generators
        .iter()
        .any(|(_, g)| matches!(g, Generator::Random));
    let pk_col = &schema.columns[pk_index];
    if pk_col.auto_increment {
        for attempt in 0..UNIQUE_RETRIES {
            match db.insert_row(parent_table, &values) {
                Ok(Some(assigned)) => return Ok(Value::Int(assigned)),
                Ok(None) => {
                    return Err(Error::Placeholder {
                        table: parent_table.to_string(),
                        message: "AUTO_INCREMENT assigned no id".to_string(),
                    })
                }
                Err(edna_relational::Error::UniqueViolation { .. })
                    if has_random && attempt + 1 < UNIQUE_RETRIES =>
                {
                    redraw_random_columns(&schema, generators, &mut values, rng);
                }
                Err(e) => return Err(e.into()),
            }
        }
        return Err(Error::Placeholder {
            table: parent_table.to_string(),
            message: format!("could not draw a unique placeholder after {UNIQUE_RETRIES} attempts"),
        });
    }

    // Non-auto primary key: pick random ids until one is free (bounded).
    for _ in 0..UNIQUE_RETRIES {
        let candidate = Value::Int(rng.gen_range(1_000_000_000..i64::MAX / 2));
        let mut with_pk = values.clone();
        with_pk.push((pk_col.name.as_str(), candidate.clone()));
        match db.insert_row(parent_table, &with_pk) {
            Ok(_) => return Ok(candidate),
            Err(edna_relational::Error::UniqueViolation { .. }) => {
                // The conflict may be the candidate key *or* a random
                // UNIQUE column — redraw both.
                if has_random {
                    redraw_random_columns(&schema, generators, &mut values, rng);
                }
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(Error::Placeholder {
        table: parent_table.to_string(),
        message: format!("could not find a free primary key after {UNIQUE_RETRIES} attempts"),
    })
}

/// Creates one placeholder per entry of `originals`, batching the inserts
/// into a single engine round trip when `parent_table` has an
/// AUTO_INCREMENT primary key (the common case). Values are generated in
/// the same per-row, schema-column order as repeated
/// [`create_placeholder`] calls, so a seeded RNG produces identical
/// placeholders either way. Tables with explicit primary keys fall back to
/// per-row creation (the random-key retry loop needs per-row feedback).
pub fn create_placeholders(
    db: &Database,
    spec: &DisguiseSpec,
    parent_table: &str,
    originals: &[Value],
    rng: &mut impl Rng,
) -> Result<Vec<Value>> {
    if originals.is_empty() {
        return Ok(Vec::new());
    }
    let schema = db.schema(parent_table)?;
    let pk_index = schema.primary_key.ok_or_else(|| Error::NeedsPrimaryKey {
        table: parent_table.to_string(),
        context: "placeholder creation".to_string(),
    })?;
    if !schema.columns[pk_index].auto_increment {
        return originals
            .iter()
            .map(|o| create_placeholder(db, spec, parent_table, o, rng))
            .collect();
    }
    let generators = spec
        .table(parent_table)
        .map(|t| t.generate_placeholder.as_slice())
        .unwrap_or(&[]);
    let mut rows: Vec<Row> = Vec::with_capacity(originals.len());
    for original in originals {
        let mut row: Row = Vec::with_capacity(schema.columns.len());
        for (i, col) in schema.columns.iter().enumerate() {
            if i == pk_index {
                row.push(Value::Null); // AUTO_INCREMENT assigns it.
                continue;
            }
            let generator = generators
                .iter()
                .find(|(name, _)| name.eq_ignore_ascii_case(&col.name));
            let v = match generator {
                Some((_, Generator::Random)) => random_value(&schema, i, rng),
                Some((_, Generator::Default(v))) => v.clone(),
                Some((_, Generator::Derive { f, .. })) => f(original),
                None => col.default.clone().unwrap_or(Value::Null),
            };
            row.push(v);
        }
        rows.push(row);
    }
    match db.insert_rows(parent_table, rows) {
        Ok(assigned) => assigned
            .into_iter()
            .map(|assigned| {
                assigned.map(Value::Int).ok_or_else(|| Error::Placeholder {
                    table: parent_table.to_string(),
                    message: "AUTO_INCREMENT assigned no id".to_string(),
                })
            })
            .collect(),
        Err(edna_relational::Error::UniqueViolation { .. }) => {
            // A Random draw collided (with an existing row or within the
            // batch). The failed statement rolled back atomically, so fall
            // back to per-row creation, which redraws on conflict.
            originals
                .iter()
                .map(|o| create_placeholder(db, spec, parent_table, o, rng))
                .collect()
        }
        Err(e) => Err(e.into()),
    }
}

/// A type-appropriate random value for `schema.columns[i]`. Text columns
/// get pronounceable pseudo-names (like the paper's "Axolotl"/"Fossa"
/// placeholders); numeric columns get random non-negative values.
pub fn random_value(schema: &TableSchema, i: usize, rng: &mut impl Rng) -> Value {
    use edna_relational::DataType;
    let col = &schema.columns[i];
    match col.ty {
        DataType::Int => Value::Int(rng.gen_range(0..1_000_000_000_000)),
        DataType::Float => Value::Float(rng.gen_range(0.0..1.0)),
        DataType::Bool => Value::Bool(false),
        DataType::Bytes => Value::Bytes((0..8).map(|_| rng.gen()).collect()),
        DataType::Text => {
            const CONSONANTS: &[u8] = b"bcdfgklmnprstvz";
            const VOWELS: &[u8] = b"aeiou";
            // Four syllables minimum keeps the draw space ≥ 31M: at
            // 10⁴–10⁵ placeholders, birthday collisions on UNIQUE
            // columns stay rare enough that the bounded redraw in
            // `create_placeholder` is a corner case, not the batch
            // path's common case.
            let syllables = rng.gen_range(4..=6);
            let mut name = String::new();
            for s in 0..syllables {
                let c = CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char;
                let v = VOWELS[rng.gen_range(0..VOWELS.len())] as char;
                if s == 0 {
                    name.push(c.to_ascii_uppercase());
                } else {
                    name.push(c);
                }
                name.push(v);
            }
            Value::Text(name)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DisguiseSpecBuilder;
    use edna_util::rng::Prng;

    fn db() -> Database {
        let db = Database::new();
        db.execute(
            "CREATE TABLE ContactInfo (contactId INT PRIMARY KEY AUTO_INCREMENT, \
             name TEXT NOT NULL, email TEXT, disabled BOOL NOT NULL DEFAULT FALSE)",
        )
        .unwrap();
        db
    }

    fn spec() -> DisguiseSpec {
        DisguiseSpecBuilder::new("t")
            .placeholder("ContactInfo", "name", Generator::Random)
            .placeholder("ContactInfo", "email", Generator::Default(Value::Null))
            .placeholder(
                "ContactInfo",
                "disabled",
                Generator::Default(Value::Bool(true)),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn creates_disabled_placeholder_with_random_name() {
        let db = db();
        let mut rng = Prng::seed_from_u64(5);
        let pk =
            create_placeholder(&db, &spec(), "ContactInfo", &Value::Int(19), &mut rng).unwrap();
        let rows = db
            .execute(&format!(
                "SELECT name, email, disabled FROM ContactInfo WHERE contactId = {pk}"
            ))
            .unwrap()
            .rows;
        assert_eq!(rows.len(), 1);
        let Value::Text(name) = &rows[0][0] else {
            panic!("expected name")
        };
        assert!(!name.is_empty());
        assert_eq!(rows[0][1], Value::Null);
        assert_eq!(
            rows[0][2],
            Value::Bool(true),
            "placeholders must be disabled"
        );
    }

    #[test]
    fn each_placeholder_is_distinct() {
        let db = db();
        let mut rng = Prng::seed_from_u64(6);
        let a = create_placeholder(&db, &spec(), "ContactInfo", &Value::Int(19), &mut rng).unwrap();
        let b = create_placeholder(&db, &spec(), "ContactInfo", &Value::Int(19), &mut rng).unwrap();
        assert_ne!(a, b);
        assert_eq!(db.row_count("ContactInfo").unwrap(), 2);
    }

    #[test]
    fn derive_generator_sees_original_value() {
        let db = db();
        let mut rng = Prng::seed_from_u64(7);
        let spec = DisguiseSpecBuilder::new("t")
            .placeholder(
                "ContactInfo",
                "name",
                Generator::Derive {
                    name: "tagged".into(),
                    f: std::sync::Arc::new(|orig| Value::Text(format!("anon-of-{orig}"))),
                },
            )
            .build()
            .unwrap();
        let pk = create_placeholder(&db, &spec, "ContactInfo", &Value::Int(19), &mut rng).unwrap();
        let rows = db
            .execute(&format!(
                "SELECT name FROM ContactInfo WHERE contactId = {pk}"
            ))
            .unwrap()
            .rows;
        assert_eq!(rows[0][0], Value::Text("anon-of-19".into()));
    }

    #[test]
    fn random_unique_collision_redraws_instead_of_failing() {
        let db = Database::new();
        db.execute(
            "CREATE TABLE ContactInfo (contactId INT PRIMARY KEY AUTO_INCREMENT, \
             name TEXT NOT NULL UNIQUE)",
        )
        .unwrap();
        let spec = DisguiseSpecBuilder::new("t")
            .placeholder("ContactInfo", "name", Generator::Random)
            .build()
            .unwrap();
        // Pre-claim the exact name a fresh seed-9 RNG draws first, so the
        // placeholder's first attempt is guaranteed to collide.
        let schema = db.schema("ContactInfo").unwrap();
        let mut probe = Prng::seed_from_u64(9);
        let Value::Text(first_draw) = random_value(&schema, 1, &mut probe) else {
            panic!("expected a text draw")
        };
        db.execute(&format!(
            "INSERT INTO ContactInfo (name) VALUES ('{first_draw}')"
        ))
        .unwrap();

        let mut rng = Prng::seed_from_u64(9);
        create_placeholder(&db, &spec, "ContactInfo", &Value::Int(1), &mut rng)
            .expect("collision redraws");
        assert_eq!(db.row_count("ContactInfo").unwrap(), 2);
    }

    #[test]
    fn batch_placeholders_fall_back_per_row_on_collision() {
        let db = Database::new();
        db.execute(
            "CREATE TABLE ContactInfo (contactId INT PRIMARY KEY AUTO_INCREMENT, \
             name TEXT NOT NULL UNIQUE)",
        )
        .unwrap();
        let spec = DisguiseSpecBuilder::new("t")
            .placeholder("ContactInfo", "name", Generator::Random)
            .build()
            .unwrap();
        let schema = db.schema("ContactInfo").unwrap();
        let mut probe = Prng::seed_from_u64(10);
        let Value::Text(first_draw) = random_value(&schema, 1, &mut probe) else {
            panic!("expected a text draw")
        };
        db.execute(&format!(
            "INSERT INTO ContactInfo (name) VALUES ('{first_draw}')"
        ))
        .unwrap();

        let originals = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let mut rng = Prng::seed_from_u64(10);
        let pks = create_placeholders(&db, &spec, "ContactInfo", &originals, &mut rng)
            .expect("batch falls back and redraws");
        assert_eq!(pks.len(), 3);
        assert_eq!(db.row_count("ContactInfo").unwrap(), 4);
    }

    #[test]
    fn non_auto_pk_tables_get_random_ids() {
        let db = Database::new();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, tag TEXT)")
            .unwrap();
        let spec = DisguiseSpecBuilder::new("t").build().unwrap();
        let mut rng = Prng::seed_from_u64(8);
        let pk = create_placeholder(&db, &spec, "t", &Value::Null, &mut rng).unwrap();
        assert!(matches!(pk, Value::Int(_)));
        assert_eq!(db.row_count("t").unwrap(), 1);
    }
}
