//! Placeholder synthesis for decorrelation.
//!
//! Paper §3: "Placeholder users have suitable default values; for example,
//! placeholder users should be disabled, ensuring they have no permissions
//! and cannot log in." Each decorrelated row gets its *own* placeholder
//! (Figure 2), so placeholders cannot be correlated with one another.

use edna_util::rng::Rng;

use edna_relational::{Database, Row, TableSchema, Value};

use crate::error::{Error, Result};
use crate::spec::{DisguiseSpec, Generator};

/// Creates one placeholder row in `parent_table`, returning its primary-key
/// value. Column values come from the spec's `generate_placeholder` section
/// for that table, falling back to column defaults; the original value of
/// the decorrelated reference is available to `Derive` generators.
pub fn create_placeholder(
    db: &Database,
    spec: &DisguiseSpec,
    parent_table: &str,
    original_value: &Value,
    rng: &mut impl Rng,
) -> Result<Value> {
    let schema = db.schema(parent_table)?;
    let pk_index = schema.primary_key.ok_or_else(|| Error::NeedsPrimaryKey {
        table: parent_table.to_string(),
        context: "placeholder creation".to_string(),
    })?;
    let generators = spec
        .table(parent_table)
        .map(|t| t.generate_placeholder.as_slice())
        .unwrap_or(&[]);

    let mut values: Vec<(&str, Value)> = Vec::new();
    for (i, col) in schema.columns.iter().enumerate() {
        if i == pk_index {
            continue; // Assigned below.
        }
        let generator = generators
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(&col.name));
        let v = match generator {
            Some((_, Generator::Random)) => random_value(&schema, i, rng),
            Some((_, Generator::Default(v))) => v.clone(),
            Some((_, Generator::Derive { f, .. })) => f(original_value),
            None => col.default.clone().unwrap_or(Value::Null),
        };
        values.push((col.name.as_str(), v));
    }

    let pk_col = &schema.columns[pk_index];
    if pk_col.auto_increment {
        let assigned = db
            .insert_row(parent_table, &values)?
            .ok_or_else(|| Error::Placeholder {
                table: parent_table.to_string(),
                message: "AUTO_INCREMENT assigned no id".to_string(),
            })?;
        return Ok(Value::Int(assigned));
    }

    // Non-auto primary key: pick random ids until one is free (bounded).
    for _ in 0..64 {
        let candidate = Value::Int(rng.gen_range(1_000_000_000..i64::MAX / 2));
        let mut with_pk = values.clone();
        with_pk.push((pk_col.name.as_str(), candidate.clone()));
        match db.insert_row(parent_table, &with_pk) {
            Ok(_) => return Ok(candidate),
            Err(edna_relational::Error::UniqueViolation { .. }) => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Err(Error::Placeholder {
        table: parent_table.to_string(),
        message: "could not find a free primary key after 64 attempts".to_string(),
    })
}

/// Creates one placeholder per entry of `originals`, batching the inserts
/// into a single engine round trip when `parent_table` has an
/// AUTO_INCREMENT primary key (the common case). Values are generated in
/// the same per-row, schema-column order as repeated
/// [`create_placeholder`] calls, so a seeded RNG produces identical
/// placeholders either way. Tables with explicit primary keys fall back to
/// per-row creation (the random-key retry loop needs per-row feedback).
pub fn create_placeholders(
    db: &Database,
    spec: &DisguiseSpec,
    parent_table: &str,
    originals: &[Value],
    rng: &mut impl Rng,
) -> Result<Vec<Value>> {
    if originals.is_empty() {
        return Ok(Vec::new());
    }
    let schema = db.schema(parent_table)?;
    let pk_index = schema.primary_key.ok_or_else(|| Error::NeedsPrimaryKey {
        table: parent_table.to_string(),
        context: "placeholder creation".to_string(),
    })?;
    if !schema.columns[pk_index].auto_increment {
        return originals
            .iter()
            .map(|o| create_placeholder(db, spec, parent_table, o, rng))
            .collect();
    }
    let generators = spec
        .table(parent_table)
        .map(|t| t.generate_placeholder.as_slice())
        .unwrap_or(&[]);
    let mut rows: Vec<Row> = Vec::with_capacity(originals.len());
    for original in originals {
        let mut row: Row = Vec::with_capacity(schema.columns.len());
        for (i, col) in schema.columns.iter().enumerate() {
            if i == pk_index {
                row.push(Value::Null); // AUTO_INCREMENT assigns it.
                continue;
            }
            let generator = generators
                .iter()
                .find(|(name, _)| name.eq_ignore_ascii_case(&col.name));
            let v = match generator {
                Some((_, Generator::Random)) => random_value(&schema, i, rng),
                Some((_, Generator::Default(v))) => v.clone(),
                Some((_, Generator::Derive { f, .. })) => f(original),
                None => col.default.clone().unwrap_or(Value::Null),
            };
            row.push(v);
        }
        rows.push(row);
    }
    db.insert_rows(parent_table, rows)?
        .into_iter()
        .map(|assigned| {
            assigned.map(Value::Int).ok_or_else(|| Error::Placeholder {
                table: parent_table.to_string(),
                message: "AUTO_INCREMENT assigned no id".to_string(),
            })
        })
        .collect()
}

/// A type-appropriate random value for `schema.columns[i]`. Text columns
/// get pronounceable pseudo-names (like the paper's "Axolotl"/"Fossa"
/// placeholders); numeric columns get random non-negative values.
pub fn random_value(schema: &TableSchema, i: usize, rng: &mut impl Rng) -> Value {
    use edna_relational::DataType;
    let col = &schema.columns[i];
    match col.ty {
        DataType::Int => Value::Int(rng.gen_range(0..1_000_000)),
        DataType::Float => Value::Float(rng.gen_range(0.0..1.0)),
        DataType::Bool => Value::Bool(false),
        DataType::Bytes => Value::Bytes((0..8).map(|_| rng.gen()).collect()),
        DataType::Text => {
            const CONSONANTS: &[u8] = b"bcdfgklmnprstvz";
            const VOWELS: &[u8] = b"aeiou";
            let syllables = rng.gen_range(2..=4);
            let mut name = String::new();
            for s in 0..syllables {
                let c = CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char;
                let v = VOWELS[rng.gen_range(0..VOWELS.len())] as char;
                if s == 0 {
                    name.push(c.to_ascii_uppercase());
                } else {
                    name.push(c);
                }
                name.push(v);
            }
            Value::Text(name)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DisguiseSpecBuilder;
    use edna_util::rng::Prng;

    fn db() -> Database {
        let db = Database::new();
        db.execute(
            "CREATE TABLE ContactInfo (contactId INT PRIMARY KEY AUTO_INCREMENT, \
             name TEXT NOT NULL, email TEXT, disabled BOOL NOT NULL DEFAULT FALSE)",
        )
        .unwrap();
        db
    }

    fn spec() -> DisguiseSpec {
        DisguiseSpecBuilder::new("t")
            .placeholder("ContactInfo", "name", Generator::Random)
            .placeholder("ContactInfo", "email", Generator::Default(Value::Null))
            .placeholder(
                "ContactInfo",
                "disabled",
                Generator::Default(Value::Bool(true)),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn creates_disabled_placeholder_with_random_name() {
        let db = db();
        let mut rng = Prng::seed_from_u64(5);
        let pk =
            create_placeholder(&db, &spec(), "ContactInfo", &Value::Int(19), &mut rng).unwrap();
        let rows = db
            .execute(&format!(
                "SELECT name, email, disabled FROM ContactInfo WHERE contactId = {pk}"
            ))
            .unwrap()
            .rows;
        assert_eq!(rows.len(), 1);
        let Value::Text(name) = &rows[0][0] else {
            panic!("expected name")
        };
        assert!(!name.is_empty());
        assert_eq!(rows[0][1], Value::Null);
        assert_eq!(
            rows[0][2],
            Value::Bool(true),
            "placeholders must be disabled"
        );
    }

    #[test]
    fn each_placeholder_is_distinct() {
        let db = db();
        let mut rng = Prng::seed_from_u64(6);
        let a = create_placeholder(&db, &spec(), "ContactInfo", &Value::Int(19), &mut rng).unwrap();
        let b = create_placeholder(&db, &spec(), "ContactInfo", &Value::Int(19), &mut rng).unwrap();
        assert_ne!(a, b);
        assert_eq!(db.row_count("ContactInfo").unwrap(), 2);
    }

    #[test]
    fn derive_generator_sees_original_value() {
        let db = db();
        let mut rng = Prng::seed_from_u64(7);
        let spec = DisguiseSpecBuilder::new("t")
            .placeholder(
                "ContactInfo",
                "name",
                Generator::Derive {
                    name: "tagged".into(),
                    f: std::sync::Arc::new(|orig| Value::Text(format!("anon-of-{orig}"))),
                },
            )
            .build()
            .unwrap();
        let pk = create_placeholder(&db, &spec, "ContactInfo", &Value::Int(19), &mut rng).unwrap();
        let rows = db
            .execute(&format!(
                "SELECT name FROM ContactInfo WHERE contactId = {pk}"
            ))
            .unwrap()
            .rows;
        assert_eq!(rows[0][0], Value::Text("anon-of-19".into()));
    }

    #[test]
    fn non_auto_pk_tables_get_random_ids() {
        let db = Database::new();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, tag TEXT)")
            .unwrap();
        let spec = DisguiseSpecBuilder::new("t").build().unwrap();
        let mut rng = Prng::seed_from_u64(8);
        let pk = create_placeholder(&db, &spec, "t", &Value::Null, &mut rng).unwrap();
        assert!(matches!(pk, Value::Int(_)));
        assert_eq!(db.row_count("t").unwrap(), 1);
    }
}
