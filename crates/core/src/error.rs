//! Error types for the disguising tool.

use std::fmt;

/// Any error produced by the disguising tool.
#[derive(Debug)]
#[allow(missing_docs)] // Field names are self-describing.
pub enum Error {
    /// No disguise registered under this name.
    NoSuchDisguise(String),
    /// The disguise specification failed validation against the schema.
    SpecInvalid { disguise: String, message: String },
    /// The disguise specification text could not be parsed.
    SpecParse { line: usize, message: String },
    /// Static analysis ([`crate::analyze`]) found errors at registration;
    /// `report` is the rendered diagnostic report.
    AnalysisFailed { disguise: String, report: String },
    /// A user-scoped disguise was applied without a user id.
    MissingUser(String),
    /// A post-apply assertion failed; the disguise was rolled back.
    AssertionFailed {
        disguise: String,
        assertion: String,
        matching_rows: usize,
    },
    /// The disguise application is not reversible (spec or expired vault).
    NotReversible { disguise_id: u64, reason: String },
    /// The disguise application was already reverted.
    AlreadyReverted(u64),
    /// No disguise application with this id exists in the history log.
    NoSuchApplication(u64),
    /// A table needs a primary key for this transformation.
    NeedsPrimaryKey { table: String, context: String },
    /// Placeholder generation failed.
    Placeholder { table: String, message: String },
    /// A guarded application update tried to touch a disguised row
    /// (paper §7: updates to disguised data are prohibited).
    DisguisedData { table: String, pk: String },
    /// The application failed *and* the rollback of its transaction also
    /// failed — a double fault. The database may hold a partial
    /// application; both causes are preserved.
    RollbackFailed {
        apply: Box<Error>,
        rollback: edna_relational::Error,
    },
    /// A vault write failed under the *buffer* policy but no journal is
    /// configured to spool it.
    NoJournal,
    /// An error bubbled up from the relational engine.
    Relational(edna_relational::Error),
    /// An error bubbled up from vault storage.
    Vault(edna_vault::Error),
    /// A workspace-level failure (state files, lock file, sidecars); the
    /// message is already formatted for the operator.
    Workspace(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoSuchDisguise(n) => write!(f, "no such disguise: {n}"),
            Error::SpecInvalid { disguise, message } => {
                write!(f, "invalid disguise spec {disguise}: {message}")
            }
            Error::SpecParse { line, message } => {
                write!(f, "disguise spec parse error at line {line}: {message}")
            }
            Error::AnalysisFailed { disguise, report } => {
                write!(f, "disguise {disguise} failed static analysis:\n{report}")
            }
            Error::MissingUser(n) => {
                write!(f, "disguise {n} is user-scoped but no user id was provided")
            }
            Error::AssertionFailed {
                disguise,
                assertion,
                matching_rows,
            } => write!(
                f,
                "assertion failed after applying {disguise}: {assertion} \
                 ({matching_rows} matching rows); rolled back"
            ),
            Error::NotReversible {
                disguise_id,
                reason,
            } => {
                write!(
                    f,
                    "disguise application {disguise_id} is not reversible: {reason}"
                )
            }
            Error::AlreadyReverted(id) => {
                write!(f, "disguise application {id} was already reverted")
            }
            Error::NoSuchApplication(id) => {
                write!(f, "no disguise application with id {id}")
            }
            Error::NeedsPrimaryKey { table, context } => {
                write!(f, "table {table} needs a primary key for {context}")
            }
            Error::Placeholder { table, message } => {
                write!(f, "placeholder generation failed for {table}: {message}")
            }
            Error::DisguisedData { table, pk } => {
                write!(f, "row {table}[{pk}] is disguised; updates are prohibited")
            }
            Error::RollbackFailed { apply, rollback } => write!(
                f,
                "disguise application failed ({apply}) and its rollback also \
                 failed ({rollback}); the database may hold a partial application"
            ),
            Error::NoJournal => write!(
                f,
                "vault write failed under the buffer policy but no journal is \
                 configured; call Disguiser::set_vault_journal first"
            ),
            Error::Relational(e) => write!(f, "relational error: {e}"),
            Error::Vault(e) => write!(f, "vault error: {e}"),
            Error::Workspace(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Relational(e) => Some(e),
            Error::Vault(e) => Some(e),
            Error::RollbackFailed { apply, .. } => Some(apply.as_ref()),
            _ => None,
        }
    }
}

impl From<edna_relational::Error> for Error {
    fn from(e: edna_relational::Error) -> Self {
        Error::Relational(e)
    }
}

impl From<edna_vault::Error> for Error {
    fn from(e: edna_vault::Error) -> Self {
        Error::Vault(e)
    }
}

/// Convenience alias used throughout the disguising tool.
pub type Result<T> = std::result::Result<T, Error>;
