//! The disguise history log.
//!
//! Paper §4.2: "the tool keeps a persistent log of all disguises the
//! application applied, and re-applies disguises from the relevant log
//! interval to the revealed data". Like the prototype (§5: "Edna also
//! keeps a disguise history table"), the log lives in the application
//! database itself, in a reserved table.

use edna_relational::{Database, Value};

use crate::error::{Error, Result};

/// Name of the reserved history table.
pub const HISTORY_TABLE: &str = "_edna_disguise_history";

/// One recorded disguise application.
#[derive(Debug, Clone, PartialEq)]
pub struct DisguiseEvent {
    /// Monotonic application id (also the vault entry key).
    pub id: u64,
    /// Disguise name.
    pub name: String,
    /// Disguised user id (NULL for global disguises).
    pub user_id: Value,
    /// Logical time of application.
    pub applied_at: i64,
    /// Whether reveal functions were recorded.
    pub reversible: bool,
    /// Whether the application has been reverted.
    pub reverted: bool,
    /// Why the application degraded to irreversible, if it did (the
    /// *degrade* vault failure policy records the vault error here).
    pub note: Option<String>,
}

/// Handle to the history table in an application database.
#[derive(Clone)]
pub struct HistoryLog {
    db: Database,
}

impl HistoryLog {
    /// Opens (creating the table if needed) the history log in `db`.
    pub fn open(db: Database) -> Result<HistoryLog> {
        if !db.has_table(HISTORY_TABLE) {
            db.execute(&format!(
                "CREATE TABLE {HISTORY_TABLE} (
                    id INT PRIMARY KEY AUTO_INCREMENT,
                    name TEXT NOT NULL,
                    userId TEXT,
                    appliedAt INT NOT NULL,
                    reversible BOOL NOT NULL,
                    reverted BOOL NOT NULL DEFAULT FALSE,
                    note TEXT
                 )"
            ))?;
        }
        Ok(HistoryLog { db })
    }

    /// Records a new application; returns its id.
    pub fn record(
        &self,
        name: &str,
        user_id: &Value,
        applied_at: i64,
        reversible: bool,
    ) -> Result<u64> {
        let user_literal = if user_id.is_null() {
            Value::Null
        } else {
            Value::Text(user_id.to_sql_literal())
        };
        let id = self
            .db
            .insert_row(
                HISTORY_TABLE,
                &[
                    ("name", Value::Text(name.to_string())),
                    ("userId", user_literal),
                    ("appliedAt", Value::Int(applied_at)),
                    ("reversible", Value::Bool(reversible)),
                    ("reverted", Value::Bool(false)),
                ],
            )?
            .ok_or_else(|| {
                Error::Relational(edna_relational::Error::Eval(
                    "history table lost its AUTO_INCREMENT id".to_string(),
                ))
            })?;
        Ok(id as u64)
    }

    /// Marks application `id` reverted.
    pub fn mark_reverted(&self, id: u64) -> Result<()> {
        let n = self.db.execute(&format!(
            "UPDATE {HISTORY_TABLE} SET reverted = TRUE WHERE id = {id}"
        ))?;
        if n.affected == 0 {
            return Err(Error::NoSuchApplication(id));
        }
        Ok(())
    }

    /// Marks application `id` irreversible, recording `reason` — the
    /// *degrade* vault failure policy: the disguise proceeded, but its
    /// reveal functions could not be persisted, so it must never be
    /// offered for reveal.
    pub fn mark_degraded(&self, id: u64, reason: &str) -> Result<()> {
        let quoted = reason.replace('\'', "''");
        let n = self.db.execute(&format!(
            "UPDATE {HISTORY_TABLE} SET reversible = FALSE, note = '{quoted}' WHERE id = {id}"
        ))?;
        if n.affected == 0 {
            return Err(Error::NoSuchApplication(id));
        }
        Ok(())
    }

    /// The event with the given id.
    pub fn get(&self, id: u64) -> Result<DisguiseEvent> {
        self.events_where(&format!("id = {id}"))?
            .into_iter()
            .next()
            .ok_or(Error::NoSuchApplication(id))
    }

    /// All events, oldest first.
    pub fn events(&self) -> Result<Vec<DisguiseEvent>> {
        self.events_where("TRUE")
    }

    /// Non-reverted, reversible events strictly older than `id` (candidates
    /// for apply-time composition, §4.2).
    pub fn active_before(&self, id: u64) -> Result<Vec<DisguiseEvent>> {
        self.events_where(&format!(
            "id < {id} AND reverted = FALSE AND reversible = TRUE"
        ))
    }

    /// Non-reverted events strictly newer than `id` (the "relevant log
    /// interval" re-applied after a reveal, §4.2).
    pub fn active_after(&self, id: u64) -> Result<Vec<DisguiseEvent>> {
        self.events_where(&format!("id > {id} AND reverted = FALSE"))
    }

    /// The most recent non-reverted application of `name` for `user_id`.
    pub fn latest(&self, name: &str, user_id: &Value) -> Result<Option<DisguiseEvent>> {
        let user_match = if user_id.is_null() {
            "userId IS NULL".to_string()
        } else {
            format!(
                "userId = '{}'",
                user_id.to_sql_literal().replace('\'', "''")
            )
        };
        let mut events = self.events_where(&format!(
            "name = '{}' AND {user_match} AND reverted = FALSE",
            name.replace('\'', "''")
        ))?;
        Ok(events.pop())
    }

    fn events_where(&self, cond: &str) -> Result<Vec<DisguiseEvent>> {
        let r = self.db.execute(&format!(
            "SELECT id, name, userId, appliedAt, reversible, reverted, note \
             FROM {HISTORY_TABLE} WHERE {cond} ORDER BY id"
        ))?;
        r.rows
            .into_iter()
            .map(|row| {
                Ok(DisguiseEvent {
                    id: row[0].as_int()? as u64,
                    name: row[1].as_text()?.to_string(),
                    user_id: decode_user(&row[2])?,
                    applied_at: row[3].as_int()?,
                    reversible: row[4].as_bool()?,
                    reverted: row[5].as_bool()?,
                    note: match &row[6] {
                        Value::Null => None,
                        v => Some(v.as_text()?.to_string()),
                    },
                })
            })
            .collect()
    }
}

/// Decodes the stored SQL-literal rendering of a user id back to a Value.
fn decode_user(stored: &Value) -> Result<Value> {
    match stored {
        Value::Null => Ok(Value::Null),
        Value::Text(s) => {
            let expr = edna_relational::parse_expr(s).map_err(Error::Relational)?;
            match expr {
                edna_relational::Expr::Literal(v) => Ok(v),
                edna_relational::Expr::Unary {
                    op: edna_relational::UnOp::Neg,
                    expr,
                } => match *expr {
                    edna_relational::Expr::Literal(Value::Int(i)) => Ok(Value::Int(-i)),
                    edna_relational::Expr::Literal(Value::Float(x)) => Ok(Value::Float(-x)),
                    _ => Err(Error::Relational(edna_relational::Error::Eval(format!(
                        "bad stored user id {s}"
                    )))),
                },
                _ => Err(Error::Relational(edna_relational::Error::Eval(format!(
                    "bad stored user id {s}"
                )))),
            }
        }
        other => Err(Error::Relational(edna_relational::Error::Eval(format!(
            "bad stored user id {other}"
        )))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> HistoryLog {
        HistoryLog::open(Database::new()).unwrap()
    }

    #[test]
    fn record_and_fetch() {
        let log = log();
        let a = log.record("GDPR", &Value::Int(19), 100, true).unwrap();
        let b = log.record("ConfAnon", &Value::Null, 200, true).unwrap();
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        let e = log.get(a).unwrap();
        assert_eq!(e.name, "GDPR");
        assert_eq!(e.user_id, Value::Int(19));
        assert!(!e.reverted);
        let global = log.get(b).unwrap();
        assert!(global.user_id.is_null());
    }

    #[test]
    fn intervals() {
        let log = log();
        let a = log.record("A", &Value::Int(1), 1, true).unwrap();
        let b = log.record("B", &Value::Null, 2, true).unwrap();
        let c = log.record("C", &Value::Int(2), 3, false).unwrap();
        // Before c: both a and b (reversible, unreverted).
        let before = log.active_before(c).unwrap();
        assert_eq!(before.iter().map(|e| e.id).collect::<Vec<_>>(), vec![a, b]);
        // After a: b and c.
        let after = log.active_after(a).unwrap();
        assert_eq!(after.iter().map(|e| e.id).collect::<Vec<_>>(), vec![b, c]);
        // Irreversible c is not a composition candidate.
        let before2 = log.active_before(99).unwrap();
        assert!(!before2.iter().any(|e| e.id == c));
    }

    #[test]
    fn revert_marking() {
        let log = log();
        let a = log.record("A", &Value::Int(1), 1, true).unwrap();
        log.mark_reverted(a).unwrap();
        assert!(log.get(a).unwrap().reverted);
        assert!(log.active_before(99).unwrap().is_empty());
        assert!(matches!(
            log.mark_reverted(42),
            Err(Error::NoSuchApplication(42))
        ));
    }

    #[test]
    fn degrade_marking() {
        let log = log();
        let a = log.record("A", &Value::Int(1), 1, true).unwrap();
        assert_eq!(log.get(a).unwrap().note, None);
        log.mark_degraded(a, "vault error: it's down").unwrap();
        let e = log.get(a).unwrap();
        assert!(!e.reversible, "degraded applications are irreversible");
        assert_eq!(e.note.as_deref(), Some("vault error: it's down"));
        // Degraded events are no longer composition candidates.
        assert!(log.active_before(99).unwrap().is_empty());
        assert!(matches!(
            log.mark_degraded(42, "x"),
            Err(Error::NoSuchApplication(42))
        ));
    }

    #[test]
    fn latest_by_name_and_user() {
        let log = log();
        log.record("A", &Value::Int(1), 1, true).unwrap();
        let second = log.record("A", &Value::Int(1), 2, true).unwrap();
        log.record("A", &Value::Int(2), 3, true).unwrap();
        let e = log.latest("A", &Value::Int(1)).unwrap().unwrap();
        assert_eq!(e.id, second);
        assert!(log.latest("B", &Value::Int(1)).unwrap().is_none());
        // Text user ids round-trip through the literal encoding.
        log.record("A", &Value::Text("o'brien".into()), 4, true)
            .unwrap();
        let t = log
            .latest("A", &Value::Text("o'brien".into()))
            .unwrap()
            .unwrap();
        assert_eq!(t.user_id, Value::Text("o'brien".into()));
    }

    #[test]
    fn log_survives_in_database() {
        let db = Database::new();
        {
            let log = HistoryLog::open(db.clone()).unwrap();
            log.record("A", &Value::Int(1), 1, true).unwrap();
        }
        // Reopening sees the same data (the table is in the DB).
        let log2 = HistoryLog::open(db).unwrap();
        assert_eq!(log2.events().unwrap().len(), 1);
    }
}
