//! Advisory state-directory lock files with stale-holder detection.
//!
//! Two processes opening the same workspace would interleave WAL
//! appends and trample each other's checkpoints, so a workspace takes a
//! `<state>.lock` file for its lifetime: created with `O_EXCL` and
//! holding the owner's PID. A crash (including `SIGKILL`) leaves the
//! file behind; the next acquirer reads the PID, sees the process is
//! gone, and reclaims the lock instead of failing forever.
//!
//! The lock is *advisory* — nothing stops a process that does not take
//! it — and PID-recycling can in principle make a stale lock look live;
//! both are the standard trade-offs of PID lock files (accepted by
//! pretty much every daemon that ships one).

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Why a lock could not be acquired.
#[derive(Debug)]
pub enum LockError {
    /// Another live process holds the lock.
    Held {
        /// PID recorded in the lock file.
        holder_pid: u32,
        /// The lock file path.
        path: PathBuf,
    },
    /// Filesystem trouble while creating or inspecting the lock.
    Io(std::io::Error),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Held { holder_pid, path } => write!(
                f,
                "{} is locked by running process {holder_pid}; if that process is \
                 gone, delete the lock file",
                path.display()
            ),
            LockError::Io(e) => write!(f, "lock file error: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Whether a process with `pid` appears to be alive. On Linux this is a
/// `/proc/<pid>` existence check; elsewhere we have no portable
/// dependency-free probe, so every recorded holder is presumed alive
/// (fail safe: never steal a lock we cannot prove stale).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

/// A held advisory lock; dropping it releases (deletes) the file.
#[derive(Debug)]
pub struct LockFile {
    path: PathBuf,
}

impl LockFile {
    /// Acquires the lock at `path`, reclaiming it if the recorded holder
    /// is dead (or the file is garbled — a crash between create and the
    /// PID write leaves an empty file).
    pub fn acquire(path: impl AsRef<Path>) -> Result<LockFile, LockError> {
        let path = path.as_ref().to_path_buf();
        // A bounded retry loop: each pass either creates the file, finds
        // a live holder, or sweeps a stale file and tries again. The
        // sweep-then-create window is racy between two reclaiming
        // processes, but one of them wins the O_EXCL create and the
        // other comes back around to a live holder.
        for _ in 0..5 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    f.write_all(std::process::id().to_string().as_bytes())
                        .and_then(|()| f.sync_all())
                        .map_err(LockError::Io)?;
                    return Ok(LockFile { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid_alive(pid) => {
                            return Err(LockError::Held {
                                holder_pid: pid,
                                path,
                            })
                        }
                        // Dead holder or unreadable/garbled content:
                        // stale, sweep and retry. A concurrent sweep
                        // having already removed it is fine.
                        _ => match std::fs::remove_file(&path) {
                            Ok(()) => {}
                            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                            Err(e) => return Err(LockError::Io(e)),
                        },
                    }
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
        Err(LockError::Io(std::io::Error::other(format!(
            "could not acquire {} after repeated stale-lock sweeps",
            path.display()
        ))))
    }

    /// The lock file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("edna_lock_test_{tag}_{}", std::process::id()))
    }

    #[test]
    fn acquire_release_reacquire() {
        let p = temp("cycle");
        let _ = std::fs::remove_file(&p);
        let lock = LockFile::acquire(&p).unwrap();
        assert!(p.exists());
        // Second acquire in the same (live) process fails and names us.
        match LockFile::acquire(&p) {
            Err(LockError::Held { holder_pid, .. }) => {
                assert_eq!(holder_pid, std::process::id())
            }
            other => panic!("expected Held, got {other:?}"),
        }
        drop(lock);
        assert!(!p.exists(), "drop released the lock");
        let _relock = LockFile::acquire(&p).unwrap();
    }

    #[test]
    fn stale_pid_is_reclaimed() {
        let p = temp("stale");
        let _ = std::fs::remove_file(&p);
        // A PID far above any real pid_max stands in for a dead holder.
        std::fs::write(&p, "4194304999").unwrap();
        let lock = LockFile::acquire(&p).unwrap();
        assert_eq!(
            std::fs::read_to_string(lock.path()).unwrap(),
            std::process::id().to_string()
        );
    }

    #[test]
    fn garbled_lock_is_reclaimed() {
        let p = temp("garbled");
        let _ = std::fs::remove_file(&p);
        std::fs::write(&p, "").unwrap();
        let _lock = LockFile::acquire(&p).unwrap();
        let p2 = temp("garbled2");
        let _ = std::fs::remove_file(&p2);
        std::fs::write(&p2, "not a pid").unwrap();
        let _lock2 = LockFile::acquire(&p2).unwrap();
    }

    #[test]
    fn error_message_names_holder() {
        let p = temp("msg");
        let _ = std::fs::remove_file(&p);
        let _lock = LockFile::acquire(&p).unwrap();
        let msg = LockFile::acquire(&p).unwrap_err().to_string();
        assert!(msg.contains(&std::process::id().to_string()), "got: {msg}");
        assert!(msg.contains("locked by running process"), "got: {msg}");
    }
}
