//! Checksummed, crash-recoverable record framing.
//!
//! The file-backed vault, the pending-write journal, and the relational
//! write-ahead log all persist append-only sequences of records. Each
//! record is framed as
//!
//! ```text
//! [u32 little-endian body length][body][32-byte SHA-256(body)]
//! ```
//!
//! so a reader can detect a *torn tail* — the truncated or garbled last
//! record a crash mid-append leaves behind — and recover by truncating the
//! file back to the last complete record, WAL-style, instead of refusing
//! to load. Corruption is only assumed at the tail (the append-only write
//! pattern guarantees earlier records were fully written and synced);
//! scanning stops at the first bad record either way, since nothing after
//! an unparseable frame can be trusted.

use crate::buf::BytesMut;
use crate::sha256::{sha256, DIGEST_LEN};

/// Appends one framed record to `buf`.
pub fn append_record(buf: &mut BytesMut, body: &[u8]) {
    buf.put_u32_le(body.len() as u32);
    buf.put_slice(body);
    buf.put_slice(&sha256(body));
}

/// One framed record, ready to write.
pub fn encode_record(body: &[u8]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4 + body.len() + DIGEST_LEN);
    append_record(&mut buf, body);
    buf.to_vec()
}

/// The outcome of scanning a record file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Bodies of every complete, checksum-valid record, in file order.
    pub records: Vec<Vec<u8>>,
    /// Length of the valid prefix; `< data.len()` means a torn tail
    /// follows and the file should be truncated back to this offset.
    pub valid_len: usize,
}

impl ScanOutcome {
    /// Bytes of torn tail past the valid prefix.
    pub fn torn_bytes(&self, total_len: usize) -> usize {
        total_len - self.valid_len
    }
}

/// Scans framed records from `data`, stopping at the first incomplete or
/// checksum-invalid record.
pub fn scan_records(data: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut offset = 0;
    while let Some(len_bytes) = data.get(offset..offset + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let body_start = offset + 4;
        let Some(body) = data.get(body_start..body_start + len) else {
            break;
        };
        let sum_start = body_start + len;
        let Some(sum) = data.get(sum_start..sum_start + DIGEST_LEN) else {
            break;
        };
        if sha256(body) != sum {
            break;
        }
        records.push(body.to_vec());
        offset = sum_start + DIGEST_LEN;
    }
    ScanOutcome {
        records,
        valid_len: offset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_of(bodies: &[&[u8]]) -> Vec<u8> {
        let mut buf = BytesMut::new();
        for b in bodies {
            append_record(&mut buf, b);
        }
        buf.to_vec()
    }

    #[test]
    fn round_trips_records() {
        let data = file_of(&[b"first", b"", b"third record"]);
        let scan = scan_records(&data);
        assert_eq!(
            scan.records,
            vec![b"first".to_vec(), vec![], b"third record".to_vec()]
        );
        assert_eq!(scan.valid_len, data.len());
    }

    #[test]
    fn every_truncation_point_recovers_complete_prefix() {
        let bodies: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 5 + i as usize]).collect();
        let refs: Vec<&[u8]> = bodies.iter().map(|b| b.as_slice()).collect();
        let data = file_of(&refs);
        // Record boundaries in the encoded file.
        let mut boundaries = vec![0];
        for b in &bodies {
            boundaries.push(boundaries.last().unwrap() + 4 + b.len() + DIGEST_LEN);
        }
        for cut in 0..data.len() {
            let scan = scan_records(&data[..cut]);
            let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(scan.records.len(), complete, "cut at {cut}");
            assert_eq!(scan.valid_len, boundaries[complete], "cut at {cut}");
            assert_eq!(
                scan.records,
                bodies[..complete].to_vec(),
                "records intact at cut {cut}"
            );
        }
    }

    #[test]
    fn bit_flip_stops_the_scan() {
        let data = file_of(&[b"aaaa", b"bbbb"]);
        // Flip a byte inside the first body: nothing can be trusted.
        let mut flipped = data.clone();
        flipped[5] ^= 0xFF;
        let scan = scan_records(&flipped);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        // Flip inside the second body: the first record survives.
        let mut flipped = data.clone();
        let second_body = 4 + 4 + DIGEST_LEN + 4 + 1;
        flipped[second_body] ^= 0xFF;
        let scan = scan_records(&flipped);
        assert_eq!(scan.records, vec![b"aaaa".to_vec()]);
    }

    #[test]
    fn garbage_length_prefix_is_contained() {
        // A huge length that runs past the buffer must not panic.
        let mut data = file_of(&[b"ok"]);
        let valid = data.len();
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        data.extend_from_slice(b"tail");
        let scan = scan_records(&data);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, valid);
        assert_eq!(scan.torn_bytes(data.len()), 8);
    }
}
