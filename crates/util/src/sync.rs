//! Poison-tolerant lock acquisition.
//!
//! `std::sync` locks are poisoned when a holder panics. For the
//! structures guarded across this workspace — statement/plan caches, RNG
//! state, spool files, span buffers — the guarded data stays structurally
//! valid across a panic (no multi-step invariants are held mid-panic), so
//! propagating the poison would turn one failed statement into a
//! permanently wedged engine. These helpers recover the guard instead.
//!
//! Callers that *do* hold multi-step invariants (e.g. the relational
//! engine's table state mid-write) must repair their own invariants after
//! recovery rather than use these helpers blindly.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering the guard if a previous writer panicked.
pub fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, recovering the guard if a previous holder panicked.
pub fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn mutex_recovers_after_panic() {
        let m = Mutex::new(5);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 5);
    }

    #[test]
    fn rwlock_recovers_after_panic() {
        let l = RwLock::new(7);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = l.write().unwrap();
            panic!("poison it");
        }));
        assert!(l.is_poisoned());
        assert_eq!(*read_unpoisoned(&l), 7);
        *write_unpoisoned(&l) += 1;
        assert_eq!(*read_unpoisoned(&l), 8);
    }
}
