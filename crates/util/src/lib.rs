//! `edna-util`: zero-dependency utilities shared across the workspace.
//!
//! The workspace must build and test with no network access (no crates.io
//! registry), so the handful of external crates the seed depended on are
//! replaced by small in-repo implementations:
//!
//! - [`rng`] — a deterministic, seedable PRNG (SplitMix64 seeding feeding
//!   xoshiro256++) behind a minimal [`rng::Rng`] trait, used by the data
//!   generators, placeholder synthesis, and retry jitter;
//! - [`buf`] — cursor-style byte buffers ([`buf::Bytes`] / [`buf::BytesMut`])
//!   for the vault wire formats;
//! - [`frame`] — checksummed `[len][body][sha256]` record framing with
//!   torn-tail detection, shared by the vault files, the pending-write
//!   journal, and the relational write-ahead log;
//! - [`sha256`] — SHA-256 (FIPS 180-4), shared by the vault crypto and the
//!   crash-consistency checksums in snapshots and vault files;
//! - [`sync`] — poison-tolerant lock acquisition, so a panic in one
//!   statement cannot wedge shared caches for every later caller;
//! - [`hex`] — lowercase hex encode/decode for capability tokens and
//!   digest rendering;
//! - [`lockfile`] — advisory PID lock files with stale-holder
//!   reclamation, so two processes cannot open the same workspace.

#![warn(missing_docs)]

pub mod buf;
pub mod frame;
pub mod hex;
pub mod lockfile;
pub mod rng;
pub mod sha256;
pub mod sync;
