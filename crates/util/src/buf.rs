//! Cursor-style byte buffers for the vault wire formats.
//!
//! A minimal stand-in for the `bytes` crate surface the workspace uses:
//! [`BytesMut`] accumulates little-endian primitives and freezes into an
//! immutable, cheaply-sliceable [`Bytes`] cursor. Readers are expected to
//! check [`Bytes::remaining`] before decoding (the codecs do); the getters
//! panic on underflow, matching `bytes`.

use std::sync::Arc;

/// A growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64_le(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian IEEE-754 `f64`.
    pub fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Converts into an immutable [`Bytes`] cursor.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Copies the written bytes out as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// An immutable byte buffer with a read cursor; clones and slices share
/// the underlying allocation.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Copies a byte slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Unread bytes left in the cursor.
    pub fn remaining(&self) -> usize {
        self.end - self.start
    }

    /// Whether any unread bytes remain.
    pub fn has_remaining(&self) -> bool {
        self.start < self.end
    }

    /// Same as [`Bytes::remaining`] (`bytes` exposes both).
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// Whether the cursor is exhausted.
    pub fn is_empty(&self) -> bool {
        !self.has_remaining()
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.remaining(), "buffer underflow");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Reads a little-endian IEEE-754 `f64`.
    pub fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Copies `out.len()` bytes into `out`, advancing the cursor.
    pub fn copy_to_slice(&mut self, out: &mut [u8]) {
        let n = out.len();
        out.copy_from_slice(self.take(n));
    }

    /// Returns a new cursor over a sub-range of the *unread* bytes,
    /// sharing the allocation. Accepts any range form (`..n`, `a..b`, ...).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.remaining(),
        };
        assert!(lo <= hi && hi <= self.remaining(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_i64_le(-42);
        w.put_f64_le(1.5);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        let mut out = [0u8; 3];
        r.copy_to_slice(&mut out);
        assert_eq!(&out, b"abc");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        b.get_u8();
        let s = b.slice(..3);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(b.slice(2..4).as_slice(), &[3, 4]);
        assert_eq!(b.remaining(), 5, "slice must not advance the parent");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1]);
        b.get_u32_le();
    }
}
