//! Deterministic pseudo-random numbers without external dependencies.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the standard
//! pairing recommended by the xoshiro authors. It is *not* cryptographic;
//! vault key material additionally passes through SHA-256-based derivation
//! (see `edna-vault`). Everything here is deterministic per seed, which the
//! test suite and the fault-injection harness rely on.

use std::ops::{Range, RangeInclusive};

/// A source of pseudo-random numbers.
///
/// Mirrors the slice of the `rand::Rng` API the workspace uses, so call
/// sites read identically to idiomatic `rand` code.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics on an empty range, like `rand::Rng::gen_range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of type `T` from its full uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Maps 64 random bits to a float in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64: a tiny, high-quality 64-bit mixer used to expand one seed
/// word into a full xoshiro state (and for retry jitter, where a whole
/// xoshiro state per retry loop would be overkill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream starting from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// The workspace's default deterministic generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator whose full 256-bit state is expanded from
    /// `seed` via SplitMix64 (the xoshiro authors' recommended seeding).
    pub fn seed_from_u64(seed: u64) -> Prng {
        let mut sm = SplitMix64::new(seed);
        Prng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for Prng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A range that can be sampled uniformly for values of type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, span)` by rejection sampling (unbiased).
/// `span == 0` encodes the full 64-bit range.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Reject the final partial bucket so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                // hi - lo + 1 wraps to 0 exactly when the range covers the
                // full 64-bit domain, which uniform_u64 handles.
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let off = uniform_u64(rng, span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Types with a natural "uniform over the whole type" distribution,
/// sampled by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(43);
        assert_ne!(Prng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-20i64..=20);
            assert!((-20..=20).contains(&v));
            let u = rng.gen_range(0usize..13);
            assert!(u < 13);
            let b = rng.gen_range(0..26u8);
            assert!(b < 26);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = Prng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = Prng::seed_from_u64(9);
        // span wraps to 0; must not panic or loop forever.
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = Prng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut again = [0u8; 37];
        Prng::seed_from_u64(5).fill_bytes(&mut again);
        assert_eq!(buf, again);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567 from the reference C implementation.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn take(mut rng: impl Rng) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = Prng::seed_from_u64(1);
        let _ = take(&mut rng);
        let _ = rng.gen::<u8>();
    }
}
