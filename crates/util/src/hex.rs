//! Lowercase hexadecimal encoding and decoding.
//!
//! Capability tokens cross the wire as hex text, and several tests
//! render digests for comparison; this is the one shared codec.

/// Renders `bytes` as lowercase hex, two digits per byte.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    out
}

/// Parses hex text (case-insensitive) back into bytes. Returns `None` on
/// odd length or any non-hex character.
pub fn from_hex(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u32> = text
        .chars()
        .map(|c| c.to_digit(16))
        .collect::<Option<_>>()?;
    Some(
        digits
            .chunks_exact(2)
            .map(|d| ((d[0] << 4) | d[1]) as u8)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = to_hex(&bytes);
        assert_eq!(hex.len(), 512);
        assert_eq!(from_hex(&hex).unwrap(), bytes);
        // Uppercase input decodes too.
        assert_eq!(from_hex(&hex.to_uppercase()).unwrap(), bytes);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex digit");
        assert_eq!(from_hex(""), Some(vec![]));
    }

    #[test]
    fn known_vector() {
        assert_eq!(to_hex(&[0xde, 0xad, 0xbe, 0xef]), "deadbeef");
    }
}
