//! Bench for the §6 composition experiment (SEC6-COMPOSE).
//!
//! Measures the four paths statistically at a reduced scale (the harness
//! runs each several times; the full-scale single-shot numbers come from
//! the `sec6_composition` binary). No latency injection: in-process ratios.

use edna_apps::hotcrp::generate::HotCrpConfig;
use edna_bench::harness::BenchGroup;
use edna_bench::hotcrp_env;
use edna_core::ApplyOptions;
use edna_relational::Value;

fn config() -> HotCrpConfig {
    HotCrpConfig::scaled(0.1)
}

fn main() {
    let mut group = BenchGroup::new("sec6_composition");
    group.sample_size(10);

    group.bench(
        "gdpr_plus_independent",
        || {
            let env = hotcrp_env(&config(), None);
            let a = env.instance.pc_contact_ids[0];
            env.edna
                .apply("HotCRP-GDPR+", Some(&Value::Int(a)))
                .unwrap();
            env
        },
        |env| {
            let user = env.instance.pc_contact_ids[1];
            env.edna
                .apply("HotCRP-GDPR+", Some(&Value::Int(user)))
                .unwrap()
        },
    );

    group.bench(
        "confanon",
        || hotcrp_env(&config(), None),
        |env| env.edna.apply("HotCRP-ConfAnon", None).unwrap(),
    );

    for (label, optimize) in [
        ("gdpr_plus_after_confanon_naive", false),
        ("gdpr_plus_after_confanon_optimized", true),
    ] {
        group.bench(
            label,
            || {
                let env = hotcrp_env(&config(), None);
                env.edna.apply("HotCRP-ConfAnon", None).unwrap();
                env
            },
            |env| {
                let user = env.instance.pc_contact_ids[1];
                let opts = ApplyOptions {
                    compose: true,
                    optimize,
                    use_transaction: true,
                    ..ApplyOptions::default()
                };
                env.edna
                    .apply_with_options("HotCRP-GDPR+", Some(&Value::Int(user)), opts)
                    .unwrap()
            },
        );
    }
}
