//! Write-scaling bench WS: the commit pipeline under concurrency.
//!
//! Two sections, both against a WAL-attached database whose group-commit
//! pipeline is configured with an **fsync floor** — a lower bound on the
//! wall-clock cost of one batch flush — so the relative price of
//! durability is pinned even on hosts (tmpfs, fast NVMe) where a real
//! fsync is too cheap to measure:
//!
//! 1. **Commit sweep**: N committer threads each run a mixed write
//!    workload (INSERT + UPDATE auto-commit transactions) against one
//!    Lobsters database. Reported per thread count: throughput (txn/s),
//!    p50/p99 per-commit latency, and fsyncs per transaction read from
//!    the `edna_wal_fsyncs_total` counter. With group commit working,
//!    throughput scales with threads while fsyncs/txn falls well below 1
//!    — co-committers share flushes.
//! 2. **apply_many**: disguising a departing cohort (`Lobsters-GDPR`
//!    over `WRITE_SCALING_USERS` users) sequentially vs. through the
//!    owner-sharded `Disguiser::apply_many` pipeline, same latency knob.
//!
//! Results land in `BENCH_write_scaling.json` (override with
//! `WRITE_SCALING_OUT`). Knobs: `WRITE_SCALING_THREADS` (default
//! `1,2,4,8`), `WRITE_SCALING_TXNS` (per-thread transactions, default
//! 200), `WRITE_SCALING_USERS` (cohort size, default 1000),
//! `WRITE_SCALING_SHARDS` (default 16 — oversharding helps single-core
//! hosts keep staging while a flush sleeps),
//! `WRITE_SCALING_FSYNC_FLOOR_US` (default 1000, a conservative
//! barrier-write SSD), and `WRITE_SCALING_GROUP_DELAY_US` (adaptive
//! leader linger, default from `WalGroupConfig`).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use edna_apps::lobsters::{self, generate::LobstersConfig};
use edna_bench::harness::percentile;
use edna_core::{ApplyOptions, Disguiser};
use edna_relational::wal::WalGroupConfig;
use edna_relational::{Database, Value, Wal};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn counter(db: &Database, name: &str) -> u64 {
    db.metrics().counter(name, "").get()
}

/// A unique throwaway WAL path; the file is removed before open and
/// after the measurement so reruns start cold.
fn wal_path(tag: &str) -> PathBuf {
    let pid = std::process::id();
    std::env::temp_dir().join(format!("edna_write_scaling_{pid}_{tag}.wal"))
}

/// Opens a fresh WAL at `path` and attaches it to `db` with the group
/// commit pipeline configured for the sweep.
fn attach_fresh_wal(db: &Database, path: &PathBuf, fsync_floor: Duration) {
    let _ = std::fs::remove_file(path);
    let (wal, _scan) = Wal::open(path).expect("wal opens");
    let defaults = WalGroupConfig::default();
    let max_delay = Duration::from_micros(env_usize(
        "WRITE_SCALING_GROUP_DELAY_US",
        defaults.max_delay.as_micros() as usize,
    ) as u64);
    wal.set_group_commit(WalGroupConfig {
        fsync_floor,
        max_delay,
        ..defaults
    });
    db.attach_wal(Arc::new(wal));
}

/// One measured point of the commit sweep.
struct SweepPoint {
    threads: usize,
    txns: usize,
    wall: Duration,
    throughput: f64,
    p50: Duration,
    p99: Duration,
    fsyncs: u64,
    group_commits: u64,
    frames: u64,
}

/// Runs `threads` committers, each issuing `txns_per_thread` mixed
/// auto-commit write transactions (alternating INSERT and UPDATE) against
/// a fresh WAL-attached Lobsters database.
fn commit_sweep_point(threads: usize, txns_per_thread: usize, fsync_floor: Duration) -> SweepPoint {
    let db = lobsters::create_db().expect("schema installs");
    let inst =
        lobsters::generate::generate(&db, &LobstersConfig::sized(64)).expect("generation succeeds");
    db.execute(
        "CREATE TABLE wal_bench_log (id INT PRIMARY KEY AUTO_INCREMENT, \
         actor INT NOT NULL, note TEXT NOT NULL)",
    )
    .expect("bench table installs");
    let path = wal_path(&format!("sweep{threads}"));
    attach_fresh_wal(&db, &path, fsync_floor);

    // Warm the statement cache and page the WAL path in before the timed
    // section; counters are snapshotted after, so warmup fsyncs don't
    // count.
    for i in 0..32 {
        db.execute(&format!(
            "INSERT INTO wal_bench_log (actor, note) VALUES (0, 'warm-{i}')"
        ))
        .expect("warmup insert");
    }
    db.execute("UPDATE users SET karma = karma + 0 WHERE id = 1")
        .expect("warmup update");

    let fsyncs0 = counter(&db, "edna_wal_fsyncs_total");
    let groups0 = counter(&db, "edna_wal_group_commits_total");
    let frames0 = counter(&db, "edna_wal_frames_total");

    let t0 = Instant::now();
    let per_thread: Vec<Vec<Duration>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = &db;
                let actor = inst.user_ids[t % inst.user_ids.len()];
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(txns_per_thread);
                    for i in 0..txns_per_thread {
                        let c0 = Instant::now();
                        if i % 2 == 0 {
                            db.execute(&format!(
                                "INSERT INTO wal_bench_log (actor, note) \
                                 VALUES ({actor}, 'ws-{t}-{i}')"
                            ))
                            .expect("insert commits");
                        } else {
                            db.execute(&format!(
                                "UPDATE users SET karma = karma + 1 WHERE id = {actor}"
                            ))
                            .expect("update commits");
                        }
                        lat.push(c0.elapsed());
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("committer thread"))
            .collect()
    });
    let wall = t0.elapsed();

    let fsyncs = counter(&db, "edna_wal_fsyncs_total") - fsyncs0;
    let group_commits = counter(&db, "edna_wal_group_commits_total") - groups0;
    let frames = counter(&db, "edna_wal_frames_total") - frames0;
    let _ = std::fs::remove_file(&path);

    let mut all: Vec<Duration> = per_thread.into_iter().flatten().collect();
    all.sort();
    let txns = all.len();
    SweepPoint {
        threads,
        txns,
        wall,
        throughput: txns as f64 / wall.as_secs_f64().max(1e-9),
        p50: percentile(&all, 50.0),
        p99: percentile(&all, 99.0),
        fsyncs,
        group_commits,
        frames,
    }
}

/// One measured variant of the cohort-disguise section.
struct CohortRun {
    wall: Duration,
    fsyncs: u64,
    succeeded: usize,
}

/// Builds a WAL-attached Lobsters environment with `users` users. The
/// WAL attaches *after* generation so population writes don't pay the
/// fsync floor.
fn cohort_env(users: usize, tag: &str, fsync_floor: Duration) -> (Database, Disguiser, Vec<i64>) {
    let db = lobsters::create_db().expect("schema installs");
    let inst = lobsters::generate::generate(&db, &LobstersConfig::sized(users))
        .expect("generation succeeds");
    attach_fresh_wal(&db, &wal_path(tag), fsync_floor);
    let edna = Disguiser::new(db.clone());
    lobsters::register_disguises(&edna).expect("disguise validates");
    (db, edna, inst.user_ids)
}

/// Disguises the whole cohort one user at a time (auto-commit statements,
/// the same transaction mode `apply_many` shards use).
fn cohort_sequential(users: usize, fsync_floor: Duration) -> CohortRun {
    let (db, edna, ids) = cohort_env(users, "seq", fsync_floor);
    let opts = ApplyOptions {
        use_transaction: false,
        ..ApplyOptions::default()
    };
    let fsyncs0 = counter(&db, "edna_wal_fsyncs_total");
    let t0 = Instant::now();
    let mut succeeded = 0;
    for id in &ids {
        edna.apply_with_options("Lobsters-GDPR", Some(&Value::Int(*id)), opts)
            .expect("sequential apply");
        succeeded += 1;
    }
    let wall = t0.elapsed();
    let fsyncs = counter(&db, "edna_wal_fsyncs_total") - fsyncs0;
    let _ = std::fs::remove_file(wal_path("seq"));
    CohortRun {
        wall,
        fsyncs,
        succeeded,
    }
}

/// Disguises the whole cohort through the owner-sharded pipeline.
fn cohort_sharded(users: usize, shards: usize, fsync_floor: Duration) -> CohortRun {
    let (db, edna, ids) = cohort_env(users, "shard", fsync_floor);
    let cohort: Vec<Value> = ids.iter().map(|id| Value::Int(*id)).collect();
    let fsyncs0 = counter(&db, "edna_wal_fsyncs_total");
    let t0 = Instant::now();
    let report = edna
        .apply_many("Lobsters-GDPR", &cohort, shards)
        .expect("apply_many");
    let wall = t0.elapsed();
    assert!(
        report.failures.is_empty(),
        "apply_many failures: {:?}",
        report.failures
    );
    let fsyncs = counter(&db, "edna_wal_fsyncs_total") - fsyncs0;
    let _ = std::fs::remove_file(wal_path("shard"));
    CohortRun {
        wall,
        fsyncs,
        succeeded: report.succeeded,
    }
}

fn json_point(p: &SweepPoint) -> String {
    format!(
        "    {{\"threads\": {}, \"txns\": {}, \"wall_ms\": {:.3}, \
         \"throughput_txn_per_s\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
         \"fsyncs\": {}, \"fsyncs_per_txn\": {:.4}, \"group_commits\": {}, \
         \"frames\": {}, \"frames_per_fsync\": {:.2}}}",
        p.threads,
        p.txns,
        p.wall.as_secs_f64() * 1e3,
        p.throughput,
        p.p50.as_secs_f64() * 1e6,
        p.p99.as_secs_f64() * 1e6,
        p.fsyncs,
        p.fsyncs as f64 / p.txns.max(1) as f64,
        p.group_commits,
        p.frames,
        p.frames as f64 / p.fsyncs.max(1) as f64,
    )
}

fn main() {
    let threads = env_usize_list("WRITE_SCALING_THREADS", &[1, 2, 4, 8]);
    let txns_per_thread = env_usize("WRITE_SCALING_TXNS", 200);
    let cohort_users = env_usize("WRITE_SCALING_USERS", 1000);
    let shards = env_usize("WRITE_SCALING_SHARDS", 16);
    let fsync_floor = Duration::from_micros(env_usize("WRITE_SCALING_FSYNC_FLOOR_US", 1000) as u64);
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("group write_scaling");
    println!(
        "  threads {threads:?}  txns/thread {txns_per_thread}  cohort {cohort_users}  \
         shards {shards}  fsync_floor {}us  host_parallelism {host_parallelism}",
        fsync_floor.as_micros()
    );

    // Section 1: commit sweep.
    let mut points: Vec<SweepPoint> = Vec::new();
    for &t in &threads {
        let p = commit_sweep_point(t, txns_per_thread, fsync_floor);
        println!(
            "  commit_sweep/threads={:<2} {:>9.0} txn/s  p50 {:>8.1} us  p99 {:>8.1} us  \
             fsyncs/txn {:.3}  frames/fsync {:.2}",
            p.threads,
            p.throughput,
            p.p50.as_secs_f64() * 1e6,
            p.p99.as_secs_f64() * 1e6,
            p.fsyncs as f64 / p.txns.max(1) as f64,
            p.frames as f64 / p.fsyncs.max(1) as f64,
        );
        points.push(p);
    }
    let first = &points[0];
    let last = &points[points.len() - 1];
    let scaling = last.throughput / first.throughput.max(1e-9);
    let fsyncs_per_txn_last = last.fsyncs as f64 / last.txns.max(1) as f64;
    println!(
        "  scaling ({}t over {}t): {scaling:.2}x  fsyncs/txn at {}t: {fsyncs_per_txn_last:.3}",
        last.threads, first.threads, last.threads
    );

    // Section 2: cohort disguising, sequential vs owner-sharded.
    let seq = cohort_sequential(cohort_users, fsync_floor);
    let sh = cohort_sharded(cohort_users, shards, fsync_floor);
    assert_eq!(seq.succeeded, cohort_users);
    assert_eq!(sh.succeeded, cohort_users);
    let apply_speedup = seq.wall.as_secs_f64() / sh.wall.as_secs_f64().max(1e-9);
    println!(
        "  apply_many/{cohort_users} users: sequential {:.2}s ({} fsyncs)  \
         sharded({shards}) {:.2}s ({} fsyncs)  speedup {apply_speedup:.2}x",
        seq.wall.as_secs_f64(),
        seq.fsyncs,
        sh.wall.as_secs_f64(),
        sh.fsyncs,
    );

    let out_path = std::env::var("WRITE_SCALING_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_write_scaling.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    let json = format!(
        "{{\n  \"bench\": \"write_scaling\",\n  \"threads\": {threads:?},\n  \
         \"host_parallelism\": {host_parallelism},\n  \
         \"txns_per_thread\": {txns_per_thread},\n  \
         \"samples_per_point\": {},\n  \
         \"fsync_floor_us\": {},\n  \
         \"commit_sweep\": [\n{}\n  ],\n  \
         \"scaling_max_over_min_threads\": {scaling:.3},\n  \
         \"meets_scaling_target\": {},\n  \
         \"fsyncs_per_txn_at_max_threads\": {fsyncs_per_txn_last:.4},\n  \
         \"meets_fsync_target\": {},\n  \
         \"apply_many\": {{\"users\": {cohort_users}, \"shards\": {shards}, \
         \"sequential_s\": {:.3}, \"sharded_s\": {:.3}, \"speedup\": {apply_speedup:.3}, \
         \"sequential_fsyncs\": {}, \"sharded_fsyncs\": {}, \
         \"meets_apply_target\": {}}}\n}}\n",
        first.txns,
        fsync_floor.as_micros(),
        points
            .iter()
            .map(json_point)
            .collect::<Vec<_>>()
            .join(",\n"),
        scaling >= 2.5,
        fsyncs_per_txn_last < 0.5,
        seq.wall.as_secs_f64(),
        sh.wall.as_secs_f64(),
        seq.fsyncs,
        sh.fsyncs,
        apply_speedup >= 2.0,
    );
    std::fs::write(&out_path, json).expect("write BENCH_write_scaling.json");
    println!("  wrote {out_path}");
}
