//! Ablation ABL-VAULT: the cost of `HotCRP-GDPR+` under the vault
//! deployment models of paper §4.2 — application-adjacent plaintext,
//! encrypted per-user, offline (file-backed), and remote third-party.

use std::time::Duration;

use edna_apps::hotcrp::{self, generate::HotCrpConfig};
use edna_bench::harness::BenchGroup;
use edna_core::Disguiser;
use edna_relational::Value;
use edna_vault::{FileStore, MemoryStore, ThirdPartyStore, TieredVault, Vault};

fn build_env(vaults: TieredVault) -> (Disguiser, i64) {
    let db = hotcrp::create_db().unwrap();
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::scaled(0.1)).unwrap();
    let edna = Disguiser::with_vaults(db, vaults);
    hotcrp::register_disguises(&edna).unwrap();
    (edna, inst.pc_contact_ids[0])
}

fn plain_memory() -> TieredVault {
    TieredVault::new(
        Vault::plain(MemoryStore::new()),
        Vault::plain(MemoryStore::new()),
    )
}

fn encrypted_memory() -> TieredVault {
    TieredVault::new(
        Vault::plain(MemoryStore::new()),
        Vault::encrypted(MemoryStore::new(), 1),
    )
}

fn file_backed() -> TieredVault {
    let dir = std::env::temp_dir().join(format!(
        "edna_bench_vault_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0)
    ));
    TieredVault::new(
        Vault::plain(MemoryStore::new()),
        Vault::plain(FileStore::open(dir).unwrap()),
    )
}

fn third_party() -> TieredVault {
    TieredVault::new(
        Vault::plain(MemoryStore::new()),
        Vault::encrypted(
            ThirdPartyStore::new(MemoryStore::new(), Duration::from_millis(5)),
            2,
        ),
    )
}

type VaultFactory = fn() -> TieredVault;

fn main() {
    let mut group = BenchGroup::new("vault_backends");
    group.sample_size(10);
    let cases: Vec<(&str, VaultFactory)> = vec![
        ("plain_memory", plain_memory),
        ("encrypted_memory", encrypted_memory),
        ("file_backed", file_backed),
        ("third_party_5ms", third_party),
    ];
    for (label, make) in cases {
        group.bench(
            label,
            || build_env(make()),
            |(edna, user)| edna.apply("HotCRP-GDPR+", Some(&Value::Int(user))).unwrap(),
        );
    }
}
