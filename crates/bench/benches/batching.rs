//! Ablation ABL-BATCH: the performance levers paper §6 names — "batching,
//! parallelization, and asynchronous application could improve
//! performance". Compares disguising several users sequentially (one big
//! transaction each) against parallel auto-commit application, under a
//! MySQL-like injected latency where overlap pays off.

use std::time::Duration;

use edna_apps::hotcrp::generate::HotCrpConfig;
use edna_bench::harness::BenchGroup;
use edna_bench::{apply_many, hotcrp_env};
use edna_relational::LatencyModel;

const USERS: usize = 4;

fn latency() -> LatencyModel {
    LatencyModel {
        per_statement: Duration::from_micros(200),
        per_row_written: Duration::ZERO,
    }
}

fn main() {
    let mut group = BenchGroup::new("batching");
    group.sample_size(10);
    for (label, parallel) in [("sequential_txn", false), ("parallel_autocommit", true)] {
        group.bench(
            label,
            || hotcrp_env(&HotCrpConfig::scaled(0.05), Some(latency())),
            |env| {
                let users: Vec<i64> = env.instance.pc_contact_ids[..USERS].to_vec();
                apply_many(&env, &users, parallel)
            },
        );
    }
}
