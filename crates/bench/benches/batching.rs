//! Ablation ABL-BATCH: the performance levers paper §6 names — "batching,
//! parallelization, and asynchronous application could improve
//! performance". Two regimes:
//!
//! 1. **Latency regime** (timed): disguising several users sequentially
//!    (one big transaction each) vs. parallel auto-commit application,
//!    under a MySQL-like injected per-statement latency where both
//!    batching (fewer statements) and overlap (readers in parallel with
//!    the writer) pay off.
//! 2. **No-latency regime** (counted): a single `HotCRP-GDPR+` apply with
//!    statement/row counters from `DisguiseReport.stats`, demonstrating
//!    that batched transforms issue far fewer statements than rows they
//!    write, and that a second apply of the same spec hits the statement
//!    cache.
//!
//! Results land in `BENCH_batching.json` (override with `BATCHING_OUT`).
//! Knobs: `BATCHING_SCALE` (default 0.05), `BATCHING_USERS` (default 4),
//! `BATCHING_SAMPLES` (default 10).

use std::time::Duration;

use edna_apps::hotcrp::generate::HotCrpConfig;
use edna_bench::harness::{BenchGroup, CaseSummary};
use edna_bench::{apply_many, hotcrp_env};
use edna_relational::{LatencyModel, Value};

const LATENCY_PER_STATEMENT_US: u64 = 200;

fn latency() -> LatencyModel {
    LatencyModel {
        per_statement: Duration::from_micros(LATENCY_PER_STATEMENT_US),
        per_row_written: Duration::ZERO,
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Statement/row counters from one no-latency `HotCRP-GDPR+` apply.
struct ApplyCounts {
    label: String,
    statements: u64,
    rows_written: u64,
    objects: usize,
    stmt_cache_hits: u64,
    stmt_cache_misses: u64,
}

/// Applies `HotCRP-GDPR+` to two users of a fresh no-latency instance and
/// returns per-apply counters plus the engine's metrics-registry snapshot
/// (JSON exposition) after both applies. The second apply reuses every SQL
/// shape the first parsed, so its `stmt_cache_hits` must be nonzero.
fn no_latency_counts(scale: f64) -> (Vec<ApplyCounts>, String) {
    let env = hotcrp_env(&HotCrpConfig::scaled(scale), None);
    let mut out = Vec::new();
    for (label, user) in [
        ("first_apply", env.instance.pc_contact_ids[0]),
        ("second_apply", env.instance.pc_contact_ids[1]),
    ] {
        let report = env
            .edna
            .apply("HotCRP-GDPR+", Some(&Value::Int(user)))
            .expect("GDPR+ applies");
        out.push(ApplyCounts {
            label: label.to_string(),
            statements: report.stats.statements,
            rows_written: report.stats.rows_written,
            objects: report.rows_removed + report.rows_decorrelated + report.rows_modified,
            stmt_cache_hits: report.stats.stmt_cache_hits,
            stmt_cache_misses: report.stats.stmt_cache_misses,
        });
    }
    let metrics = env.edna.database().metrics().render_json();
    (out, metrics)
}

fn json_case(s: &CaseSummary) -> String {
    format!(
        "    {{\"label\": \"{}\", \"min_ms\": {:.3}, \"median_ms\": {:.3}, \
         \"mean_ms\": {:.3}, \"p99_ms\": {:.3}, \"samples\": {}}}",
        s.label,
        s.min.as_secs_f64() * 1e3,
        s.median.as_secs_f64() * 1e3,
        s.mean.as_secs_f64() * 1e3,
        s.p99.as_secs_f64() * 1e3,
        s.samples
    )
}

fn json_counts(c: &ApplyCounts) -> String {
    format!(
        "    {{\"label\": \"{}\", \"statements\": {}, \"rows_written\": {}, \
         \"objects\": {}, \"stmt_cache_hits\": {}, \"stmt_cache_misses\": {}}}",
        c.label, c.statements, c.rows_written, c.objects, c.stmt_cache_hits, c.stmt_cache_misses
    )
}

fn main() {
    let scale = env_f64("BATCHING_SCALE", 0.05);
    let users = env_usize("BATCHING_USERS", 4);
    let samples = env_usize("BATCHING_SAMPLES", 10);

    // Regime 1: wall-clock under injected latency.
    let mut group = BenchGroup::new("batching");
    group.sample_size(samples);
    let mut cases: Vec<CaseSummary> = Vec::new();
    for (label, parallel) in [("sequential_txn", false), ("parallel_autocommit", true)] {
        cases.push(group.bench(
            label,
            || hotcrp_env(&HotCrpConfig::scaled(scale), Some(latency())),
            |env| {
                let ids: Vec<i64> = env.instance.pc_contact_ids[..users].to_vec();
                apply_many(&env, &ids, parallel)
            },
        ));
    }
    let speedup = cases[0].median.as_secs_f64() / cases[1].median.as_secs_f64().max(1e-9);
    println!("  speedup (sequential/parallel median): {speedup:.2}x");

    // Regime 2: statement counts without latency.
    let (counts, metrics) = no_latency_counts(scale);
    for c in &counts {
        println!(
            "  stats/{:<14} statements {:>5}  rows_written {:>5}  objects {:>5}  \
             stmt_cache {}h/{}m",
            c.label,
            c.statements,
            c.rows_written,
            c.objects,
            c.stmt_cache_hits,
            c.stmt_cache_misses
        );
    }

    let out_path = std::env::var("BATCHING_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_batching.json", env!("CARGO_MANIFEST_DIR")));
    // The parallel regime runs one worker thread per disguised user.
    let threads = users;
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"batching\",\n  \"scale\": {scale},\n  \"users\": {users},\n  \
         \"threads\": {threads},\n  \"host_parallelism\": {host_parallelism},\n  \
         \"samples\": {samples},\n  \"latency_per_statement_us\": {LATENCY_PER_STATEMENT_US},\n  \
         \"cases\": [\n{}\n  ],\n  \"no_latency\": [\n{}\n  ],\n  \
         \"metrics\": {metrics},\n  \
         \"speedup_sequential_over_parallel\": {speedup:.3},\n  \
         \"parallel_beats_sequential\": {}\n}}\n",
        cases.iter().map(json_case).collect::<Vec<_>>().join(",\n"),
        counts
            .iter()
            .map(json_counts)
            .collect::<Vec<_>>()
            .join(",\n"),
        cases[1].median < cases[0].median
    );
    std::fs::write(&out_path, json).expect("write BENCH_batching.json");
    println!("  wrote {out_path}");
}
