//! Bench for the §6 linear-scaling claim (SEC6-LINEAR).
//!
//! Applies `HotCRP-GDPR+` at increasing database scales; time should scale
//! linearly with the number of disguised objects.

use edna_apps::hotcrp::generate::HotCrpConfig;
use edna_bench::harness::BenchGroup;
use edna_bench::hotcrp_env;
use edna_relational::Value;

fn main() {
    let mut group = BenchGroup::new("sec6_scaling");
    group.sample_size(10);
    for factor in [0.05_f64, 0.1, 0.2, 0.4] {
        group.bench(
            &format!("{factor:.2}x"),
            || hotcrp_env(&HotCrpConfig::scaled(factor), None),
            |env| {
                let user = env.instance.pc_contact_ids[0];
                env.edna
                    .apply("HotCRP-GDPR+", Some(&Value::Int(user)))
                    .unwrap()
            },
        );
    }
}
