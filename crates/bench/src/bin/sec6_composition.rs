//! Regenerates the paper's **§6 performance experiment**: the cost of
//! disguise composition on a HotCRP database with 430 users (30 PC),
//! 450 papers, and 1400 reviews.
//!
//! Usage: `sec6_composition [--no-latency] [--scale F]`
//!
//! By default a 1 ms/statement synthetic latency approximates the
//! prototype's MySQL backend (no server is available here), putting the
//! absolute numbers in the paper's regime; `--no-latency` reports raw
//! in-process times (ratios still hold).

use edna_apps::hotcrp::generate::HotCrpConfig;
use edna_bench::{format_table, paper_latency, sec6_composition};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let latency = if args.iter().any(|a| a == "--no-latency") {
        None
    } else {
        Some(paper_latency())
    };
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let config = if (scale - 1.0).abs() < 1e-9 {
        HotCrpConfig::paper()
    } else {
        HotCrpConfig::scaled(scale)
    };

    println!(
        "Section 6 composition experiment (HotCRP: {} users, {} PC, {} papers, {} reviews; \
         latency model: {})",
        config.users,
        config.pc_members,
        config.papers,
        config.reviews,
        if latency.is_some() {
            "1 ms/statement (MySQL-like)"
        } else {
            "none (in-process)"
        }
    );
    println!();
    let rows = sec6_composition(&config, latency);
    print!("{}", format_table(&rows));
    println!();
    let independent = rows[0].measured_ms;
    let naive = rows[1].measured_ms;
    let confanon = rows[2].measured_ms;
    let optimized = rows[3].measured_ms;
    println!("Shape checks (paper: 452/135 = 3.3x, 7000/135 = 52x, 118 ~= 135):");
    println!(
        "  naive composed / independent     = {:.2}x",
        naive / independent
    );
    println!(
        "  ConfAnon / independent           = {:.2}x",
        confanon / independent
    );
    println!(
        "  optimized composed / independent = {:.2}x",
        optimized / independent
    );
}
