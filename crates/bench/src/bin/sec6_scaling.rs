//! Regenerates the paper's **§6 scaling observation**: "the number of
//! queries performed by Edna to fetch and update the relevant
//! to-be-disguised objects grows linearly with the number of objects."
//!
//! Usage: `sec6_scaling [--latency] [factors...]` (defaults 0.25 0.5 1 2 4)

use edna_bench::{paper_latency, sec6_scaling};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let latency = if args.iter().any(|a| a == "--latency") {
        Some(paper_latency())
    } else {
        None
    };
    let mut factors: Vec<f64> = args.iter().filter_map(|a| a.parse::<f64>().ok()).collect();
    if factors.is_empty() {
        factors = vec![0.25, 0.5, 1.0, 2.0, 4.0];
    }

    println!("Section 6 scaling: HotCRP-GDPR+ for one PC member vs. database scale");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "scale", "objects", "statements", "rows", "rows/object", "measured(ms)"
    );
    let points = sec6_scaling(&factors, latency);
    for p in &points {
        println!(
            "{:>8.2} {:>10} {:>12} {:>12} {:>14.2} {:>14.2}",
            p.factor,
            p.objects,
            p.statements,
            p.rows_written,
            p.rows_written as f64 / p.objects.max(1) as f64,
            p.measured_ms
        );
    }
    println!();
    println!(
        "Claim check: rows-written/object stays near-constant (work is linear \
         in the number of disguised objects), while batching keeps the \
         statement count growing sublinearly."
    );
}
