//! Extension measurement: vault storage overhead.
//!
//! The paper stores reveal functions "generated ... using the original and
//! updated states of objects touched by a reversible disguise" (§5) but
//! does not quantify their size. This binary measures bytes-at-rest per
//! disguised object for the two HotCRP disguises, plaintext vs. encrypted
//! vaults, at the paper's database size.

use edna_apps::hotcrp::{self, generate::HotCrpConfig};
use edna_core::Disguiser;
use edna_relational::Value;
use edna_vault::{MemoryStore, TieredVault, Vault};

fn run(encrypted: bool) {
    let db = hotcrp::create_db().expect("schema");
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::paper()).expect("generate");
    let vaults = if encrypted {
        TieredVault::new(
            Vault::encrypted(MemoryStore::new(), 1),
            Vault::encrypted(MemoryStore::new(), 2),
        )
    } else {
        TieredVault::new(
            Vault::plain(MemoryStore::new()),
            Vault::plain(MemoryStore::new()),
        )
    };
    let edna = Disguiser::with_vaults(db, vaults);
    hotcrp::register_disguises(&edna).expect("register");

    let user = inst.pc_contact_ids[0];
    let gdpr = edna
        .apply("HotCRP-GDPR+", Some(&Value::Int(user)))
        .expect("GDPR+");
    let after_gdpr = edna.vaults().storage_bytes().expect("bytes");
    let anon = edna.apply("HotCRP-ConfAnon", None).expect("ConfAnon");
    let total = edna.vaults().storage_bytes().expect("bytes");
    let anon_bytes = total - after_gdpr;

    let gdpr_objects = gdpr.rows_removed + gdpr.rows_decorrelated + gdpr.rows_modified;
    let anon_objects = anon.rows_removed + anon.rows_decorrelated + anon.rows_modified;
    let label = if encrypted { "encrypted" } else { "plaintext" };
    println!(
        "{label:<10} HotCRP-GDPR+    {after_gdpr:>9} B for {gdpr_objects:>5} objects \
         ({:>6.1} B/object)",
        after_gdpr as f64 / gdpr_objects.max(1) as f64
    );
    println!(
        "{label:<10} HotCRP-ConfAnon {anon_bytes:>9} B for {anon_objects:>5} objects \
         ({:>6.1} B/object)",
        anon_bytes as f64 / anon_objects.max(1) as f64
    );
}

fn main() {
    println!("Vault storage overhead (paper-size HotCRP: 430 users, 1400 reviews)\n");
    run(false);
    run(true);
    println!(
        "\nEncryption overhead per entry is the seal framing (12 B nonce + 32 B tag); \
         reveal functions cost on the order of 100 B per disguised object."
    );
}
