//! Regenerates the paper's **Figure 4**: disguise specifications have
//! complexity comparable to relational schemas.
//!
//! Prints one row per case-study disguise with the number of object types,
//! schema LoC, and disguise-spec LoC, next to the paper's reported values.

use edna_apps::loc::{disguise_loc, object_types, sql_loc};
use edna_apps::{hotcrp, lobsters};

fn main() {
    // (name, schema, disguise text, paper's (#types, schema LoC, disguise LoC)).
    let rows = [
        (
            "Lobsters-GDPR",
            lobsters::SCHEMA_SQL,
            lobsters::GDPR_DSL,
            (19, 318, 100),
        ),
        (
            "HotCRP-GDPR",
            hotcrp::SCHEMA_SQL,
            hotcrp::GDPR_DSL,
            (25, 352, 142),
        ),
        (
            "HotCRP-GDPR+",
            hotcrp::SCHEMA_SQL,
            hotcrp::GDPR_PLUS_DSL,
            (25, 352, 255),
        ),
        (
            "HotCRP-ConfAnon",
            hotcrp::SCHEMA_SQL,
            hotcrp::CONFANON_DSL,
            (25, 352, 232),
        ),
    ];
    println!("Figure 4: disguise specification complexity vs. schema complexity");
    println!(
        "{:<18} {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "disguise",
        "#obj types",
        "schema LoC",
        "spec LoC",
        "paper #obj",
        "paper schema",
        "paper spec"
    );
    for (name, schema, dsl, (p_types, p_schema, p_spec)) in rows {
        println!(
            "{:<18} {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
            name,
            object_types(schema),
            sql_loc(schema),
            disguise_loc(dsl),
            p_types,
            p_schema,
            p_spec
        );
    }
    println!();
    println!(
        "Claim check: every disguise spec is the same order of magnitude as (and \
         smaller than) its application schema."
    );
}
