//! A minimal benchmark harness (criterion replacement, offline-friendly).
//!
//! Each case runs `setup` once per sample (untimed) and times `routine`
//! over the sample count, reporting min / median / mean wall-clock. The
//! statistics are intentionally simple: the binaries under `src/bin/`
//! remain the source of the paper-table numbers; these benches exist to
//! catch gross regressions and to exercise the same code paths.

use std::time::{Duration, Instant};

/// Default samples per case (small: whole-disguise benches are heavy).
pub const DEFAULT_SAMPLES: usize = 10;

/// A named group of benchmark cases with a shared sample count.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

/// Summary statistics for one benchmark case, as printed by
/// [`BenchGroup::bench`]. Returned so callers (e.g. `benches/batching.rs`)
/// can emit machine-readable results next to the human-readable line.
#[derive(Debug, Clone)]
pub struct CaseSummary {
    /// `group/label` identifier.
    pub label: String,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Arithmetic mean of all samples.
    pub mean: Duration,
    /// 99th-percentile sample (nearest-rank; equals the max below 100
    /// samples — still useful as a worst-observed bound).
    pub p99: Duration,
    /// Number of samples taken.
    pub samples: usize,
}

/// Nearest-rank percentile over a **sorted** slice of durations. `pct` is
/// in `[0, 100]`; an empty slice returns zero.
pub fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl BenchGroup {
    /// Creates a group; prints a header.
    pub fn new(name: &str) -> BenchGroup {
        println!("group {name}");
        BenchGroup {
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Overrides the per-case sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one case: `setup` produces fresh state per sample (untimed),
    /// `routine` consumes it (timed). Prints a stats line and returns the
    /// summary so callers can persist it.
    pub fn bench<S, T>(
        &mut self,
        label: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) -> CaseSummary {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let state = setup();
            let t0 = Instant::now();
            let out = routine(state);
            times.push(t0.elapsed());
            drop(out);
        }
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let p99 = percentile(&times, 99.0);
        println!(
            "  {}/{label:<38} min {:>9.3} ms  median {:>9.3} ms  mean {:>9.3} ms  p99 {:>9.3} ms  (n={})",
            self.name,
            min.as_secs_f64() * 1e3,
            median.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3,
            times.len(),
        );
        CaseSummary {
            label: format!("{}/{label}", self.name),
            min,
            median,
            mean,
            p99,
            samples: times.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_setup_per_sample_and_times_routine() {
        let mut setups = 0;
        let mut runs = 0;
        let mut g = BenchGroup::new("t");
        g.sample_size(3).bench(
            "case",
            || {
                setups += 1;
            },
            |()| {
                runs += 1;
            },
        );
        assert_eq!(setups, 3);
        assert_eq!(runs, 3);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 50.0), ms(50));
        assert_eq!(percentile(&sorted, 99.0), ms(99));
        assert_eq!(percentile(&sorted, 100.0), ms(100));
        assert_eq!(percentile(&sorted[..4], 99.0), ms(4));
        assert_eq!(percentile(&[], 99.0), Duration::ZERO);
    }

    #[test]
    fn case_summary_p99_bounds_median() {
        let mut g = BenchGroup::new("t");
        let s = g.sample_size(5).bench("case", || (), |()| ());
        assert_eq!(s.samples, 5);
        assert!(s.p99 >= s.median);
        assert!(s.p99 >= s.min);
    }
}
