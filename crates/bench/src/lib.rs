//! `edna-bench`: the benchmark harness regenerating every table and figure
//! of the paper's evaluation (see `DESIGN.md` §3 for the experiment index).
//!
//! Binaries print the paper's tables; the benches under `benches/`
//! (plain `harness = false` binaries on the in-repo [`harness`]) measure
//! the same operations statistically. Shared setup and measurement live
//! here so binaries, benches, and tests agree on methodology.

#![warn(missing_docs)]

pub mod harness;

use std::time::Duration;

use edna_apps::hotcrp::{self, generate::HotCrpConfig};
use edna_core::{ApplyOptions, DisguiseReport, Disguiser};
use edna_relational::{Database, LatencyModel, Value};

/// The synthetic latency model used when reproducing the paper's
/// *absolute* numbers: 1 ms per statement, approximating the prototype's
/// MySQL round trips. In-process numbers (no latency) are also reported;
/// ratios are meaningful in both regimes.
pub fn paper_latency() -> LatencyModel {
    LatencyModel {
        per_statement: Duration::from_millis(1),
        per_row_written: Duration::ZERO,
    }
}

/// A prepared HotCRP environment: database, disguiser, and principals.
pub struct HotCrpEnv {
    /// The populated database.
    pub db: Database,
    /// Disguiser with the three HotCRP disguises registered.
    pub edna: Disguiser,
    /// Generated instance (contact/paper/review ids).
    pub instance: hotcrp::generate::HotCrpInstance,
}

/// Builds a HotCRP environment at the given config. Latency (if any) is
/// enabled only *after* data generation so setup stays fast.
pub fn hotcrp_env(config: &HotCrpConfig, latency: Option<LatencyModel>) -> HotCrpEnv {
    let db = hotcrp::create_db().expect("schema installs");
    let instance = hotcrp::generate::generate(&db, config).expect("generation succeeds");
    let edna = Disguiser::new(db.clone());
    hotcrp::register_disguises(&edna).expect("disguises validate");
    if let Some(model) = latency {
        db.set_latency(model);
    }
    HotCrpEnv { db, edna, instance }
}

/// One measured row of the §6 composition experiment.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Human-readable label (matches the paper's prose).
    pub label: String,
    /// The paper's reported number for this row, if any (ms).
    pub paper_ms: Option<f64>,
    /// Measured wall-clock (ms).
    pub measured_ms: f64,
    /// Engine statements issued.
    pub statements: u64,
    /// Rows written.
    pub rows_written: u64,
}

impl Measurement {
    fn from_report(label: &str, paper_ms: Option<f64>, report: &DisguiseReport) -> Measurement {
        Measurement {
            label: label.to_string(),
            paper_ms,
            measured_ms: report.duration.as_secs_f64() * 1e3,
            statements: report.stats.statements,
            rows_written: report.stats.rows_written,
        }
    }
}

/// Runs the §6 composition experiment at `config`, returning the four rows
/// in the paper's order:
///
/// 1. `HotCRP-GDPR+` after an independent `HotCRP-GDPR+` (paper: 135 ms),
/// 2. `HotCRP-GDPR+` after `HotCRP-ConfAnon`, naive (paper: 452 ms),
/// 3. `HotCRP-ConfAnon` itself (paper: ~7000 ms),
/// 4. `HotCRP-GDPR+` after `HotCRP-ConfAnon`, optimized (paper: 118 ms).
pub fn sec6_composition(config: &HotCrpConfig, latency: Option<LatencyModel>) -> Vec<Measurement> {
    let mut out = Vec::new();

    // Row 1: independent GDPR+ after GDPR+.
    {
        let env = hotcrp_env(config, latency);
        let a = env.instance.pc_contact_ids[0];
        let b = env.instance.pc_contact_ids[1];
        env.edna
            .apply("HotCRP-GDPR+", Some(&Value::Int(a)))
            .expect("first GDPR+");
        let report = env
            .edna
            .apply("HotCRP-GDPR+", Some(&Value::Int(b)))
            .expect("second GDPR+");
        out.push(Measurement::from_report(
            "GDPR+ after independent GDPR+",
            Some(135.0),
            &report,
        ));
    }

    // Rows 2 and 3: ConfAnon, then naive GDPR+ on top.
    {
        let env = hotcrp_env(config, latency);
        let b = env.instance.pc_contact_ids[1];
        let anon = env.edna.apply("HotCRP-ConfAnon", None).expect("ConfAnon");
        let naive = ApplyOptions {
            compose: true,
            optimize: false,
            use_transaction: true,
            ..ApplyOptions::default()
        };
        let report = env
            .edna
            .apply_with_options("HotCRP-GDPR+", Some(&Value::Int(b)), naive)
            .expect("naive composed GDPR+");
        out.push(Measurement::from_report(
            "GDPR+ after ConfAnon (naive)",
            Some(452.0),
            &report,
        ));
        out.push(Measurement::from_report(
            "ConfAnon itself",
            Some(7000.0),
            &anon,
        ));
    }

    // Row 4: optimized GDPR+ after ConfAnon.
    {
        let env = hotcrp_env(config, latency);
        let b = env.instance.pc_contact_ids[1];
        env.edna.apply("HotCRP-ConfAnon", None).expect("ConfAnon");
        let optimized = ApplyOptions {
            compose: true,
            optimize: true,
            use_transaction: true,
            ..ApplyOptions::default()
        };
        let report = env
            .edna
            .apply_with_options("HotCRP-GDPR+", Some(&Value::Int(b)), optimized)
            .expect("optimized composed GDPR+");
        out.push(Measurement::from_report(
            "GDPR+ after ConfAnon (optimized)",
            Some(118.0),
            &report,
        ));
    }
    out
}

/// One row of the §6 scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Scale factor relative to the paper's instance.
    pub factor: f64,
    /// Objects the disguise touched (removed + decorrelated + modified).
    pub objects: usize,
    /// Statements issued by the disguise.
    pub statements: u64,
    /// Rows physically written by the disguise.
    pub rows_written: u64,
    /// Wall-clock milliseconds.
    pub measured_ms: f64,
}

/// Measures `HotCRP-GDPR+` for one PC member across *workload* scale
/// factors (papers and reviews scaled, population fixed), demonstrating
/// the paper's "number of queries ... grows linearly with the number of
/// objects".
pub fn sec6_scaling(factors: &[f64], latency: Option<LatencyModel>) -> Vec<ScalingPoint> {
    factors
        .iter()
        .map(|&factor| {
            let config = HotCrpConfig::scaled_workload(factor);
            let env = hotcrp_env(&config, latency);
            let user = env.instance.pc_contact_ids[0];
            let report = env
                .edna
                .apply("HotCRP-GDPR+", Some(&Value::Int(user)))
                .expect("GDPR+");
            ScalingPoint {
                factor,
                objects: report.rows_removed + report.rows_decorrelated + report.rows_modified,
                statements: report.stats.statements,
                rows_written: report.stats.rows_written,
                measured_ms: report.duration.as_secs_f64() * 1e3,
            }
        })
        .collect()
}

/// Applies `HotCRP-GDPR+` to `users.len()` distinct users, sequentially or
/// in parallel (scoped threads, auto-commit mode), returning the total
/// wall-clock time. The paper (§6) names "batching, parallelization,
/// and asynchronous application" as the levers for reducing disguise cost.
pub fn apply_many(env: &HotCrpEnv, users: &[i64], parallel: bool) -> Duration {
    let opts = ApplyOptions {
        compose: true,
        optimize: true,
        // Parallel workers cannot share one explicit transaction.
        use_transaction: !parallel,
        ..ApplyOptions::default()
    };
    let start = std::time::Instant::now();
    if parallel {
        std::thread::scope(|s| {
            for &user in users {
                let edna = &env.edna;
                s.spawn(move || {
                    edna.apply_with_options("HotCRP-GDPR+", Some(&Value::Int(user)), opts)
                        .expect("parallel GDPR+");
                });
            }
        });
    } else {
        for &user in users {
            env.edna
                .apply_with_options("HotCRP-GDPR+", Some(&Value::Int(user)), opts)
                .expect("sequential GDPR+");
        }
    }
    start.elapsed()
}

/// Renders measurements as an aligned text table.
pub fn format_table(rows: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:>10} {:>12} {:>12} {:>10}\n",
        "experiment", "paper(ms)", "measured(ms)", "statements", "rows"
    ));
    for m in rows {
        out.push_str(&format!(
            "{:<36} {:>10} {:>12.1} {:>12} {:>10}\n",
            m.label,
            m.paper_ms
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".to_string()),
            m.measured_ms,
            m.statements,
            m.rows_written
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_rows_have_the_papers_shape() {
        // Small instance, no latency: check orderings, not absolutes.
        // Batched application collapses per-row UPDATEs into one statement
        // per transform, so the work proxy here is *rows written* (physical
        // writes stay proportional to disguised objects), not statements.
        let config = HotCrpConfig::small();
        let rows = sec6_composition(&config, None);
        assert_eq!(rows.len(), 4);
        let independent = rows[0].rows_written;
        let naive = rows[1].rows_written;
        let confanon = rows[2].rows_written;
        let optimized = rows[3].rows_written;
        // At the tiny test scale each of the 8 PC members owns 1/8 of the
        // reviews, so the global/per-user gap is ~4x; at paper scale
        // (30 PC) it approaches the paper's ~50x.
        assert!(
            confanon > 3 * independent,
            "ConfAnon ({confanon} rows) must dwarf a single-user disguise ({independent} rows)"
        );
        assert!(
            naive > optimized,
            "naive composition ({naive} rows) must cost more than optimized ({optimized} rows)"
        );
        assert!(
            optimized <= independent + independent / 2,
            "optimized composed cost ({optimized} rows) should approach the independent cost \
             ({independent} rows)"
        );
    }

    #[test]
    fn scaling_is_linear_in_objects() {
        let points = sec6_scaling(&[0.05, 0.1, 0.2], None);
        assert_eq!(points.len(), 3);
        // Rows written per object stays roughly constant (statements no
        // longer do: batching issues one UPDATE per transform, not per row).
        let per_object: Vec<f64> = points
            .iter()
            .map(|p| p.rows_written as f64 / p.objects.max(1) as f64)
            .collect();
        let min = per_object.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_object.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min < 2.0,
            "rows-written-per-object should be near-constant, got {per_object:?}"
        );
        // Batching's whole point: statement count grows much slower than
        // object count. 4x the objects must cost well under 4x statements.
        let small = &points[0];
        let large = &points[2];
        assert!(large.objects > small.objects, "workload must actually grow");
        let stmt_growth = large.statements as f64 / small.statements.max(1) as f64;
        let object_growth = large.objects as f64 / small.objects.max(1) as f64;
        assert!(
            stmt_growth < object_growth,
            "batched statements ({stmt_growth:.2}x) should grow slower than objects \
             ({object_growth:.2}x)"
        );
    }

    #[test]
    fn parallel_apply_overlaps_injected_latency() {
        let config = HotCrpConfig::small();
        let model = LatencyModel {
            per_statement: Duration::from_micros(300),
            per_row_written: Duration::ZERO,
        };
        let seq_env = hotcrp_env(&config, Some(model));
        let users: Vec<i64> = seq_env.instance.pc_contact_ids[..4].to_vec();
        let seq = apply_many(&seq_env, &users, false);
        let par_env = hotcrp_env(&config, Some(model));
        let users2: Vec<i64> = par_env.instance.pc_contact_ids[..4].to_vec();
        let par = apply_many(&par_env, &users2, true);
        assert!(
            par < seq,
            "parallel ({par:?}) should beat sequential ({seq:?}) under injected latency"
        );
    }

    #[test]
    fn table_formatting() {
        let rows = vec![Measurement {
            label: "x".to_string(),
            paper_ms: Some(135.0),
            measured_ms: 12.5,
            statements: 42,
            rows_written: 7,
        }];
        let s = format_table(&rows);
        assert!(s.contains("135"));
        assert!(s.contains("12.5"));
    }
}

#[cfg(test)]
mod paper_scale_tests {
    use super::*;

    /// The full §6 sequence at the paper's exact database size. Slow in
    /// debug builds, so ignored by default; run with
    /// `cargo test -p edna-bench --release -- --ignored`.
    #[test]
    #[ignore = "paper-scale smoke test; run with --release -- --ignored"]
    fn composition_shape_at_paper_scale() {
        let rows = sec6_composition(&HotCrpConfig::paper(), None);
        let independent = rows[0].rows_written as f64;
        let naive = rows[1].rows_written as f64;
        let confanon = rows[2].rows_written as f64;
        let optimized = rows[3].rows_written as f64;
        assert!(
            confanon / independent > 10.0,
            "ConfAnon dwarfs per-user disguises"
        );
        assert!(naive / independent > 1.5, "naive composition costs extra");
        assert!(
            optimized < independent,
            "optimized composition beats independent"
        );
    }
}
