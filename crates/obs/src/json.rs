//! Minimal JSON support shared by the exposition formats.
//!
//! The workspace has no external dependencies, so the small amount of JSON
//! we emit (metrics exposition, trace export) and read back (`edna trace`,
//! CI smoke validation) is handled here. The parser accepts general JSON;
//! numbers are kept as `f64`, which is exact for every value we emit
//! (span ids and microsecond timestamps stay far below 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as the body of a JSON string literal (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted for deterministic inspection.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Returns the object map if this value is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the array elements if this value is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the number if this value is numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Returns `None` on any syntax error or
/// trailing garbage.
pub fn parse(input: &str) -> Option<Json> {
    let bytes: Vec<char> = input.chars().collect();
    let mut pos = 0;
    let value = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos == bytes.len() {
        Some(value)
    } else {
        None
    }
}

fn skip_ws(s: &[char], pos: &mut usize) {
    while *pos < s.len() && matches!(s[*pos], ' ' | '\t' | '\n' | '\r') {
        *pos += 1;
    }
}

fn parse_value(s: &[char], pos: &mut usize) -> Option<Json> {
    skip_ws(s, pos);
    match s.get(*pos)? {
        '{' => parse_object(s, pos),
        '[' => parse_array(s, pos),
        '"' => parse_string(s, pos).map(Json::Str),
        't' => parse_lit(s, pos, "true", Json::Bool(true)),
        'f' => parse_lit(s, pos, "false", Json::Bool(false)),
        'n' => parse_lit(s, pos, "null", Json::Null),
        _ => parse_number(s, pos),
    }
}

fn parse_lit(s: &[char], pos: &mut usize, lit: &str, value: Json) -> Option<Json> {
    for c in lit.chars() {
        if s.get(*pos) != Some(&c) {
            return None;
        }
        *pos += 1;
    }
    Some(value)
}

fn parse_number(s: &[char], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if s.get(*pos) == Some(&'-') {
        *pos += 1;
    }
    while *pos < s.len() && matches!(s[*pos], '0'..='9' | '.' | 'e' | 'E' | '+' | '-') {
        *pos += 1;
    }
    let text: String = s[start..*pos].iter().collect();
    text.parse::<f64>().ok().map(Json::Num)
}

fn parse_string(s: &[char], pos: &mut usize) -> Option<String> {
    if s.get(*pos) != Some(&'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match s.get(*pos)? {
            '"' => {
                *pos += 1;
                return Some(out);
            }
            '\\' => {
                *pos += 1;
                match s.get(*pos)? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            *pos += 1;
                            code = code * 16 + s.get(*pos)?.to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            c => {
                out.push(*c);
                *pos += 1;
            }
        }
    }
}

fn parse_array(s: &[char], pos: &mut usize) -> Option<Json> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(s, pos);
    if s.get(*pos) == Some(&']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(s, pos)?);
        skip_ws(s, pos);
        match s.get(*pos)? {
            ',' => *pos += 1,
            ']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(s: &[char], pos: &mut usize) -> Option<Json> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(s, pos);
    if s.get(*pos) == Some(&'}') {
        *pos += 1;
        return Some(Json::Obj(map));
    }
    loop {
        skip_ws(s, pos);
        let key = parse_string(s, pos)?;
        skip_ws(s, pos);
        if s.get(*pos) != Some(&':') {
            return None;
        }
        *pos += 1;
        map.insert(key, parse_value(s, pos)?);
        skip_ws(s, pos);
        match s.get(*pos)? {
            ',' => *pos += 1,
            '}' => {
                *pos += 1;
                return Some(Json::Obj(map));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.as_obj().unwrap()["k"].as_str(), Some(nasty));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"x"}"#;
        let Json::Obj(m) = parse(doc).unwrap() else {
            panic!("not an object");
        };
        assert_eq!(
            m["a"],
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)])
        );
        assert_eq!(m["b"].as_obj().unwrap()["c"], Json::Null);
        assert_eq!(m["e"].as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_syntax_errors() {
        assert_eq!(parse("{\"a\":1} x"), None);
        assert_eq!(parse("{\"a\":}"), None);
        assert_eq!(parse("[1,]"), None);
        assert_eq!(parse(""), None);
    }
}
