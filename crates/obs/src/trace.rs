//! Structured tracing spans with a bounded ring-buffer collector.
//!
//! A [`Tracer`] is a cheap-to-clone handle over a shared collector. Spans
//! carry an id, an optional parent id, a label, start offset and duration
//! (microseconds since the tracer's epoch) and free-form key/value attrs.
//!
//! Two recording styles:
//!
//! * [`Tracer::begin`] returns a [`SpanGuard`] that records on drop (or
//!   [`SpanGuard::finish`]). Guards nest: a span begun while another is
//!   open becomes its child. The "current open span" is tracked in a
//!   single atomic, which is exact for the engine's single-writer
//!   execution model and best-effort under concurrency.
//! * [`Tracer::record`] logs an already-measured interval with an explicit
//!   parent — used where the measured region doesn't nest lexically
//!   (e.g. lock-wait time inside a statement).
//!
//! The collector keeps the most recent `capacity` spans; older ones are
//! dropped oldest-first. Export is JSON Lines, one span per line.

use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::json::{escape, Json};

/// Default ring-buffer capacity (spans).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within this tracer (starts at 1).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// What the span measures, e.g. `statement` or `vault_put`.
    pub label: String,
    /// Start offset from the tracer's epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Free-form key/value attributes.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Renders this span as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!("{{\"id\":{}", self.id));
        match self.parent {
            Some(p) => out.push_str(&format!(",\"parent\":{p}")),
            None => out.push_str(",\"parent\":null"),
        }
        out.push_str(&format!(
            ",\"label\":\"{}\",\"start_us\":{},\"dur_us\":{}",
            escape(&self.label),
            self.start_us,
            self.dur_us
        ));
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
        }
        out.push_str("}}");
        out
    }

    /// Parses a span from one JSON line produced by [`SpanRecord::to_json`].
    pub fn from_json(line: &str) -> Option<SpanRecord> {
        let doc = crate::json::parse(line)?;
        let obj = doc.as_obj()?;
        let id = obj.get("id")?.as_num()? as u64;
        let parent = match obj.get("parent")? {
            Json::Null => None,
            Json::Num(n) => Some(*n as u64),
            _ => return None,
        };
        let label = obj.get("label")?.as_str()?.to_string();
        let start_us = obj.get("start_us")?.as_num()? as u64;
        let dur_us = obj.get("dur_us")?.as_num()? as u64;
        let mut attrs = Vec::new();
        if let Some(Json::Obj(m)) = obj.get("attrs") {
            for (k, v) in m {
                attrs.push((k.clone(), v.as_str()?.to_string()));
            }
        }
        Some(SpanRecord {
            id,
            parent,
            label,
            start_us,
            dur_us,
            attrs,
        })
    }
}

struct TracerInner {
    epoch: Instant,
    next_id: AtomicU64,
    /// Id of the innermost open guard span; 0 = none.
    current: AtomicU64,
    capacity: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

/// Handle to a shared span collector. Clones share the same buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracer({} spans)", self.len())
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// Creates a tracer retaining at most `capacity` spans.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                current: AtomicU64::new(0),
                capacity: capacity.max(1),
                spans: Mutex::new(VecDeque::new()),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Opens a span as a child of the currently open span (if any). The
    /// span is recorded when the guard is dropped or finished.
    pub fn begin(&self, label: &str) -> SpanGuard {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = match self.inner.current.swap(id, Ordering::Relaxed) {
            0 => None,
            p => Some(p),
        };
        SpanGuard {
            tracer: self.clone(),
            id,
            parent,
            label: label.to_string(),
            start: Instant::now(),
            attrs: Vec::new(),
            done: false,
        }
    }

    /// Records an interval that was measured by the caller. Does not
    /// affect guard nesting. Returns the new span's id.
    pub fn record(
        &self,
        parent: Option<u64>,
        label: &str,
        started: Instant,
        dur: Duration,
        attrs: Vec<(String, String)>,
    ) -> u64 {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(SpanRecord {
            id,
            parent,
            label: label.to_string(),
            start_us: self.offset_us(started),
            dur_us: dur.as_micros().min(u128::from(u64::MAX)) as u64,
            attrs,
        });
        id
    }

    /// Id of the innermost open guard span, if any.
    pub fn current(&self) -> Option<u64> {
        match self.inner.current.load(Ordering::Relaxed) {
            0 => None,
            p => Some(p),
        }
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.inner
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True if no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted from the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the buffered spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Drops all buffered spans.
    pub fn clear(&self) {
        self.inner
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Renders all buffered spans as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.spans() {
            out.push_str(&span.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL export to `path`.
    pub fn write_jsonl(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    fn offset_us(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.inner.epoch)
            .unwrap_or(Duration::ZERO)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64
    }

    fn push(&self, span: SpanRecord) {
        let mut spans = self
            .inner
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if spans.len() == self.inner.capacity {
            spans.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(span);
    }

    fn close_guard(&self, id: u64, parent: Option<u64>) {
        // Restore the parent as current. Only if we are still the
        // innermost span — a sibling begun after us (unbalanced drop
        // order) keeps its own linkage.
        let _ = self.inner.current.compare_exchange(
            id,
            parent.unwrap_or(0),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }
}

/// An open span; records itself when dropped or finished.
pub struct SpanGuard {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
    label: String,
    start: Instant,
    attrs: Vec<(String, String)>,
    done: bool,
}

impl SpanGuard {
    /// This span's id (usable as an explicit parent for [`Tracer::record`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a key/value attribute.
    pub fn attr(&mut self, key: &str, value: impl Into<String>) {
        self.attrs.push((key.to_string(), value.into()));
    }

    /// Closes and records the span now.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dur = self.start.elapsed();
        self.tracer.close_guard(self.id, self.parent);
        let span = SpanRecord {
            id: self.id,
            parent: self.parent,
            label: std::mem::take(&mut self.label),
            start_us: self.tracer.offset_us(self.start),
            dur_us: dur.as_micros().min(u128::from(u64::MAX)) as u64,
            attrs: std::mem::take(&mut self.attrs),
        };
        self.tracer.push(span);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_nest_and_record_on_drop() {
        let tracer = Tracer::new(16);
        {
            let outer = tracer.begin("outer");
            assert_eq!(tracer.current(), Some(outer.id()));
            {
                let mut inner = tracer.begin("inner");
                inner.attr("k", "v");
            }
            assert_eq!(tracer.current(), Some(outer.id()));
        }
        assert_eq!(tracer.current(), None);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        // Inner closed first.
        assert_eq!(spans[0].label, "inner");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[0].attrs, vec![("k".to_string(), "v".to_string())]);
        assert_eq!(spans[1].label, "outer");
        assert_eq!(spans[1].parent, None);
    }

    #[test]
    fn record_links_to_explicit_parent() {
        let tracer = Tracer::new(16);
        let root = tracer.begin("root");
        let root_id = root.id();
        let t0 = Instant::now();
        let child = tracer.record(
            Some(root_id),
            "lock_wait",
            t0,
            Duration::from_micros(42),
            vec![("mode".to_string(), "write".to_string())],
        );
        root.finish();
        let spans = tracer.spans();
        assert_eq!(spans[0].id, child);
        assert_eq!(spans[0].parent, Some(root_id));
        assert_eq!(spans[0].dur_us, 42);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tracer = Tracer::new(3);
        for i in 0..5 {
            tracer.begin(&format!("s{i}")).finish();
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].label, "s2");
        assert_eq!(tracer.dropped(), 2);
    }

    #[test]
    fn jsonl_round_trips() {
        let tracer = Tracer::new(16);
        {
            let mut s = tracer.begin("stmt");
            s.attr("sql", "SELECT \"x\"\nFROM t");
        }
        let jsonl = tracer.to_jsonl();
        let line = jsonl.lines().next().unwrap();
        let parsed = SpanRecord::from_json(line).expect("parseable");
        assert_eq!(parsed, tracer.spans()[0]);
    }
}
