//! Observability primitives for the Edna workspace.
//!
//! Two independent facilities, both dependency-free and safe for hot paths:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   latency [`Histogram`]s. Handles are `Arc`s over atomics, so recording
//!   a sample is a single relaxed atomic op; the registry lock is only
//!   taken at registration and exposition time. Renders to Prometheus
//!   text format ([`MetricsRegistry::render_prometheus`]) and JSON
//!   ([`MetricsRegistry::render_json`]).
//! * [`Tracer`] — structured spans (id, parent, label, duration,
//!   key/value attrs) collected into a bounded ring buffer and exported
//!   as JSON Lines ([`Tracer::to_jsonl`]). Parent linkage is implicit:
//!   [`Tracer::begin`] nests under the most recently begun, still-open
//!   span, which matches the engine's single-writer execution model.
//!
//! The [`json`] module holds the hand-rolled JSON escape/parse helpers the
//! exposition formats share (the workspace deliberately has no external
//! dependencies).

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_LATENCY_BUCKETS_US};
pub use trace::{SpanGuard, SpanRecord, Tracer};
