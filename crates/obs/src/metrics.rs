//! Lock-free metrics: counters, gauges and fixed-bucket latency histograms.
//!
//! A [`MetricsRegistry`] hands out `Arc`'d metric handles keyed by name.
//! Recording a sample touches only atomics; the registry's own lock is
//! taken at registration and exposition time, never on the hot path.
//!
//! Naming follows Prometheus conventions: lowercase `snake_case`,
//! counters end in `_total`, histograms in `_seconds`. Histogram bucket
//! bounds are stored in microseconds internally and rendered in seconds.

use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::json::escape;

/// Default latency histogram buckets (upper bounds, microseconds):
/// 50µs … 1s, roughly logarithmic.
pub const DEFAULT_LATENCY_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `by` to the counter.
    pub fn add(&self, by: u64) {
        self.value.fetch_add(by, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A gauge: a value that can go up and down.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `by` (may be negative).
    pub fn add(&self, by: i64) {
        self.value.fetch_add(by, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// A fixed-bucket latency histogram. Bounds are upper bounds in
/// microseconds; an implicit `+Inf` bucket catches the rest.
pub struct Histogram {
    bounds_us: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds_us: &[u64]) -> Histogram {
        debug_assert!(bounds_us.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds_us: bounds_us.to_vec(),
            buckets: (0..=bounds_us.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records a duration.
    pub fn observe(&self, d: Duration) {
        self.observe_micros(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records a sample expressed in microseconds.
    pub fn observe_micros(&self, us: u64) {
        let idx = self
            .bounds_us
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(self.bounds_us.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (not cumulative), one per bound plus `+Inf`.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_us.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram(count={}, sum_us={})",
            self.count(),
            self.sum_micros()
        )
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    name: String,
    help: String,
    metric: Metric,
}

/// A registry of named metrics. Cheap to clone handles out of; exposition
/// renders every registered family in registration order.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        write!(f, "MetricsRegistry({} families)", families.len())
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind, or is
    /// not a valid metric name (`[a-z_][a-z0-9_]*`).
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(f) = families.iter().find(|f| f.name == name) {
            match &f.metric {
                Metric::Counter(c) => return Arc::clone(c),
                other => panic!("metric {name} already registered as {}", other.kind()),
            }
        }
        let c = Arc::new(Counter::default());
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Returns the gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// Like [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(f) = families.iter().find(|f| f.name == name) {
            match &f.metric {
                Metric::Gauge(g) => return Arc::clone(g),
                other => panic!("metric {name} already registered as {}", other.kind()),
            }
        }
        let g = Arc::new(Gauge::default());
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Returns the histogram named `name`, registering it on first use
    /// with the given bucket bounds (microseconds, ascending). Bounds are
    /// fixed at first registration; later calls return the same handle.
    ///
    /// # Panics
    /// Like [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str, help: &str, bounds_us: &[u64]) -> Arc<Histogram> {
        assert!(valid_name(name), "invalid metric name: {name:?}");
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(f) = families.iter().find(|f| f.name == name) {
            match &f.metric {
                Metric::Histogram(h) => return Arc::clone(h),
                other => panic!("metric {name} already registered as {}", other.kind()),
            }
        }
        let h = Arc::new(Histogram::new(bounds_us));
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Zeroes every registered metric. Exists for `Stats::reset`-style
    /// test plumbing; production counters are normally monotonic.
    pub fn reset(&self) {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        for f in families.iter() {
            match &f.metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.set(0),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Renders every family in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for f in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.metric.kind());
            match &f.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{} {}", f.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", f.name, g.get());
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, count) in counts.iter().enumerate() {
                        cumulative += count;
                        let le = match h.bounds_us.get(i) {
                            Some(&b) => format!("{}", b as f64 / 1e6),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", f.name, le, cumulative);
                    }
                    let _ = writeln!(out, "{}_sum {}", f.name, h.sum_micros() as f64 / 1e6);
                    let _ = writeln!(out, "{}_count {}", f.name, h.count());
                }
            }
        }
        out
    }

    /// Renders every family as one JSON object keyed by metric name.
    pub fn render_json(&self) -> String {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::from("{");
        for (i, f) in families.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"type\":\"{}\"",
                escape(&f.name),
                f.metric.kind()
            );
            match &f.metric {
                Metric::Counter(c) => {
                    let _ = write!(out, ",\"value\":{}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, ",\"value\":{}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"count\":{},\"sum_us\":{},\"buckets\":[",
                        h.count(),
                        h.sum_micros()
                    );
                    let counts = h.bucket_counts();
                    for (j, count) in counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        match h.bounds_us.get(j) {
                            Some(&b) => {
                                let _ = write!(out, "{{\"le_us\":{b},\"count\":{count}}}");
                            }
                            None => {
                                let _ = write!(out, "{{\"le_us\":null,\"count\":{count}}}");
                            }
                        }
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("edna_things_total", "Things.");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        // Re-registration returns the same handle.
        assert_eq!(reg.counter("edna_things_total", "Things.").get(), 4);
        let g = reg.gauge("edna_depth", "Depth.");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("edna_x_total", "X.");
        reg.gauge("edna_x_total", "X again.");
    }

    #[test]
    fn histogram_buckets_and_prometheus_rendering() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("edna_op_seconds", "Op latency.", &[100, 1000]);
        h.observe_micros(50); // bucket 0
        h.observe_micros(100); // bucket 0 (inclusive upper bound)
        h.observe_micros(500); // bucket 1
        h.observe_micros(5000); // +Inf
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_micros(), 5650);

        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE edna_op_seconds histogram"));
        assert!(text.contains("edna_op_seconds_bucket{le=\"0.0001\"} 2"));
        assert!(text.contains("edna_op_seconds_bucket{le=\"0.001\"} 3"));
        assert!(text.contains("edna_op_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("edna_op_seconds_count 4"));
    }

    #[test]
    fn json_exposition_parses() {
        let reg = MetricsRegistry::new();
        reg.counter("edna_statements_total", "Statements.").add(12);
        let h = reg.histogram("edna_stmt_seconds", "Latency.", &[100]);
        h.observe_micros(7);
        let doc = parse(&reg.render_json()).expect("valid json");
        let obj = doc.as_obj().unwrap();
        let stmts = obj["edna_statements_total"].as_obj().unwrap();
        assert_eq!(stmts["value"], Json::Num(12.0));
        let hist = obj["edna_stmt_seconds"].as_obj().unwrap();
        assert_eq!(hist["count"], Json::Num(1.0));
        assert_eq!(hist["sum_us"], Json::Num(7.0));
    }

    #[test]
    fn invalid_names_rejected() {
        let reg = MetricsRegistry::new();
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.counter("Bad-Name", "nope")
        }))
        .is_err());
    }
}
