//! Randomized property tests for the core invariants listed in
//! DESIGN.md §7: codec round-trips, crypto round-trips, parser
//! round-trips, transactional atomicity, and disguise/reveal round-trips.
//!
//! Formerly proptest-based; now driven by the in-repo deterministic PRNG
//! so the suite runs fully offline. Every test uses a fixed seed, so
//! failures reproduce exactly.

use edna::core::spec::{DisguiseSpecBuilder, Generator, Modifier};
use edna::core::Disguiser;
use edna::relational::{parse_expr, Database, Expr, Value};
use edna::util::buf::BytesMut;
use edna::util::rng::{Prng, Rng};
use edna::vault::{recover, split, VaultKey};

// ---- generators -----------------------------------------------------------

fn arb_text(rng: &mut impl Rng) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 '%_";
    let len = rng.gen_range(0usize..24);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

fn arb_bytes(rng: &mut impl Rng, max: usize) -> Vec<u8> {
    let len = rng.gen_range(0usize..max);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

fn arb_value(rng: &mut impl Rng) -> Value {
    match rng.gen_range(0usize..6) {
        0 => Value::Null,
        1 => Value::Int(rng.gen::<i64>()),
        // Finite floats only: NaN breaks Eq-based comparisons by design.
        2 => Value::Float(rng.gen_range(-1e12..1e12)),
        3 => Value::Text(arb_text(rng)),
        4 => Value::Bool(rng.gen::<bool>()),
        _ => Value::Bytes(arb_bytes(rng, 32)),
    }
}

/// Small expression trees over two column names and literals.
fn arb_expr(rng: &mut impl Rng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.35) {
        return match rng.gen_range(0usize..4) {
            0 => Expr::Literal(arb_value(rng)),
            1 => Expr::col("a"),
            2 => Expr::col("b"),
            _ => Expr::Param("UID".to_string()),
        };
    }
    match rng.gen_range(0usize..4) {
        0 => Expr::eq(arb_expr(rng, depth - 1), arb_expr(rng, depth - 1)),
        1 => Expr::and(arb_expr(rng, depth - 1), arb_expr(rng, depth - 1)),
        2 => {
            let n = rng.gen_range(0usize..3);
            Expr::InList {
                expr: Box::new(arb_expr(rng, depth - 1)),
                list: (0..n).map(|_| arb_expr(rng, depth - 1)).collect(),
                negated: rng.gen::<bool>(),
            }
        }
        _ => Expr::IsNull {
            expr: Box::new(arb_expr(rng, depth - 1)),
            negated: rng.gen::<bool>(),
        },
    }
}

// ---- codec and crypto properties -------------------------------------------

#[test]
fn value_codec_round_trips() {
    let mut rng = Prng::seed_from_u64(0x01);
    for _ in 0..256 {
        let v = arb_value(&mut rng);
        let mut buf = BytesMut::new();
        edna::vault::serialize::write_value(&mut buf, &v);
        let mut bytes = buf.freeze();
        let back = edna::vault::serialize::read_value(&mut bytes).unwrap();
        assert_eq!(back, v);
        assert_eq!(bytes.len(), 0, "no trailing bytes");
    }
}

#[test]
fn sql_literal_round_trips() {
    // Rendering a value as a SQL literal and re-parsing yields the
    // same value (floats compare exactly; ints stay ints).
    let mut rng = Prng::seed_from_u64(0x02);
    for _ in 0..256 {
        let v = arb_value(&mut rng);
        let lit = v.to_sql_literal();
        let expr = parse_expr(&lit).unwrap();
        let parsed = match expr {
            Expr::Literal(x) => x,
            Expr::Unary {
                op: edna::relational::UnOp::Neg,
                expr,
            } => match *expr {
                Expr::Literal(Value::Int(i)) => Value::Int(-i),
                Expr::Literal(Value::Float(f)) => Value::Float(-f),
                other => panic!("unexpected negated literal {other:?}"),
            },
            other => panic!("expected literal for {lit}, got {other:?}"),
        };
        match (&v, &parsed) {
            (Value::Float(a), Value::Float(b)) => assert!((a - b).abs() <= a.abs() * 1e-12),
            // Whole floats render as "x.0" and may re-parse as Float: ok.
            _ => assert_eq!(&parsed, &v),
        }
    }
}

#[test]
fn expr_display_parse_round_trips() {
    let mut rng = Prng::seed_from_u64(0x03);
    for _ in 0..128 {
        let e = arb_expr(&mut rng, 3);
        let rendered = e.to_string();
        let reparsed = parse_expr(&rendered);
        assert!(reparsed.is_ok(), "failed to reparse {rendered}");
        // Displaying again is a fixpoint.
        assert_eq!(reparsed.unwrap().to_string(), rendered);
    }
}

#[test]
fn shamir_round_trips() {
    let mut rng = Prng::seed_from_u64(0x04);
    for _ in 0..64 {
        let secret = {
            let len = rng.gen_range(1usize..64);
            (0..len).map(|_| rng.gen::<u8>()).collect::<Vec<u8>>()
        };
        let threshold = rng.gen_range(1u8..5);
        let extra = rng.gen_range(0u8..3);
        let shares_n = threshold + extra;
        let shares = split(&secret, shares_n, threshold, &mut rng).unwrap();
        // Any `threshold`-sized prefix recovers.
        let rec = recover(&shares[..threshold as usize]).unwrap();
        assert_eq!(rec, secret);
        // All shares recover too.
        assert_eq!(recover(&shares).unwrap(), secret);
    }
}

#[test]
fn seal_open_round_trips() {
    let mut rng = Prng::seed_from_u64(0x05);
    for _ in 0..64 {
        let payload = arb_bytes(&mut rng, 256);
        let key = VaultKey::generate(&mut rng);
        let sealed = edna::vault::crypto::seal(&key, &payload, &mut rng);
        assert_eq!(edna::vault::crypto::open(&key, &sealed).unwrap(), payload);
        // Any single-bit corruption is detected.
        let flip = rng.gen::<u64>() as u16;
        let mut tampered = sealed.clone();
        let pos = (flip as usize) % tampered.len();
        tampered[pos] ^= 1 << (flip % 8) as u8;
        assert!(edna::vault::crypto::open(&key, &tampered).is_err());
    }
}

// ---- engine properties ------------------------------------------------------

#[test]
fn transaction_rollback_restores_state() {
    let mut rng = Prng::seed_from_u64(0x06);
    for _ in 0..32 {
        let db = Database::new();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, karma INT)")
            .unwrap();
        db.execute("INSERT INTO t (name, karma) VALUES ('base', 0)")
            .unwrap();
        let before = db.dump();
        db.begin().unwrap();
        let n = rng.gen_range(1usize..12);
        for _ in 0..n {
            let name: String = (0..rng.gen_range(1usize..=8))
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect();
            let karma = rng.gen_range(-100i64..100);
            db.execute(&format!(
                "INSERT INTO t (name, karma) VALUES ('{name}', {karma})"
            ))
            .unwrap();
        }
        db.execute("UPDATE t SET karma = karma + 1").unwrap();
        db.execute("DELETE FROM t WHERE karma > 50").unwrap();
        db.rollback().unwrap();
        assert_eq!(db.dump(), before);
    }
}

#[test]
fn disguise_reveal_round_trips() {
    let mut rng = Prng::seed_from_u64(0x07);
    for _ in 0..32 {
        let n_users = rng.gen_range(2usize..6);
        let n_posts = rng.gen_range(1usize..15);
        let target = rng.gen_range(0usize..2);
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
             disabled BOOL NOT NULL DEFAULT FALSE);
             CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
        )
        .unwrap();
        for i in 0..n_users {
            db.execute(&format!("INSERT INTO users (name) VALUES ('u{i}')"))
                .unwrap();
        }
        for i in 0..n_posts {
            let owner = rng.gen_range(1..=n_users);
            db.execute(&format!(
                "INSERT INTO posts (user_id, body) VALUES ({owner}, 'p{i}')"
            ))
            .unwrap();
        }
        let edna = Disguiser::new(db.clone());
        edna.register(
            DisguiseSpecBuilder::new("Scrub")
                .user_scoped()
                .modify("posts", Some("user_id = $UID"), "body", Modifier::Redact)
                .decorrelate("posts", Some("user_id = $UID"), "user_id", "users")
                .remove("users", Some("id = $UID"))
                .placeholder("users", "name", Generator::Random)
                .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
                .build()
                .unwrap(),
        )
        .unwrap();

        let before = db.dump();
        let user = (target % n_users + 1) as i64;
        let report = edna.apply("Scrub", Some(&Value::Int(user))).unwrap();
        // Privacy goal: nothing attributed to the user, account gone.
        let attributed = db
            .execute(&format!(
                "SELECT COUNT(*) FROM posts WHERE user_id = {user}"
            ))
            .unwrap()
            .scalar()
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(attributed, 0);

        // Round trip: reveal restores the exact logical state.
        edna.reveal(report.disguise_id).unwrap();
        let mut after = db.dump();
        let mut expected = before;
        after.remove(edna::core::HISTORY_TABLE);
        expected.remove(edna::core::HISTORY_TABLE);
        assert_eq!(after, expected);
    }
}

#[test]
fn modifiers_never_panic() {
    let mut rng = Prng::seed_from_u64(0x08);
    for _ in 0..64 {
        let v = arb_value(&mut rng);
        let n = rng.gen_range(0usize..64);
        let w = rng.gen_range(1i64..10_000);
        for m in [
            Modifier::SetNull,
            Modifier::Redact,
            Modifier::HashText,
            Modifier::Truncate(n),
            Modifier::Bucket(w),
            Modifier::RandomInt { lo: -5, hi: 5 },
            Modifier::RandomText(n),
            Modifier::Fixed(v.clone()),
        ] {
            let _ = m.apply(&v, &mut rng);
        }
    }
}

// ---- like-match property -----------------------------------------------------

fn arb_lower(rng: &mut impl Rng, lo: usize, hi: usize) -> String {
    let len = rng.gen_range(lo..=hi);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

#[test]
fn like_percent_always_matches_suffix() {
    let mut rng = Prng::seed_from_u64(0x09);
    for _ in 0..256 {
        // `p%` matches any string starting with p.
        let s = arb_lower(&mut rng, 0, 16);
        let p = arb_lower(&mut rng, 0, 4);
        let text = format!("{p}{s}");
        let r = edna::relational::expr::like_match(&text, &format!("{p}%"));
        assert!(r);
    }
}

#[test]
fn like_underscore_counts_characters() {
    let mut rng = Prng::seed_from_u64(0x0A);
    for _ in 0..256 {
        let s = arb_lower(&mut rng, 1, 16);
        let pattern: String = "_".repeat(s.chars().count());
        assert!(edna::relational::expr::like_match(&s, &pattern));
        let longer = format!("{pattern}_");
        assert!(!edna::relational::expr::like_match(&s, &longer));
    }
}

// ---- random disguise interleavings -------------------------------------------

/// Apply scrubs and reveals in a random interleaving, then reveal
/// whatever is left: the database must return to its exact original
/// logical state, and referential integrity must hold at every step.
#[test]
fn random_interleavings_restore_exact_state() {
    let mut rng = Prng::seed_from_u64(0x0B);
    for round in 0..16 {
        let steps: Vec<(u8, u8)> = (0..rng.gen_range(1usize..12))
            .map(|_| (rng.gen::<u8>(), rng.gen::<u8>()))
            .collect();
        let include_global = round % 2 == 0;
        let n_users = 4usize;
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
             disabled BOOL NOT NULL DEFAULT FALSE);
             CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
        )
        .unwrap();
        for i in 0..n_users {
            db.execute(&format!("INSERT INTO users (name) VALUES ('u{i}')"))
                .unwrap();
        }
        for i in 0..12 {
            let owner = rng.gen_range(1..=n_users);
            db.execute(&format!(
                "INSERT INTO posts (user_id, body) VALUES ({owner}, 'post {i}')"
            ))
            .unwrap();
        }
        let edna = Disguiser::new(db.clone());
        edna.register(
            DisguiseSpecBuilder::new("Scrub")
                .user_scoped()
                .decorrelate("posts", Some("user_id = $UID"), "user_id", "users")
                .remove("users", Some("id = $UID"))
                .placeholder("users", "name", Generator::Random)
                .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
                .build()
                .unwrap(),
        )
        .unwrap();
        edna.register(
            DisguiseSpecBuilder::new("RedactAll")
                .modify("posts", None, "body", Modifier::Redact)
                .build()
                .unwrap(),
        )
        .unwrap();

        let original = db.dump();
        let check_fk_integrity = || {
            // Every post's user_id must reference an existing user.
            let orphans = db
                .execute(
                    "SELECT COUNT(*) FROM posts p LEFT JOIN users u ON u.id = p.user_id \
                     WHERE u.id IS NULL",
                )
                .unwrap();
            orphans.scalar().unwrap().as_int().unwrap()
        };

        // scrubbed user -> active application id; plus optional global id.
        let mut active: Vec<(i64, u64)> = Vec::new();
        let mut global_active: Option<u64> = None;
        let mut global_used = false;
        for (a, b) in steps {
            let do_apply = a % 2 == 0;
            if do_apply {
                if include_global && !global_used && a % 4 == 0 {
                    let r = edna.apply("RedactAll", None).unwrap();
                    global_active = Some(r.disguise_id);
                    global_used = true;
                } else {
                    let candidates: Vec<i64> = (1..=n_users as i64)
                        .filter(|u| !active.iter().any(|(au, _)| au == u))
                        .collect();
                    if let Some(&user) = candidates.get(b as usize % candidates.len().max(1)) {
                        let r = edna.apply("Scrub", Some(&Value::Int(user))).unwrap();
                        active.push((user, r.disguise_id));
                    }
                }
            } else if !active.is_empty() {
                let idx = b as usize % active.len();
                let (_, id) = active.remove(idx);
                edna.reveal(id).unwrap();
            }
            assert_eq!(check_fk_integrity(), 0, "dangling FK mid-sequence");
        }
        // Reveal everything still active, in random-ish order.
        while let Some((_, id)) = active.pop() {
            edna.reveal(id).unwrap();
        }
        if let Some(id) = global_active {
            edna.reveal(id).unwrap();
        }

        let mut final_state = db.dump();
        let mut expected = original;
        final_state.remove(edna::core::HISTORY_TABLE);
        expected.remove(edna::core::HISTORY_TABLE);
        assert_eq!(final_state, expected);
    }
}

// ---- snapshot round-trip ------------------------------------------------------

/// Databases with random content survive encode → decode exactly
/// (schema, rows, AUTO_INCREMENT counters, and the logical clock).
#[test]
fn snapshot_round_trips_random_databases() {
    let mut rng = Prng::seed_from_u64(0x0C);
    for _ in 0..16 {
        let db = Database::new();
        db.execute(
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, payload TEXT, n INT, \
             b BLOB, flag BOOL)",
        )
        .unwrap();
        let n_rows = rng.gen_range(0usize..20);
        for _ in 0..n_rows {
            // Store an arbitrary value's SQL literal as payload text and
            // exercise every column type.
            let v = arb_value(&mut rng);
            let n = rng.gen_range(i32::MIN..=i32::MAX);
            db.execute(&format!(
                "INSERT INTO t (payload, n, b, flag) VALUES ({}, {n}, X'AB', TRUE)",
                Value::Text(v.to_sql_literal()).to_sql_literal()
            ))
            .unwrap();
        }
        let now = rng.gen::<i64>();
        db.set_now(now);
        let encoded = edna::relational::snapshot::encode(&db).unwrap();
        let back = edna::relational::snapshot::decode(&encoded).unwrap();
        assert_eq!(back.dump(), db.dump());
        assert_eq!(back.now(), now);
        // AUTO_INCREMENT continues correctly.
        let a = db
            .execute("INSERT INTO t (n) VALUES (0)")
            .unwrap()
            .last_insert_id;
        let b = back
            .execute("INSERT INTO t (n) VALUES (0)")
            .unwrap()
            .last_insert_id;
        assert_eq!(a, b);
    }
}
