//! Property-based tests (proptest) for the core invariants listed in
//! DESIGN.md §7: codec round-trips, crypto round-trips, parser
//! round-trips, transactional atomicity, and disguise/reveal round-trips.

use proptest::prelude::*;

use edna::core::spec::{DisguiseSpecBuilder, Generator, Modifier};
use edna::core::Disguiser;
use edna::relational::{parse_expr, Database, Expr, Value};
use edna::vault::{recover, split, VaultKey};

// ---- strategies -----------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks Eq-based comparisons by design.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 '%_]{0,24}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
    ]
}

fn arb_literal_expr() -> impl Strategy<Value = Expr> {
    arb_value().prop_map(Expr::Literal)
}

/// Small expression trees over two column names and literals.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal_expr(),
        Just(Expr::col("a")),
        Just(Expr::col("b")),
        Just(Expr::Param("UID".to_string())),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::eq(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::and(l, r)),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 0..3),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
        ]
    })
}

// ---- codec and crypto properties -------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn value_codec_round_trips(v in arb_value()) {
        use bytes::BytesMut;
        let mut buf = BytesMut::new();
        edna::vault::serialize::write_value(&mut buf, &v);
        let mut bytes = buf.freeze();
        let back = edna::vault::serialize::read_value(&mut bytes).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(bytes.len(), 0, "no trailing bytes");
    }

    #[test]
    fn sql_literal_round_trips(v in arb_value()) {
        // Rendering a value as a SQL literal and re-parsing yields the
        // same value (floats compare exactly; ints stay ints).
        let lit = v.to_sql_literal();
        let expr = parse_expr(&lit).unwrap();
        let parsed = match expr {
            Expr::Literal(x) => x,
            Expr::Unary { op: edna::relational::UnOp::Neg, expr } => match *expr {
                Expr::Literal(Value::Int(i)) => Value::Int(-i),
                Expr::Literal(Value::Float(f)) => Value::Float(-f),
                other => panic!("unexpected negated literal {other:?}"),
            },
            other => panic!("expected literal for {lit}, got {other:?}"),
        };
        match (&v, &parsed) {
            (Value::Float(a), Value::Float(b)) => prop_assert!((a - b).abs() <= a.abs() * 1e-12),
            // Whole floats render as "x.0" and may re-parse as Float: ok.
            _ => prop_assert_eq!(&parsed, &v),
        }
    }

    #[test]
    fn expr_display_parse_round_trips(e in arb_expr()) {
        let rendered = e.to_string();
        let reparsed = parse_expr(&rendered);
        prop_assert!(reparsed.is_ok(), "failed to reparse {rendered}");
        // Displaying again is a fixpoint.
        prop_assert_eq!(reparsed.unwrap().to_string(), rendered);
    }

    #[test]
    fn shamir_round_trips(
        secret in proptest::collection::vec(any::<u8>(), 1..64),
        threshold in 1u8..5,
        extra in 0u8..3,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let shares_n = threshold + extra;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shares = split(&secret, shares_n, threshold, &mut rng).unwrap();
        // Any `threshold`-sized prefix recovers.
        let rec = recover(&shares[..threshold as usize]).unwrap();
        prop_assert_eq!(rec, secret.clone());
        // All shares recover too.
        prop_assert_eq!(recover(&shares).unwrap(), secret);
    }

    #[test]
    fn seal_open_round_trips(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        seed in any::<u64>(),
        flip in any::<u16>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let key = VaultKey::generate(&mut rng);
        let sealed = edna::vault::crypto::seal(&key, &payload, &mut rng);
        prop_assert_eq!(edna::vault::crypto::open(&key, &sealed).unwrap(), payload);
        // Any single-bit corruption is detected.
        let mut tampered = sealed.clone();
        let pos = (flip as usize) % tampered.len();
        tampered[pos] ^= 1 << (flip % 8) as u8;
        prop_assert!(edna::vault::crypto::open(&key, &tampered).is_err());
    }
}

// ---- engine properties ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transaction_rollback_restores_state(
        names in proptest::collection::vec("[a-z]{1,8}", 1..12),
        karmas in proptest::collection::vec(-100i64..100, 1..12),
    ) {
        let db = Database::new();
        db.execute(
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, karma INT)",
        ).unwrap();
        db.execute("INSERT INTO t (name, karma) VALUES ('base', 0)").unwrap();
        let before = db.dump();
        db.begin().unwrap();
        for (name, karma) in names.iter().zip(&karmas) {
            db.execute(&format!(
                "INSERT INTO t (name, karma) VALUES ('{name}', {karma})"
            )).unwrap();
        }
        db.execute("UPDATE t SET karma = karma + 1").unwrap();
        db.execute("DELETE FROM t WHERE karma > 50").unwrap();
        db.rollback().unwrap();
        prop_assert_eq!(db.dump(), before);
    }

    #[test]
    fn disguise_reveal_round_trips(
        n_users in 2usize..6,
        n_posts in 1usize..15,
        target in 0usize..2,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
             disabled BOOL NOT NULL DEFAULT FALSE);
             CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
        ).unwrap();
        for i in 0..n_users {
            db.execute(&format!("INSERT INTO users (name) VALUES ('u{i}')")).unwrap();
        }
        for i in 0..n_posts {
            let owner = rng.gen_range(1..=n_users);
            db.execute(&format!(
                "INSERT INTO posts (user_id, body) VALUES ({owner}, 'p{i}')"
            )).unwrap();
        }
        let mut edna = Disguiser::new(db.clone());
        edna.register(
            DisguiseSpecBuilder::new("Scrub")
                .user_scoped()
                .modify("posts", Some("user_id = $UID"), "body", Modifier::Redact)
                .decorrelate("posts", Some("user_id = $UID"), "user_id", "users")
                .remove("users", Some("id = $UID"))
                .placeholder("users", "name", Generator::Random)
                .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
                .build()
                .unwrap(),
        ).unwrap();

        let before = db.dump();
        let user = (target % n_users + 1) as i64;
        let report = edna.apply("Scrub", Some(&Value::Int(user))).unwrap();
        // Privacy goal: nothing attributed to the user, account gone.
        let attributed = db.execute(&format!(
            "SELECT COUNT(*) FROM posts WHERE user_id = {user}"
        )).unwrap().scalar().unwrap().as_int().unwrap();
        prop_assert_eq!(attributed, 0);

        // Round trip: reveal restores the exact logical state.
        edna.reveal(report.disguise_id).unwrap();
        let mut after = db.dump();
        let mut expected = before;
        after.remove(edna::core::HISTORY_TABLE);
        expected.remove(edna::core::HISTORY_TABLE);
        prop_assert_eq!(after, expected);
    }

    #[test]
    fn modifiers_never_panic(v in arb_value(), n in 0usize..64, w in 1i64..10_000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for m in [
            Modifier::SetNull,
            Modifier::Redact,
            Modifier::HashText,
            Modifier::Truncate(n),
            Modifier::Bucket(w),
            Modifier::RandomInt { lo: -5, hi: 5 },
            Modifier::RandomText(n),
            Modifier::Fixed(v.clone()),
        ] {
            let _ = m.apply(&v, &mut rng);
        }
    }
}

// ---- like-match property -----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn like_percent_always_matches_suffix(s in "[a-z]{0,16}", p in "[a-z]{0,4}") {
        // `p%` matches any string starting with p.
        let text = format!("{p}{s}");
        let r = edna::relational::expr::like_match(&text, &format!("{p}%"));
        prop_assert!(r);
    }

    #[test]
    fn like_underscore_counts_characters(s in "[a-z]{1,16}") {
        let pattern: String = "_".repeat(s.chars().count());
        prop_assert!(edna::relational::expr::like_match(&s, &pattern));
        let longer = format!("{pattern}_");
        prop_assert!(!edna::relational::expr::like_match(&s, &longer));
    }
}

// ---- random disguise interleavings -------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Apply scrubs and reveals in a random interleaving, then reveal
    /// whatever is left: the database must return to its exact original
    /// logical state, and referential integrity must hold at every step.
    #[test]
    fn random_interleavings_restore_exact_state(
        steps in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..12),
        include_global in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n_users = 4usize;
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL, \
             disabled BOOL NOT NULL DEFAULT FALSE);
             CREATE TABLE posts (id INT PRIMARY KEY AUTO_INCREMENT, user_id INT NOT NULL, \
             body TEXT, FOREIGN KEY (user_id) REFERENCES users(id));",
        ).unwrap();
        for i in 0..n_users {
            db.execute(&format!("INSERT INTO users (name) VALUES ('u{i}')")).unwrap();
        }
        for i in 0..12 {
            let owner = rng.gen_range(1..=n_users);
            db.execute(&format!(
                "INSERT INTO posts (user_id, body) VALUES ({owner}, 'post {i}')"
            )).unwrap();
        }
        let mut edna = Disguiser::new(db.clone());
        edna.register(
            DisguiseSpecBuilder::new("Scrub")
                .user_scoped()
                .decorrelate("posts", Some("user_id = $UID"), "user_id", "users")
                .remove("users", Some("id = $UID"))
                .placeholder("users", "name", Generator::Random)
                .placeholder("users", "disabled", Generator::Default(Value::Bool(true)))
                .build()
                .unwrap(),
        ).unwrap();
        edna.register(
            DisguiseSpecBuilder::new("RedactAll")
                .modify("posts", None, "body", Modifier::Redact)
                .build()
                .unwrap(),
        ).unwrap();

        let original = db.dump();
        let check_fk_integrity = || {
            // Every post's user_id must reference an existing user.
            let orphans = db.execute(
                "SELECT COUNT(*) FROM posts p LEFT JOIN users u ON u.id = p.user_id \
                 WHERE u.id IS NULL",
            ).unwrap();
            orphans.scalar().unwrap().as_int().unwrap()
        };

        // scrubbed user -> active application id; plus optional global id.
        let mut active: Vec<(i64, u64)> = Vec::new();
        let mut global_active: Option<u64> = None;
        let mut global_used = false;
        for (a, b) in steps {
            let do_apply = a % 2 == 0;
            if do_apply {
                if include_global && !global_used && a % 4 == 0 {
                    let r = edna.apply("RedactAll", None).unwrap();
                    global_active = Some(r.disguise_id);
                    global_used = true;
                } else {
                    let candidates: Vec<i64> = (1..=n_users as i64)
                        .filter(|u| !active.iter().any(|(au, _)| au == u))
                        .collect();
                    if let Some(&user) = candidates.get(b as usize % candidates.len().max(1)) {
                        let r = edna.apply("Scrub", Some(&Value::Int(user))).unwrap();
                        active.push((user, r.disguise_id));
                    }
                }
            } else if !active.is_empty() {
                let idx = b as usize % active.len();
                let (_, id) = active.remove(idx);
                edna.reveal(id).unwrap();
            }
            prop_assert_eq!(check_fk_integrity(), 0, "dangling FK mid-sequence");
        }
        // Reveal everything still active, in random-ish order.
        while let Some((_, id)) = active.pop() {
            edna.reveal(id).unwrap();
        }
        if let Some(id) = global_active {
            edna.reveal(id).unwrap();
        }

        let mut final_state = db.dump();
        let mut expected = original;
        final_state.remove(edna::core::HISTORY_TABLE);
        expected.remove(edna::core::HISTORY_TABLE);
        prop_assert_eq!(final_state, expected);
    }
}

// ---- snapshot round-trip ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Databases with random content survive encode → decode exactly
    /// (schema, rows, AUTO_INCREMENT counters, and the logical clock).
    #[test]
    fn snapshot_round_trips_random_databases(
        rows in proptest::collection::vec((arb_value(), any::<i32>()), 0..20),
        now in any::<i64>(),
    ) {
        let db = Database::new();
        db.execute(
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, payload TEXT, n INT, \
             b BLOB, flag BOOL)",
        ).unwrap();
        for (v, n) in &rows {
            // Store the arbitrary value's SQL literal as payload text and
            // exercise every column type.
            db.execute(&format!(
                "INSERT INTO t (payload, n, b, flag) VALUES ({}, {n}, X'AB', TRUE)",
                Value::Text(v.to_sql_literal()).to_sql_literal()
            )).unwrap();
        }
        db.set_now(now);
        let encoded = edna::relational::snapshot::encode(&db).unwrap();
        let back = edna::relational::snapshot::decode(&encoded).unwrap();
        prop_assert_eq!(back.dump(), db.dump());
        prop_assert_eq!(back.now(), now);
        // AUTO_INCREMENT continues correctly.
        let a = db.execute("INSERT INTO t (n) VALUES (0)").unwrap().last_insert_id;
        let b = back.execute("INSERT INTO t (n) VALUES (0)").unwrap().last_insert_id;
        prop_assert_eq!(a, b);
    }
}
