//! Fault-injection sweeps: invariant 5 ("a disguise application is atomic
//! — it either fully applies or leaves no trace") exercised by killing the
//! apply at *every* statement index, plus the vault failure policies and
//! crash-recovery paths end to end.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use edna::apps::hotcrp::{self, generate::HotCrpConfig};
use edna::core::{ApplyOptions, Disguiser, Error, VaultFailurePolicy};
use edna::relational::{snapshot, Value};
use edna::vault::{
    Error as VaultError, FaultPlan, FaultyStore, FileStore, MemoryStore, RetryPolicy,
    ThirdPartyStore, TieredVault, Vault, VaultJournal, VaultTier,
};

/// A freshly generated HotCRP instance, serialized so each sweep iteration
/// can rebuild an identical database cheaply.
fn hotcrp_image() -> (Vec<u8>, i64) {
    let db = hotcrp::create_db().unwrap();
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();
    (snapshot::encode(&db).unwrap(), inst.pc_contact_ids[0])
}

fn disguiser_for(image: &[u8]) -> (edna::relational::Database, Disguiser) {
    let db = snapshot::decode(image).unwrap();
    let edna = Disguiser::new(db.clone());
    hotcrp::register_disguises(&edna).unwrap();
    (db, edna)
}

fn vault_entry_total(edna: &Disguiser) -> usize {
    edna.vaults().tier(VaultTier::Global).entry_count().unwrap()
        + edna
            .vaults()
            .tier(VaultTier::PerUser)
            .entry_count()
            .unwrap()
}

#[test]
fn statement_fault_sweep_leaves_no_trace() {
    let (image, user) = hotcrp_image();

    // Clean run: count the statements one application issues.
    let total = {
        let (db, edna) = disguiser_for(&image);
        db.set_fault_hook(Some(Arc::new(|_| false)));
        edna.apply("HotCRP-GDPR+", Some(&Value::Int(user))).unwrap();
        db.fault_statement_count()
    };
    assert!(total > 20, "expected a multi-statement apply, got {total}");

    // Kill the apply at every statement index. Each time, the database
    // must come back byte-identical to its pre-apply state (history table
    // included) and the vaults must hold no orphan entry.
    for index in 0..total {
        let (db, edna) = disguiser_for(&image);
        let before: BTreeMap<String, Vec<String>> = db.dump();
        db.fail_statement(index);
        let err = edna
            .apply("HotCRP-GDPR+", Some(&Value::Int(user)))
            .err()
            .unwrap_or_else(|| panic!("statement {index} fault was swallowed"));
        assert!(
            matches!(
                err,
                Error::Relational(edna::relational::Error::FaultInjected(i)) if i == index
            ),
            "statement {index}: unexpected error {err}"
        );
        db.set_fault_hook(None);
        assert_eq!(
            db.dump(),
            before,
            "statement {index}: database differs from pre-apply snapshot"
        );
        assert_eq!(
            vault_entry_total(&edna),
            0,
            "statement {index}: orphan vault entry"
        );
    }

    // And past the end, the apply goes through untouched.
    let (db, edna) = disguiser_for(&image);
    db.fail_statement(total);
    let report = edna.apply("HotCRP-GDPR+", Some(&Value::Int(user))).unwrap();
    db.set_fault_hook(None);
    assert!(report.rows_removed + report.rows_modified > 0);
}

/// A disguiser whose per-user vault store (the tier HotCRP-GDPR+ writes)
/// fails its first write permanently.
fn disguiser_with_failing_vault(image: &[u8]) -> (edna::relational::Database, Disguiser) {
    let db = snapshot::decode(image).unwrap();
    let vaults = TieredVault::new(
        Vault::plain(MemoryStore::new()),
        Vault::plain(FaultyStore::new(
            MemoryStore::new(),
            FaultPlan::new(9).fail_nth(0),
        )),
    );
    let edna = Disguiser::with_vaults(db.clone(), vaults);
    hotcrp::register_disguises(&edna).unwrap();
    (db, edna)
}

#[test]
fn require_policy_aborts_and_rolls_back_on_vault_failure() {
    let (image, user) = hotcrp_image();
    let (db, edna) = disguiser_with_failing_vault(&image);
    let before = db.dump();
    let err = edna
        .apply("HotCRP-GDPR+", Some(&Value::Int(user)))
        .expect_err("vault failure must abort under Require");
    assert!(
        matches!(err, Error::Vault(VaultError::Injected { .. })),
        "got {err}"
    );
    assert_eq!(db.dump(), before, "Require must leave no trace");
    assert!(edna.history().events().unwrap().is_empty());
}

#[test]
fn degrade_policy_proceeds_irreversibly_with_recorded_reason() {
    let (image, user) = hotcrp_image();
    let (db, edna) = disguiser_with_failing_vault(&image);
    let opts = ApplyOptions {
        vault_failure_policy: VaultFailurePolicy::Degrade,
        ..ApplyOptions::default()
    };
    let report = edna
        .apply_with_options("HotCRP-GDPR+", Some(&Value::Int(user)), opts)
        .unwrap();
    assert!(
        report.rows_removed + report.rows_modified > 0,
        "disguise applied"
    );
    let reason = report
        .vault_degraded
        .expect("degradation recorded in report");
    assert!(reason.contains("vault write failed"), "got: {reason}");

    // The history row is marked irreversible, with the reason as its note.
    let event = edna.history().get(report.disguise_id).unwrap();
    assert!(!event.reversible);
    assert!(event.note.unwrap().contains("vault write failed"));
    // And a reveal is refused rather than half-performed.
    assert!(matches!(
        edna.reveal(report.disguise_id).err().unwrap(),
        Error::NotReversible { .. }
    ));
    // The user's data is still disguised.
    assert_eq!(
        db.execute(&format!(
            "SELECT COUNT(*) FROM ContactInfo WHERE contactId = {user}"
        ))
        .unwrap()
        .scalar()
        .unwrap(),
        &Value::Int(0)
    );
}

#[test]
fn buffer_policy_without_journal_is_an_error() {
    let (image, user) = hotcrp_image();
    let (db, edna) = disguiser_with_failing_vault(&image);
    let before = db.dump();
    let opts = ApplyOptions {
        vault_failure_policy: VaultFailurePolicy::Buffer,
        ..ApplyOptions::default()
    };
    let err = edna
        .apply_with_options("HotCRP-GDPR+", Some(&Value::Int(user)), opts)
        .err()
        .unwrap();
    assert!(matches!(err, Error::NoJournal), "got {err}");
    assert_eq!(db.dump(), before, "aborted like Require");
}

#[test]
fn buffer_policy_spools_then_flush_restores_reversibility() {
    let dir = std::env::temp_dir().join(format!("edna_fault_buffer_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (image, user) = hotcrp_image();
    let (db, edna) = disguiser_with_failing_vault(&image);
    edna.set_vault_journal(VaultJournal::open(dir.join("pending.journal")).unwrap());

    let opts = ApplyOptions {
        vault_failure_policy: VaultFailurePolicy::Buffer,
        ..ApplyOptions::default()
    };
    let report = edna
        .apply_with_options("HotCRP-GDPR+", Some(&Value::Int(user)), opts)
        .unwrap();
    assert!(report.vault_buffered, "entry spooled to the journal");
    assert!(report.vault_degraded.is_none());
    assert_eq!(edna.pending_vault_writes().unwrap(), 1);
    assert_eq!(vault_entry_total(&edna), 0, "nothing reached the vault yet");

    // Reveal before the flush: the vault has no entries, so the tool
    // refuses (the reveal functions are safe in the journal, not lost).
    assert!(matches!(
        edna.reveal(report.disguise_id).err().unwrap(),
        Error::NotReversible { .. }
    ));

    // The backend healed (fail_nth(0) only killed the first op): flush,
    // then the reveal restores the user.
    assert_eq!(edna.flush_pending_vault_writes().unwrap(), 1);
    assert_eq!(edna.pending_vault_writes().unwrap(), 0);
    assert_eq!(vault_entry_total(&edna), 1);
    edna.reveal(report.disguise_id).unwrap();
    assert_eq!(
        db.execute(&format!(
            "SELECT COUNT(*) FROM ContactInfo WHERE contactId = {user}"
        ))
        .unwrap()
        .scalar()
        .unwrap(),
        &Value::Int(1)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn transient_vault_outage_is_absorbed_with_observable_retries() {
    // A third-party store that drops the first request, wrapped in a
    // retry policy: the apply succeeds and the report shows the retry.
    let (image, user) = hotcrp_image();
    let db = snapshot::decode(&image).unwrap();
    let remote = ThirdPartyStore::with_retry(
        FaultyStore::new(
            MemoryStore::new(),
            FaultPlan::new(3).fail_nth(0).transient(),
        ),
        Duration::ZERO,
        RetryPolicy {
            base_delay: Duration::from_micros(200),
            ..RetryPolicy::default()
        },
    );
    let vaults = TieredVault::new(Vault::plain(MemoryStore::new()), Vault::plain(remote));
    let edna = Disguiser::with_vaults(db.clone(), vaults);
    hotcrp::register_disguises(&edna).unwrap();
    let report = edna.apply("HotCRP-GDPR+", Some(&Value::Int(user))).unwrap();
    assert_eq!(report.vault_retries, 1, "one retry absorbed the outage");
    assert_eq!(vault_entry_total(&edna), 1);
}

#[test]
fn permanent_vault_outage_fails_within_the_deadline() {
    // Acceptance: against a permanently-failing third-party store the
    // apply fails within the policy deadline, with the retry count
    // observable on the store.
    let (image, user) = hotcrp_image();
    let db = snapshot::decode(&image).unwrap();
    let remote = ThirdPartyStore::with_retry(
        FaultyStore::new(
            MemoryStore::new(),
            FaultPlan::new(5).error_rate(1.0).transient(),
        ),
        Duration::ZERO,
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(1),
            deadline: Duration::from_secs(5),
            jitter_seed: 11,
        },
    );
    let vaults = TieredVault::new(Vault::plain(MemoryStore::new()), Vault::plain(remote));
    let edna = Disguiser::with_vaults(db.clone(), vaults);
    hotcrp::register_disguises(&edna).unwrap();
    let before = db.dump();

    let start = std::time::Instant::now();
    let err = edna
        .apply("HotCRP-GDPR+", Some(&Value::Int(user)))
        .err()
        .unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "retries must be bounded by the deadline"
    );
    match err {
        Error::Vault(VaultError::RetriesExhausted { attempts, .. }) => {
            assert_eq!(attempts, 4, "1 try + 3 retries")
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
    assert_eq!(edna.vaults().store_stats().retries, 3, "retries observable");
    assert_eq!(db.dump(), before, "Require rolled everything back");
}

#[test]
fn torn_vault_tail_is_recovered_across_reopen() {
    // Disguise into a file vault, crash mid-append on a *second* write
    // (garbage tail), reopen: the first entry must survive and reveal.
    let dir = std::env::temp_dir().join(format!("edna_fault_torn_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (image, user) = hotcrp_image();
    let db = snapshot::decode(&image).unwrap();

    let disguise_id = {
        let vaults = TieredVault::new(
            Vault::plain(MemoryStore::new()),
            Vault::plain(FileStore::open(&dir).unwrap()),
        );
        let edna = Disguiser::with_vaults(db.clone(), vaults);
        hotcrp::register_disguises(&edna).unwrap();
        let report = edna.apply("HotCRP-GDPR+", Some(&Value::Int(user))).unwrap();
        report.disguise_id
    };

    // Append a torn record tail to every vault file, as a crash
    // mid-append would leave.
    let mut teared = 0;
    for f in std::fs::read_dir(&dir).unwrap() {
        let path = f.unwrap().path();
        if path.is_file() {
            use std::io::Write;
            let mut fh = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            fh.write_all(&[0x42, 0x00, 0x00, 0x00, 0xde, 0xad]).unwrap();
            teared += 1;
        }
    }
    assert!(teared > 0, "expected at least one vault file");

    // Reopen: recovery truncates the torn tails; the entry is intact.
    let store = FileStore::open(&dir).unwrap();
    let vaults = TieredVault::new(Vault::plain(MemoryStore::new()), Vault::plain(store));
    let edna = Disguiser::with_vaults(db.clone(), vaults);
    hotcrp::register_disguises(&edna).unwrap();
    edna.reveal(disguise_id).unwrap();
    assert!(edna.vaults().store_stats().truncated_bytes > 0);
    assert_eq!(
        db.execute(&format!(
            "SELECT COUNT(*) FROM ContactInfo WHERE contactId = {user}"
        ))
        .unwrap()
        .scalar()
        .unwrap(),
        &Value::Int(1)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
