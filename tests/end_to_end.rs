//! Cross-crate integration tests: the full pipeline from DSL text through
//! the relational engine, vault persistence on disk, and reversal.

use std::collections::HashMap;

use edna::apps::hotcrp::{self, generate::HotCrpConfig};
use edna::apps::lobsters::{self, generate::LobstersConfig};
use edna::core::{ApplyOptions, Disguiser};
use edna::relational::{parse_expr, Value};
use edna::vault::{FileStore, MemoryStore, TieredVault, Vault};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("edna_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn file_backed_vault_survives_reopen() {
    // Disguise with an offline (file-backed) vault, then rebuild the
    // disguiser over the same directory and reveal: the reveal functions
    // must have survived on disk.
    let dir = tempdir("reopen");
    let db = hotcrp::create_db().unwrap();
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();
    let bea = inst.pc_contact_ids[0];
    let before = db.dump();

    let disguise_id = {
        let vaults = TieredVault::new(
            Vault::plain(MemoryStore::new()),
            Vault::plain(FileStore::open(&dir).unwrap()),
        );
        let edna = Disguiser::with_vaults(db.clone(), vaults);
        hotcrp::register_disguises(&edna).unwrap();
        edna.apply("HotCRP-GDPR+", Some(&Value::Int(bea)))
            .unwrap()
            .disguise_id
    };

    // A new tool instance over the same DB and vault directory.
    let vaults = TieredVault::new(
        Vault::plain(MemoryStore::new()),
        Vault::plain(FileStore::open(&dir).unwrap()),
    );
    let edna = Disguiser::with_vaults(db.clone(), vaults);
    hotcrp::register_disguises(&edna).unwrap();
    let reveal = edna.reveal(disguise_id).unwrap();
    assert!(reveal.rows_reinserted > 0);

    let mut after = db.dump();
    let mut expected = before;
    after.remove(edna::core::HISTORY_TABLE);
    expected.remove(edna::core::HISTORY_TABLE);
    assert_eq!(
        after, expected,
        "disk-backed reveal restores the exact state"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn referential_integrity_holds_through_disguise_sequences() {
    // Apply a sequence of disguises and reveals; at every step, every
    // foreign key in every table must reference an existing parent row.
    let db = hotcrp::create_db().unwrap();
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();
    let edna = Disguiser::new(db.clone());
    hotcrp::register_disguises(&edna).unwrap();

    let check_integrity = |label: &str| {
        for table in db.table_names() {
            let schema = db.schema(&table).unwrap();
            for fk in schema.foreign_keys.clone() {
                let rows = db.select_rows(&table, None, &HashMap::new()).unwrap();
                let col = schema.column_index(&fk.column).unwrap();
                let parent_schema = db.schema(&fk.parent_table).unwrap();
                let pcol = parent_schema.column_index(&fk.parent_column).unwrap();
                for row in rows {
                    if row[col].is_null() {
                        continue;
                    }
                    let pred = parse_expr(&format!(
                        "{} = {}",
                        fk.parent_column,
                        row[col].to_sql_literal()
                    ))
                    .unwrap();
                    let parents = db
                        .select_rows(&fk.parent_table, Some(&pred), &HashMap::new())
                        .unwrap();
                    assert!(
                        parents.iter().any(|p| p[pcol] == row[col]),
                        "{label}: dangling {table}.{} -> {}.{}",
                        fk.column,
                        fk.parent_table,
                        fk.parent_column
                    );
                }
            }
        }
    };

    check_integrity("fresh");
    let a = edna
        .apply("HotCRP-GDPR+", Some(&Value::Int(inst.pc_contact_ids[0])))
        .unwrap();
    check_integrity("after GDPR+ #1");
    edna.apply("HotCRP-ConfAnon", None).unwrap();
    check_integrity("after ConfAnon");
    edna.apply("HotCRP-GDPR+", Some(&Value::Int(inst.pc_contact_ids[1])))
        .unwrap();
    check_integrity("after composed GDPR+ #2");
    edna.reveal(a.disguise_id).unwrap();
    check_integrity("after reveal of GDPR+ #1");
}

#[test]
fn naive_and_optimized_composition_reach_equivalent_privacy_states() {
    // Apply ConfAnon then GDPR+ with both strategies on identical
    // databases; the privacy-relevant end state (rows attributed to the
    // user, account existence, retained row counts) must agree.
    let build = || {
        let db = hotcrp::create_db().unwrap();
        let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();
        let edna = Disguiser::new(db.clone());
        hotcrp::register_disguises(&edna).unwrap();
        edna.apply("HotCRP-ConfAnon", None).unwrap();
        (db, edna, inst.pc_contact_ids[1])
    };
    let mut states = Vec::new();
    for optimize in [false, true] {
        let (db, edna, user) = build();
        let opts = ApplyOptions {
            compose: true,
            optimize,
            use_transaction: true,
            ..ApplyOptions::default()
        };
        edna.apply_with_options("HotCRP-GDPR+", Some(&Value::Int(user)), opts)
            .unwrap();
        let attributed = |table: &str, col: &str| -> i64 {
            db.execute(&format!(
                "SELECT COUNT(*) FROM {table} WHERE {col} = {user}"
            ))
            .unwrap()
            .scalar()
            .unwrap()
            .as_int()
            .unwrap()
        };
        states.push((
            attributed("Review", "contactId"),
            attributed("PaperComment", "contactId"),
            attributed("ContactInfo", "contactId"),
            db.row_count("Review").unwrap(),
            db.row_count("ReviewPreference").unwrap(),
        ));
    }
    assert_eq!(
        states[0], states[1],
        "naive vs optimized end states diverge"
    );
    assert_eq!(states[0].0, 0);
    assert_eq!(states[0].2, 0);
}

#[test]
fn lobsters_two_users_interleaved_with_reveals() {
    let db = lobsters::create_db().unwrap();
    let inst = lobsters::generate::generate(&db, &LobstersConfig::small()).unwrap();
    let edna = Disguiser::new(db.clone());
    lobsters::register_disguises(&edna).unwrap();

    let u1 = inst.user_ids[0];
    let u2 = inst.user_ids[1];
    let r1 = edna.apply("Lobsters-GDPR", Some(&Value::Int(u1))).unwrap();
    let r2 = edna.apply("Lobsters-GDPR", Some(&Value::Int(u2))).unwrap();
    // Reveal in reverse order; both users come back whole.
    edna.reveal(r2.disguise_id).unwrap();
    edna.reveal(r1.disguise_id).unwrap();
    for u in [u1, u2] {
        assert_eq!(
            db.execute(&format!("SELECT COUNT(*) FROM users WHERE id = {u}"))
                .unwrap()
                .scalar()
                .unwrap(),
            &Value::Int(1)
        );
    }
    // All placeholders were garbage-collected.
    assert_eq!(db.row_count("users").unwrap(), inst.user_ids.len());
}

#[test]
fn history_log_is_queryable_sql() {
    // The disguise history is an ordinary table in the application DB
    // (paper §5) — the application can audit it with plain SQL.
    let db = hotcrp::create_db().unwrap();
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();
    let edna = Disguiser::new(db.clone());
    hotcrp::register_disguises(&edna).unwrap();
    edna.apply("HotCRP-GDPR+", Some(&Value::Int(inst.pc_contact_ids[0])))
        .unwrap();
    edna.apply("HotCRP-ConfAnon", None).unwrap();

    let r = db
        .execute(&format!(
            "SELECT name, COUNT(*) AS n FROM {} GROUP BY name ORDER BY name",
            edna::core::HISTORY_TABLE
        ))
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::Text("HotCRP-ConfAnon".into()));
    assert_eq!(r.rows[1][0], Value::Text("HotCRP-GDPR+".into()));
}
