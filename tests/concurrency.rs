//! Concurrency smoke tests for the reader-parallel engine: SELECTs take a
//! read lock and run concurrently with each other, while a disguise
//! application takes the write lock per statement. The tests check three
//! things under injected per-statement latency: no deadlock, consistent
//! results (a reader never sees a half-applied transform thanks to the
//! per-statement/transaction write lock), and wall-clock evidence that
//! readers actually overlapped.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use edna::apps::hotcrp::{self, generate::HotCrpConfig};
use edna::core::Disguiser;
use edna::relational::{Database, LatencyModel, Value};

fn latency(per_statement: Duration) -> LatencyModel {
    LatencyModel {
        per_statement,
        per_row_written: Duration::ZERO,
    }
}

/// N readers issuing the same SELECT concurrently must overlap: total
/// wall-clock stays far below the serial sum of per-statement latencies.
#[test]
fn readers_overlap_under_injected_latency() {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, x INT)")
        .unwrap();
    db.execute("INSERT INTO t (x) VALUES (1), (2), (3)")
        .unwrap();

    const READERS: usize = 8;
    const SELECTS_PER_READER: usize = 5;
    let per_statement = Duration::from_millis(10);
    db.set_latency(latency(per_statement));

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..READERS {
            let db = &db;
            s.spawn(move || {
                for _ in 0..SELECTS_PER_READER {
                    let r = db.execute("SELECT x FROM t WHERE id = 2").unwrap();
                    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let serial = per_statement * (READERS * SELECTS_PER_READER) as u32;
    // 8 readers x 5 selects x 10 ms = 400 ms serially. With a shared read
    // lock the latency charges overlap; allow a generous 2x margin over
    // one reader's serial share.
    assert!(
        elapsed < serial / 2,
        "readers did not overlap: {elapsed:?} vs. serial {serial:?}"
    );
}

/// Readers run concurrently with a disguise-applying writer: nobody
/// deadlocks, every read sees either the pre- or post-transform value of a
/// row (never a torn row), and reads keep completing while the writer is
/// busy.
#[test]
fn readers_make_progress_during_disguise_application() {
    let db = hotcrp::create_db().unwrap();
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();
    let edna = Disguiser::new(db.clone());
    hotcrp::register_disguises(&edna).unwrap();
    let bea = inst.pc_contact_ids[0];

    // Slow every statement a little so the writer holds the engine long
    // enough for readers to contend.
    db.set_latency(latency(Duration::from_micros(500)));

    let writer_done = AtomicBool::new(false);
    let mut reads_during_write = 0u64;
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            edna.apply("HotCRP-GDPR+", Some(&Value::Int(bea)))
                .expect("disguise applies under reader load")
        });
        let done = &writer_done;
        let db_ref = &db;
        let reader = s.spawn(move || {
            let mut count = 0u64;
            while !done.load(Ordering::Relaxed) {
                let r = db_ref
                    .execute("SELECT COUNT(*) FROM ContactInfo")
                    .expect("reads never fail mid-disguise");
                assert!(!r.rows.is_empty());
                count += 1;
            }
            count
        });
        let report = writer.join().expect("writer thread");
        writer_done.store(true, Ordering::Relaxed);
        assert!(report.rows_decorrelated + report.rows_modified + report.rows_removed > 0);
        reads_during_write = reader.join().expect("reader thread");
    });
    assert!(
        reads_during_write > 0,
        "readers must make progress while the disguise runs"
    );
}

/// Consistency under concurrency: GDPR+ decorrelates Review rows (updates
/// in place) but never inserts or removes them, so a concurrent reader
/// must observe the exact same Review count in every read — any other
/// value would prove it saw partial engine state.
#[test]
fn concurrent_reader_sees_stable_review_count() {
    let db = hotcrp::create_db().unwrap();
    let inst = hotcrp::generate::generate(&db, &HotCrpConfig::small()).unwrap();
    let edna = Disguiser::new(db.clone());
    hotcrp::register_disguises(&edna).unwrap();
    let mel = inst.pc_contact_ids[1];
    let expected = {
        let r = db.execute("SELECT COUNT(*) FROM Review").unwrap();
        let Value::Int(n) = r.rows[0][0] else {
            panic!("COUNT(*) returns an int");
        };
        n
    };
    db.set_latency(latency(Duration::from_micros(300)));

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let flag = &done;
        let db_ref = &db;
        let reader = s.spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                let r = db_ref.execute("SELECT COUNT(*) FROM Review").unwrap();
                assert_eq!(
                    r.rows[0][0],
                    Value::Int(expected),
                    "Review population changed mid-disguise: torn read"
                );
            }
        });
        edna.apply("HotCRP-GDPR+", Some(&Value::Int(mel)))
            .expect("disguise applies");
        done.store(true, Ordering::Relaxed);
        reader.join().expect("reader thread");
    });
}
